//! Terminal dashboard: renders one of the paper's datasets as a binary
//! line chart three ways — all points, M4 representation, MinMax
//! representation — and counts pixel errors (the paper's Figure 1 /
//! error-free claim, §5.1 contrast with MinMax).
//!
//! ```text
//! cargo run --release --example dashboard_render [kob|mf03|ballspeed|rcvtime]
//! ```

use m4lsm::m4::render::{minmax_points, render_m4, render_series, value_range, PixelMap};
use m4lsm::m4::{M4Lsm, M4Query};
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::readers::MergeReader;
use m4lsm::tskv::TsKv;
use m4lsm::workload::{load_sequential, Dataset};

const WIDTH: usize = 110;
const HEIGHT: usize = 28;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "kob".to_string());
    let dataset = Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(&which))
        .unwrap_or(Dataset::Kob);

    let dir = std::env::temp_dir().join(format!("m4lsm-dash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let kv = TsKv::open(&dir, EngineConfig::default())?;

    // 1% of the dataset keeps the example fast while retaining the
    // timestamp structure (gaps / skew).
    let points = dataset.generate(0.01);
    println!("{}: {} points generated", dataset.name(), points.len());
    load_sequential(&kv, "s", &points)?;

    let snap = kv.snapshot("s")?;
    let t0 = points.first().ok_or("empty dataset")?.t;
    let t1 = points.last().ok_or("empty dataset")?.t + 1;
    let query = M4Query::new(t0, t1, WIDTH)?;

    let m4_result = M4Lsm::new().execute(&snap, &query)?;
    let merged = MergeReader::with_range(&snap, query.full_range()).collect_merged()?;
    let (vmin, vmax) = value_range(&merged).ok_or("non-empty series expected")?;
    let map = PixelMap::new(&query, vmin, vmax, WIDTH, HEIGHT);

    let full = render_series(&merged, &map)?;
    let m4_canvas = render_m4(&m4_result, &map)?;
    let mm_canvas = render_series(&minmax_points(&m4_result), &map)?;

    println!("\n== full data ({} points) ==", merged.len());
    print!("{}", full.to_ascii());
    println!(
        "== M4 representation ({} points, diff {} px) ==",
        m4_result.points().len(),
        full.diff_pixels(&m4_canvas)
    );
    print!("{}", m4_canvas.to_ascii());
    println!(
        "== MinMax representation ({} points, diff {} px) ==",
        minmax_points(&m4_result).len(),
        full.diff_pixels(&mm_canvas)
    );
    print!("{}", mm_canvas.to_ascii());

    println!(
        "\nM4 pixel error: {}   MinMax pixel error: {}   (canvas {}x{})",
        full.diff_pixels(&m4_canvas),
        full.diff_pixels(&mm_canvas),
        WIDTH,
        HEIGHT
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
