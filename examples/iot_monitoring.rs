//! IoT fleet monitoring: the workload the paper's introduction
//! motivates. Several sensors stream out-of-order data; an analyst
//! zooms interactively from a month down to an hour, each step an M4
//! query at screen resolution.
//!
//! ```text
//! cargo run --release --example iot_monitoring
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m4lsm::m4::{M4Lsm, M4Query, M4Udf};
use m4lsm::tsfile::types::Point;
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::TsKv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("m4lsm-iot-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let kv = TsKv::open(&dir, EngineConfig::default())?;
    let mut rng = StdRng::seed_from_u64(2024);

    // --- Ingestion ------------------------------------------------------
    // Three sensors, one month at 1 s cadence (2 592 000 points each,
    // ~2600 chunks). Each sensor's gateway buffers and uploads in
    // batches; batches arrive out of order ~20% of the time, producing
    // overlapping chunks exactly as in the paper's §4.3 storage states.
    let t0 = 1_690_000_000_000i64;
    let month_ms = 30i64 * 24 * 3600 * 1000;
    let sensors = [
        "fleet.truck01.engine_temp",
        "fleet.truck02.engine_temp",
        "fleet.truck03.rpm",
    ];
    for (si, sensor) in sensors.iter().enumerate() {
        let n = month_ms / 1_000;
        let mut batches: Vec<Vec<Point>> = Vec::new();
        let mut level = 80.0 + si as f64 * 10.0;
        let mut batch = Vec::new();
        for i in 0..n {
            level = (level + rng.gen_range(-0.8..0.8)).clamp(40.0, 140.0);
            let spike = if rng.gen_ratio(1, 50_000) { 60.0 } else { 0.0 };
            batch.push(Point::new(t0 + i * 1_000, level + spike));
            if batch.len() == 100_000 {
                batches.push(std::mem::take(&mut batch));
            }
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
        // Out-of-order upload: occasionally swap adjacent batches.
        let mut order: Vec<usize> = (0..batches.len()).collect();
        for i in (1..order.len()).step_by(2) {
            if rng.gen_bool(0.2) {
                order.swap(i - 1, i);
            }
        }
        for idx in order {
            kv.insert_batch(sensor, &batches[idx])?;
            kv.flush(sensor)?;
        }
    }
    // Sensor 2 was miscalibrated for a day: purge that range.
    kv.delete(sensors[1], t0 + 5 * 86_400_000, t0 + 6 * 86_400_000)?;

    // --- Interactive zoom ------------------------------------------------
    // A 480-column dashboard panel: month → week → day → hour.
    let zooms = [
        ("1 month", t0, t0 + month_ms),
        ("1 week", t0 + 7 * 86_400_000, t0 + 14 * 86_400_000),
        ("1 day", t0 + 9 * 86_400_000, t0 + 10 * 86_400_000),
        (
            "1 hour",
            t0 + 9 * 86_400_000,
            t0 + 9 * 86_400_000 + 3_600_000,
        ),
    ];
    println!(
        "{:<28} {:<8} {:>10} {:>10} {:>12} {:>12}",
        "sensor", "zoom", "lsm_ms", "udf_ms", "lsm_chunks", "udf_chunks"
    );
    for sensor in sensors {
        let snap = kv.snapshot(sensor)?;
        for (label, qs, qe) in zooms {
            let q = M4Query::new(qs, qe, 480)?;

            let before = snap.io().snapshot();
            let t = std::time::Instant::now();
            let lsm = M4Lsm::new().execute(&snap, &q)?;
            let lsm_ms = t.elapsed().as_secs_f64() * 1e3;
            let lsm_io = snap.io().snapshot() - before;

            let before = snap.io().snapshot();
            let t = std::time::Instant::now();
            let udf = M4Udf::new().execute(&snap, &q)?;
            let udf_ms = t.elapsed().as_secs_f64() * 1e3;
            let udf_io = snap.io().snapshot() - before;

            assert!(
                lsm.equivalent(&udf),
                "operators disagree on {sensor} at {label}"
            );
            println!(
                "{:<28} {:<8} {:>10.2} {:>10.2} {:>12} {:>12}",
                sensor, label, lsm_ms, udf_ms, lsm_io.chunks_loaded, udf_io.chunks_loaded
            );
        }
    }

    println!("\nAll zoom levels: M4-LSM ≡ M4-UDF, with a fraction of the chunk loads.");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
