//! A tour of the step-regression chunk index (paper §3.5): learn a
//! model from gappy sensor timestamps, inspect its segments, and race
//! it against binary search on the three Table 1 operations.
//!
//! ```text
//! cargo run --release --example step_index_tour
//! ```

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m4lsm::tsfile::index::{binary_search_ops, StepIndex};
use m4lsm::workload::timestamps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(35);

    // A KOB-like chunk: 9 s cadence interrupted by transmission gaps
    // (the paper's Example 3.8 shape).
    let ts = timestamps::regular_with_gaps(
        1_639_966_606_000,
        9_000,
        100_000,
        5_000,
        3_855_000,
        &mut rng,
    );

    let t = Instant::now();
    let idx = StepIndex::learn(&ts).ok_or("step model fits on monotone timestamps")?;
    println!("learned in {:?}:", t.elapsed());
    println!("  slope K        = 1/{} (median Δt ms)", idx.median_delta());
    println!(
        "  segments       = {} (tilt/level alternating)",
        idx.segment_count()
    );
    println!("  verified ε     = {} positions", idx.epsilon());
    let splits = idx.split_timestamps();
    println!(
        "  split timestamps 𝕊 = {:?} …",
        &splits[..splits.len().min(6)]
    );

    // Proposition 3.7: f(first) = 1, f(last) = n.
    println!(
        "  f(first) = {}, f(last) = {}",
        idx.predict(ts[0]),
        idx.predict(*ts.last().ok_or("empty timestamp column")?)
    );

    // Probe workload: half hits, half misses around real timestamps.
    let probes: Vec<i64> = (0..200_000)
        .map(|_| {
            let base = ts[rng.gen_range(0..ts.len())];
            if rng.gen_bool(0.5) {
                base
            } else {
                base + rng.gen_range(1..9_000)
            }
        })
        .collect();

    // Correctness: both engines agree on every probe and operation.
    for &t in probes.iter().take(10_000) {
        assert_eq!(idx.exists_at(&ts, t), binary_search_ops::exists_at(&ts, t));
        assert_eq!(
            idx.first_after(&ts, t),
            binary_search_ops::first_after(&ts, t)
        );
        assert_eq!(
            idx.last_before(&ts, t),
            binary_search_ops::last_before(&ts, t)
        );
    }
    println!("\ncorrectness: 10k probes × 3 ops agree with binary search");

    // Throughput comparison.
    let run = |name: &str, f: &dyn Fn(i64) -> bool| {
        let start = Instant::now();
        let mut hits = 0usize;
        for &t in &probes {
            hits += usize::from(f(t));
        }
        let el = start.elapsed();
        println!(
            "{name:<28} {:>8.1} ns/probe   ({hits} hits)",
            el.as_nanos() as f64 / probes.len() as f64
        );
    };
    println!(
        "\nexists_at over {} probes on a {}-point chunk:",
        probes.len(),
        ts.len()
    );
    run("step-regression index", &|t| idx.exists_at(&ts, t));
    run("binary search", &|t| binary_search_ops::exists_at(&ts, t));
    Ok(())
}
