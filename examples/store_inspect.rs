//! Store inspector: a debugging tool that dumps the physical layout of
//! a tskv store — files, chunks, versions, statistics, step-index
//! models and pending deletes — using only the public tsfile API.
//!
//! ```text
//! cargo run --release --example store_inspect [store_dir]
//! ```
//!
//! Without an argument it builds a small demo store first.

use m4lsm::tsfile::{ModsFile, TsFileReader};
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::TsKv;

fn build_demo(dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    use m4lsm::tsfile::types::Point;
    let kv = TsKv::open(
        dir,
        EngineConfig {
            points_per_chunk: 100,
            memtable_threshold: 300,
            ..Default::default()
        },
    )?;
    for t in 0..900i64 {
        kv.insert("demo.a", Point::new(t * 1000, (t % 7) as f64))?;
    }
    // Out-of-order rewrite + delete to make the dump interesting.
    for t in 200..400i64 {
        kv.insert("demo.a", Point::new(t * 1000, 99.0))?;
    }
    kv.flush_all()?;
    kv.delete("demo.a", 500_000, 600_000)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dir, is_demo) = match std::env::args().nth(1) {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => {
            let d = std::env::temp_dir().join(format!("m4lsm-inspect-{}", std::process::id()));
            std::fs::remove_dir_all(&d).ok();
            build_demo(&d)?;
            (d, true)
        }
    };

    println!("store: {}", dir.display());
    let mut series_dirs: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
        .map(|e| e.path())
        .collect();
    series_dirs.sort();

    for sdir in series_dirs {
        println!(
            "\nseries {}",
            sdir.file_name().unwrap_or_default().to_string_lossy()
        );
        let mut files: Vec<_> = std::fs::read_dir(&sdir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("tsfile"))
            .collect();
        files.sort();
        for path in files {
            let reader = TsFileReader::open(&path)?;
            let size = std::fs::metadata(&path)?.len();
            println!(
                "  {} ({} bytes, {} chunks)",
                path.file_name().unwrap_or_default().to_string_lossy(),
                size,
                reader.chunk_metas().len()
            );
            for meta in reader.chunk_metas() {
                let s = &meta.stats;
                print!(
                    "    chunk {} @{:>8}+{:<6} n={:<5} t=[{} … {}] v=[{} … {}]",
                    meta.version,
                    meta.offset,
                    meta.byte_len,
                    s.count,
                    s.first.t,
                    s.last.t,
                    s.bottom.v,
                    s.top.v
                );
                match &meta.index {
                    Some(idx) => println!(
                        "  step-index: Δt={} segs={} ε={}",
                        idx.median_delta(),
                        idx.segment_count(),
                        idx.epsilon()
                    ),
                    None => println!("  step-index: none"),
                }
            }
            let mods_path = path.with_extension("mods");
            if mods_path.exists() {
                let mods = ModsFile::open(&mods_path)?;
                for e in mods.entries() {
                    println!("    delete {} range {}", e.version, e.range);
                }
            }
        }
        let wal = sdir.join("series.wal");
        if wal.exists() {
            println!("  series.wal ({} bytes)", std::fs::metadata(&wal)?.len());
        }
    }

    if is_demo {
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}
