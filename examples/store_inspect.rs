//! Store inspector: a debugging tool that dumps the physical layout of
//! a tskv store — catalog, storage shards, files, chunks, versions,
//! statistics, step-index models and pending deletes — using only the
//! public tsfile API plus read-only parsing of the store's own files.
//!
//! ```text
//! cargo run --release --example store_inspect [store_dir]
//! ```
//!
//! Without an argument it builds a small demo store first.
//!
//! Layout walked (see tskv's engine docs): the root holds `SHARDS`
//! (pinned storage shard count), `catalog.log` (interned id ↔ name
//! map) and `shard-NNNN/` directories; each shard holds data files
//! named `s<id>-<fileno>.tsfile` (+ `.mods`) for every series hashed
//! into it, plus shared WAL segments `wal-NNNNNNNN.log`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use m4lsm::tsfile::{ModsFile, TsFileReader};
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::TsKv;

fn build_demo(dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
    use m4lsm::tsfile::types::Point;
    let kv = TsKv::open(
        dir,
        EngineConfig {
            points_per_chunk: 100,
            memtable_threshold: 300,
            storage_shards: 4,
            ..Default::default()
        },
    )?;
    for t in 0..900i64 {
        kv.insert("demo.a", Point::new(t * 1000, (t % 7) as f64))?;
    }
    // Out-of-order rewrite + delete to make the dump interesting.
    for t in 200..400i64 {
        kv.insert("demo.a", Point::new(t * 1000, 99.0))?;
    }
    // A second series, so the shard routing shows.
    for t in 0..400i64 {
        kv.insert("demo.b", Point::new(t * 500, (t % 3) as f64))?;
    }
    // A registered-but-cold series: costs a catalog entry and nothing
    // else — no directory, no files.
    kv.create_series("demo.cold")?;
    kv.flush_all()?;
    kv.delete("demo.a", 500_000, 600_000)?;
    Ok(())
}

/// Read the interned id → name map out of `catalog.log`. Read-only and
/// forgiving: a short or torn tail simply ends the scan, exactly like
/// the engine's own recovery (checksums are the engine's business; an
/// inspector just wants the names).
fn read_catalog(dir: &Path) -> BTreeMap<u32, String> {
    let mut out = BTreeMap::new();
    let Ok(bytes) = std::fs::read(dir.join("catalog.log")) else {
        return out;
    };
    let mut at = 0usize;
    while bytes.len() >= at + 6 {
        let id = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        let len = u16::from_le_bytes([bytes[at + 4], bytes[at + 5]]) as usize;
        let end = at + 6 + len + 4; // name + crc32
        let Some(name) = bytes.get(at + 6..at + 6 + len) else {
            break;
        };
        if bytes.len() < end {
            break;
        }
        out.insert(id, String::from_utf8_lossy(name).into_owned());
        at = end;
    }
    out
}

/// Parse a data file stem `s<id>-<fileno>` into its series id.
fn data_file_series(path: &Path) -> Option<u32> {
    let stem = path.file_stem()?.to_str()?;
    let (id, _fileno) = stem.strip_prefix('s')?.split_once('-')?;
    id.parse().ok()
}

fn dump_file(path: &Path) -> Result<(), Box<dyn std::error::Error>> {
    let reader = TsFileReader::open(path)?;
    let size = std::fs::metadata(path)?.len();
    println!(
        "    {} ({} bytes, {} chunks)",
        path.file_name().unwrap_or_default().to_string_lossy(),
        size,
        reader.chunk_metas().len()
    );
    for meta in reader.chunk_metas() {
        let s = &meta.stats;
        print!(
            "      chunk {} @{:>8}+{:<6} n={:<5} t=[{} … {}] v=[{} … {}]",
            meta.version,
            meta.offset,
            meta.byte_len,
            s.count,
            s.first.t,
            s.last.t,
            s.bottom.v,
            s.top.v
        );
        match &meta.index {
            Some(idx) => println!(
                "  step-index: Δt={} segs={} ε={}",
                idx.median_delta(),
                idx.segment_count(),
                idx.epsilon()
            ),
            None => println!("  step-index: none"),
        }
    }
    let mods_path = path.with_extension("mods");
    if mods_path.exists() {
        let mods = ModsFile::open(&mods_path)?;
        for e in mods.entries() {
            println!("      delete {} range {}", e.version, e.range);
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (dir, is_demo) = match std::env::args().nth(1) {
        Some(d) => (PathBuf::from(d), false),
        None => {
            let d = std::env::temp_dir().join(format!("m4lsm-inspect-{}", std::process::id()));
            std::fs::remove_dir_all(&d).ok();
            build_demo(&d)?;
            (d, true)
        }
    };

    println!("store: {}", dir.display());
    if let Ok(shards) = std::fs::read_to_string(dir.join("SHARDS")) {
        println!("storage shards: {}", shards.trim());
    }
    let catalog = read_catalog(&dir);
    println!("catalog: {} series", catalog.len());
    for (id, name) in &catalog {
        println!("  s{id} = {name:?}");
    }

    let mut shard_dirs: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
        .map(|e| e.path())
        .collect();
    shard_dirs.sort();

    for sdir in shard_dirs {
        println!(
            "\n{}",
            sdir.file_name().unwrap_or_default().to_string_lossy()
        );
        let mut entries: Vec<_> = std::fs::read_dir(&sdir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        // Data files, grouped per series so the dump reads store-shaped.
        let mut by_series: BTreeMap<u32, Vec<&PathBuf>> = BTreeMap::new();
        for p in &entries {
            if p.extension().and_then(|e| e.to_str()) == Some("tsfile") {
                if let Some(id) = data_file_series(p) {
                    by_series.entry(id).or_default().push(p);
                }
            }
        }
        for (id, files) in by_series {
            let name = catalog
                .get(&id)
                .map(|n| format!(" ({n:?})"))
                .unwrap_or_default();
            println!("  series s{id}{name}");
            for path in files {
                dump_file(path)?;
            }
        }
        // Shared WAL segments.
        for p in &entries {
            let fname = p.file_name().unwrap_or_default().to_string_lossy();
            if fname.starts_with("wal-") && fname.ends_with(".log") {
                println!("  {fname} ({} bytes)", std::fs::metadata(p)?.len());
            }
        }
    }

    if is_demo {
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}
