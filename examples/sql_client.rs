//! SQL client: run the paper's Appendix A.1 representation query
//! through the SQL front-end, as an analyst's tool would.
//!
//! ```text
//! cargo run --release --example sql_client
//! cargo run --release --example sql_client -- "SELECT TopValue(T) FROM demo.signal GROUPBY floor(8*(t-0)/(100000-0))"
//! ```

use m4lsm::m4::sql::{execute, ExecOperator, M4Statement, Params};
use m4lsm::tsfile::types::Point;
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::TsKv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("m4lsm-sql-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let kv = TsKv::open(&dir, EngineConfig::default())?;

    // Demo data: 100 seconds at 1 ms cadence with a sag in the middle.
    for i in 0..100_000i64 {
        let v = if (40_000..45_000).contains(&i) {
            -50.0
        } else {
            (i % 1000) as f64 / 10.0
        };
        kv.insert("demo.signal", Point::new(i, v))?;
    }
    kv.flush_all()?;

    let statement = std::env::args().nth(1).unwrap_or_else(|| {
        "SELECT FirstTime(T), FirstValue(T), LastTime(T), LastValue(T), \
         BottomTime(T), BottomValue(T), TopTime(T), TopValue(T) \
         FROM demo.signal GROUPBY floor(@w*(t-@tqs)/(@tqe-@tqs))"
            .to_string()
    });

    println!("> {statement}\n");
    let stmt = M4Statement::parse(&statement)?;
    let mut params = Params::new();
    params.set("w", 10).set("tqs", 0).set("tqe", 100_000);

    let t = std::time::Instant::now();
    let table = execute(&kv, &stmt, &params, ExecOperator::Lsm)?;
    let elapsed = t.elapsed();
    print!("{}", table.to_text());
    println!("\n{} rows via M4-LSM in {elapsed:?}", table.rows.len());

    // Cross-check against the baseline operator.
    let udf = execute(&kv, &stmt, &params, ExecOperator::Udf)?;
    assert_eq!(table.rows.len(), udf.rows.len());
    println!(
        "cross-checked against M4-UDF: {} rows agree",
        udf.rows.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
