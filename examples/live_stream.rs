//! Live dashboard: maintain an M4 chart incrementally as data streams
//! in, repairing out-of-order damage from storage with the merge-free
//! operator — the streaming companion to the paper's one-shot queries.
//!
//! ```text
//! cargo run --release --example live_stream
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m4lsm::m4::stream::StreamingM4;
use m4lsm::m4::{M4Lsm, M4Query, M4Udf};
use m4lsm::tsfile::types::Point;
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::TsKv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("m4lsm-live-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let kv = TsKv::open(&dir, EngineConfig::default())?;
    let mut rng = StdRng::seed_from_u64(7);

    // A 2-hour window at 480 pixel columns, fed by a 10 Hz sensor.
    let t0 = 1_700_000_000_000i64;
    let window = M4Query::new(t0, t0 + 2 * 3_600_000, 480)?;
    let mut live = StreamingM4::new(window);

    let mut level = 50.0f64;
    let mut late_buffer: Vec<Point> = Vec::new();
    let mut repairs = 0usize;
    let n = 72_000i64; // 2 h at 10 Hz

    for i in 0..n {
        level = (level + rng.gen_range(-0.5..0.5)).clamp(0.0, 100.0);
        let p = Point::new(t0 + i * 100, level);
        // 2% of readings are delayed by the network and arrive ~5 s late.
        if rng.gen_bool(0.02) {
            late_buffer.push(p);
        } else {
            kv.insert("live.sensor", p)?;
            live.ingest(p);
        }
        // Deliver delayed readings out of order.
        if late_buffer.len() >= 32 {
            for lp in late_buffer.drain(..) {
                kv.insert("live.sensor", lp)?;
                live.ingest(lp); // marks spans dirty
            }
        }
        // Dashboard refresh tick: every simulated minute, repair dirty
        // spans from storage with the merge-free operator.
        if i % 600 == 599 && !live.dirty_spans().is_empty() {
            let snap = kv.snapshot("live.sensor")?;
            let authoritative = M4Lsm::new().execute(&snap, live.query())?;
            for span in live.dirty_spans() {
                live.repair(span, authoritative.spans[span]);
                repairs += 1;
            }
        }
    }
    // Flush the tail of the late buffer and do a final repair pass.
    for lp in late_buffer.drain(..) {
        kv.insert("live.sensor", lp)?;
        live.ingest(lp);
    }
    let snap = kv.snapshot("live.sensor")?;
    let authoritative = M4Lsm::new().execute(&snap, live.query())?;
    for span in live.dirty_spans() {
        live.repair(span, authoritative.spans[span]);
        repairs += 1;
    }

    // The incrementally maintained chart must equal a from-scratch
    // baseline execution over everything ingested.
    let reference = M4Udf::new().execute(&snap, live.query())?;
    assert!(
        live.current().equivalent(&reference),
        "streamed chart deviates"
    );
    println!(
        "streamed {n} points (2% late); {} spans repaired across refresh ticks",
        repairs
    );
    println!(
        "final chart: {} of {} spans populated — identical to a full M4-UDF recomputation",
        live.current().non_empty(),
        live.current().width()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
