//! Quickstart: write a series into the LSM store, run an M4 query with
//! the merge-free operator, and draw the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use m4lsm::m4::render::{render_m4, value_range, PixelMap};
use m4lsm::m4::{M4Lsm, M4Query, M4Udf};
use m4lsm::tsfile::types::Point;
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::readers::MergeReader;
use m4lsm::tskv::TsKv;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("m4lsm-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. Open a store. Chunks hold 1000 points, as in the paper.
    let kv = TsKv::open(&dir, EngineConfig::default())?;

    // 2. Ingest five days of per-second sensor readings (432 000
    //    points → 432 chunks), a noisy sine so the chart has shape.
    let t0 = 1_700_000_000_000i64; // epoch ms
    let n = 5 * 86_400i64;
    for i in 0..n {
        let v = (i as f64 / 7200.0).sin() * 40.0 + ((i * 37) % 11) as f64;
        kv.insert("plant.turbine.rpm", Point::new(t0 + i * 1000, v))?;
    }
    kv.flush_all()?;

    // 3. A correction arrives late: re-ingest ten minutes of data
    //    (overwrites, creating a time-overlapping chunk) and purge a
    //    faulty half hour (a versioned range delete).
    for i in 40_000..40_600i64 {
        kv.insert("plant.turbine.rpm", Point::new(t0 + i * 1000, 55.0))?;
    }
    kv.flush_all()?;
    kv.delete("plant.turbine.rpm", t0 + 60_000_000, t0 + 61_800_000)?;

    // 4. Visualize the whole range in 120 pixel columns with M4-LSM.
    let snap = kv.snapshot("plant.turbine.rpm")?;
    let query = M4Query::new(t0, t0 + n * 1000, 120)?;

    let before = snap.io().snapshot();
    let result = M4Lsm::new().execute(&snap, &query)?;
    let io = snap.io().snapshot() - before;

    println!(
        "M4-LSM: {} of {} spans non-empty",
        result.non_empty(),
        result.width()
    );
    println!(
        "        loaded {} of {} chunks, decoded {} of {} points",
        io.chunks_loaded,
        snap.chunks().len(),
        io.points_decoded,
        snap.raw_point_count()
    );

    // 5. Same query through the merge-everything baseline — identical
    //    representation, far more work.
    let before = snap.io().snapshot();
    let udf = M4Udf::new().execute(&snap, &query)?;
    let io_udf = snap.io().snapshot() - before;
    assert!(result.equivalent(&udf));
    println!(
        "M4-UDF: identical result, but loaded {} chunks / decoded {} points",
        io_udf.chunks_loaded, io_udf.points_decoded
    );

    // 6. Draw it. The M4 rendering is pixel-identical to rendering all
    //    86 400 points.
    let merged = MergeReader::with_range(&snap, query.full_range()).collect_merged()?;
    let (vmin, vmax) = value_range(&merged).ok_or("non-empty series expected")?;
    let map = PixelMap::new(&query, vmin, vmax, 120, 24);
    let canvas = render_m4(&result, &map)?;
    let full = m4lsm::m4::render::render_series(&merged, &map)?;
    println!("\n{}", canvas.to_ascii());
    println!(
        "pixel difference vs full-data rendering: {} (canvas {}x{})",
        full.diff_pixels(&canvas),
        canvas.width(),
        canvas.height()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
