//! # m4lsm — facade crate
//!
//! Reproduction of **"Time Series Representation for Visualization in
//! Apache IoTDB"** (SIGMOD 2024): the merge-free M4-LSM operator and the
//! LSM time series storage substrate it runs on.
//!
//! This crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`tsfile`] — on-disk chunk format, encodings, delete (mods) log.
//! * [`tskv`] — LSM storage engine: memtable, flush, versions, readers.
//! * [`m4`] — M4 representation, the M4-UDF baseline, the M4-LSM
//!   operator, and the step-regression chunk index.
//! * [`tsnet`] — network service layer: wire protocol, TCP
//!   query/ingest server, blocking client.
//! * [`workload`] — synthetic dataset generators matching the paper's
//!   four evaluation datasets.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use m4;
pub use tsfile;
pub use tskv;
pub use tsnet;
pub use workload;
