//! `m4cli` — command-line client for the m4-lsm store.
//!
//! ```text
//! m4cli ingest <store> <series> <csv>     # CSV rows: timestamp_ms,value
//! m4cli list   <store>                    # series and their stats
//! m4cli query  <store> "<SQL>" [--w N --tqs T --tqe T] [--udf]
//! m4cli render <store> <series> <out.pbm> [--width N --height N]
//! m4cli compact <store> <series>
//! m4cli delete <store> <series> <t_start> <t_end>
//! ```
//!
//! The SQL dialect is the paper's Appendix A.1 statement (see
//! `m4::sql`); `--w/--tqs/--tqe` bind the `@w/@tqs/@tqe` parameters.

use std::io::BufRead;
use std::process::ExitCode;

use m4lsm::m4::render::{render_m4, value_range, PixelMap};
use m4lsm::m4::sql::{execute, ExecOperator, M4Statement, Params};
use m4lsm::m4::{M4Lsm, M4Query};
use m4lsm::tsfile::types::Point;
use m4lsm::tskv::config::EngineConfig;
use m4lsm::tskv::readers::MergeReader;
use m4lsm::tskv::TsKv;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> String {
    "usage: m4cli <ingest|list|query|render|compact|delete> <store> [...]\n\
     \n  ingest <store> <series> <csv-file>\
     \n  list <store>\
     \n  query <store> \"<SQL>\" [--w N] [--tqs T] [--tqe T] [--udf]\
     \n  render <store> <series> <out.pbm> [--width N] [--height N]\
     \n  compact <store> <series>\
     \n  delete <store> <series> <t_start> <t_end>"
        .to_string()
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().ok_or_else(usage)?;
    let store = args.get(1).ok_or_else(usage)?;
    let kv = TsKv::open(store, EngineConfig::default())?;
    match cmd.as_str() {
        "ingest" => {
            let series = args.get(2).ok_or_else(usage)?;
            let csv = args.get(3).ok_or_else(usage)?;
            let file = std::fs::File::open(csv)?;
            let mut batch = Vec::with_capacity(10_000);
            let mut total = 0usize;
            let mut skipped = 0usize;
            for line in std::io::BufReader::new(file).lines() {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                let mut cols = trimmed.split(',');
                let parsed = (|| {
                    let t: i64 = cols.next()?.trim().parse().ok()?;
                    let v: f64 = cols.next()?.trim().parse().ok()?;
                    Some(Point::new(t, v))
                })();
                match parsed {
                    Some(p) => {
                        batch.push(p);
                        if batch.len() == 10_000 {
                            kv.insert_batch(series, &batch)?;
                            total += batch.len();
                            batch.clear();
                        }
                    }
                    None => skipped += 1,
                }
            }
            kv.insert_batch(series, &batch)?;
            total += batch.len();
            kv.flush(series)?;
            println!("ingested {total} points into {series} ({skipped} malformed lines skipped)");
        }
        "list" => {
            for name in kv.series_names() {
                let snap = kv.snapshot(&name)?;
                let chunks = snap.chunks();
                let range = chunks.iter().map(|c| c.time_range()).reduce(|a, b| {
                    tsfile::types::TimeRange::new(a.start.min(b.start), a.end.max(b.end))
                });
                match range {
                    Some(r) => println!(
                        "{name}: {} chunks, {} raw points, t ∈ {r}, {} deletes pending",
                        chunks.len(),
                        snap.raw_point_count(),
                        snap.deletes().len()
                    ),
                    None => println!("{name}: empty"),
                }
            }
        }
        "query" => {
            let sql = args.get(2).ok_or_else(usage)?;
            let mut params = Params::new();
            let mut op = ExecOperator::Lsm;
            let mut it = args[3..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--w" => {
                        params.set("w", it.next().ok_or("--w needs a value")?.parse()?);
                    }
                    "--tqs" => {
                        params.set("tqs", it.next().ok_or("--tqs needs a value")?.parse()?);
                    }
                    "--tqe" => {
                        params.set("tqe", it.next().ok_or("--tqe needs a value")?.parse()?);
                    }
                    "--udf" => op = ExecOperator::Udf,
                    other => return Err(format!("unknown flag {other}").into()),
                }
            }
            let stmt = M4Statement::parse(sql)?;
            let t = std::time::Instant::now();
            let table = execute(&kv, &stmt, &params, op)?;
            let elapsed = t.elapsed();
            print!("{}", table.to_text());
            println!("{} rows in {elapsed:?}", table.rows.len());
        }
        "render" => {
            let series = args.get(2).ok_or_else(usage)?;
            let out = args.get(3).ok_or_else(usage)?;
            let mut width = 1000usize;
            let mut height = 500usize;
            let mut it = args[4..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--width" => width = it.next().ok_or("--width needs a value")?.parse()?,
                    "--height" => height = it.next().ok_or("--height needs a value")?.parse()?,
                    other => return Err(format!("unknown flag {other}").into()),
                }
            }
            let snap = kv.snapshot(series)?;
            let chunks = snap.chunks();
            let (t0, t1) = chunks
                .iter()
                .map(|c| c.time_range())
                .fold(None::<(i64, i64)>, |acc, r| {
                    Some(match acc {
                        None => (r.start, r.end),
                        Some((a, b)) => (a.min(r.start), b.max(r.end)),
                    })
                })
                .ok_or("series is empty")?;
            let query = M4Query::new(t0, t1 + 1, width)?;
            let result = M4Lsm::new().execute(&snap, &query)?;
            let merged = MergeReader::with_range(&snap, query.full_range()).collect_merged()?;
            let (vmin, vmax) = value_range(&merged).ok_or("series is empty")?;
            let map = PixelMap::new(&query, vmin, vmax, width, height);
            let canvas = render_m4(&result, &map)?;
            canvas.write_pbm(out)?;
            println!(
                "wrote {width}x{height} chart to {out} ({} set pixels)",
                canvas.set_pixels()
            );
        }
        "compact" => {
            let series = args.get(2).ok_or_else(usage)?;
            let report = kv.compact(series)?;
            println!(
                "compacted {series}: {} files removed, {} chunks merged, {} points written, {} deletes applied",
                report.files_removed, report.chunks_merged, report.points_written, report.deletes_applied
            );
        }
        "delete" => {
            let series = args.get(2).ok_or_else(usage)?;
            let t0: i64 = args.get(3).ok_or_else(usage)?.parse()?;
            let t1: i64 = args.get(4).ok_or_else(usage)?.parse()?;
            kv.delete(series, t0, t1)?;
            println!("deleted [{t0}, {t1}] from {series}");
        }
        _ => return Err(usage().into()),
    }
    Ok(())
}
