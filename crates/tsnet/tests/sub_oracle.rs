//! Subscription delta streams vs a fresh M4 recompute oracle.
//!
//! The subscription contract (DESIGN.md §13): a client that applies
//! every pushed [`tsnet::wire::Push::SpanDelta`] in sequence — honoring
//! `resync` full-state frames — holds, at any quiesce point, spans that
//! are **byte-identical** (timestamps and value bit patterns) to a
//! fresh `M4Lsm` recompute over an authoritative snapshot. That must
//! hold under a racing writer, deletes, flush/compact churn, and a
//! subscriber killed mid-stream while sharing a dashboard with a
//! survivor.
//!
//! Also pinned here: identical `(series, range, w)` subscriptions share
//! ONE dashboard — with N subscriptions over K distinct dashboards the
//! server-reported `subs_deduped` counter is exactly `N - K` — and the
//! subscription error paths are typed (`SeriesNotFound`,
//! `InvalidRequest`, `Subscription`).

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::TsKv;
use tsnet::wire::Request;
use tsnet::{ClientConfig, ErrorCode, NetError, ServerConfig, SubReplay, TsNetClient, TsNetServer};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tsnet-sub-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Small chunks/memtables so the racing writer crosses flush and
/// compaction boundaries, not just the in-memory path.
fn store_config() -> EngineConfig {
    EngineConfig {
        points_per_chunk: 16,
        memtable_threshold: 64,
        ..EngineConfig::default()
    }
}

fn open_store(tag: &str) -> (Arc<TsKv>, PathBuf) {
    let dir = scratch(tag);
    let store = Arc::new(TsKv::open(&dir, store_config()).unwrap());
    (store, dir)
}

fn server(store: Arc<TsKv>) -> TsNetServer {
    TsNetServer::start(
        store,
        ServerConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            dispatch_interval_ms: 5,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn client(server: &TsNetServer) -> TsNetClient {
    TsNetClient::connect(server.local_addr(), ClientConfig::default()).unwrap()
}

fn seed(store: &TsKv, series: &str, n: i64) {
    let pts: Vec<Point> = (0..n)
        .map(|i| Point::new(i * 40, (i as f64).sin() * 100.0))
        .collect();
    store.insert_batch(series, &pts).unwrap();
}

/// Bit-exact span equality: the oracle contract compares value *bit
/// patterns*, so `-0.0` vs `0.0` (or differing NaNs) count as drift.
fn same_span(a: &Option<m4::SpanRepr>, b: &Option<m4::SpanRepr>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            let eq = |p: &Point, q: &Point| p.t == q.t && p.v.to_bits() == q.v.to_bits();
            eq(&x.first, &y.first)
                && eq(&x.last, &y.last)
                && eq(&x.bottom, &y.bottom)
                && eq(&x.top, &y.top)
        }
        _ => false,
    }
}

/// Fresh authoritative recompute — what every replayed stream must
/// match at a quiesce point.
fn oracle_spans(
    store: &TsKv,
    series: &str,
    t_qs: i64,
    t_qe: i64,
    w: u32,
) -> Vec<Option<m4::SpanRepr>> {
    let snap = store.snapshot(series).unwrap();
    let query = m4::M4Query::new(t_qs, t_qe, w as usize).unwrap();
    m4::M4Lsm::new().execute(&snap, &query).unwrap().spans
}

/// Drain every buffered/readable push on `c` into `replay`.
fn drain(c: &mut TsNetClient, replay: &mut SubReplay, per_poll: Duration) {
    while let Ok(Some(push)) = c.poll_push(per_poll) {
        replay.apply(&push);
    }
}

const RANGE_END: i64 = 10_000;
const WIDTH: u32 = 8;

/// The headline oracle test: six subscriptions over two dashboards, a
/// racing writer doing inserts/deletes/flushes/compactions, one
/// subscriber killed mid-stream on the shared dashboard. After
/// quiesce, every survivor's replayed spans must be byte-identical to
/// a fresh recompute, with no sequence gaps and `subs_deduped == N-K`.
#[test]
fn delta_replay_matches_oracle_under_churn() {
    let (store, dir) = open_store("oracle");
    seed(&store, "sub.a", 120);
    seed(&store, "sub.b", 120);
    let server = server(Arc::clone(&store));

    // N = 6 subscriptions, K = 2 dashboards: c0/c1/c2 + victim on
    // dashboard A, c4/c5 on dashboard B.
    let dash = |i: usize| if i < 3 { "sub.a" } else { "sub.b" };
    let mut clients: Vec<TsNetClient> = (0..5).map(|_| client(&server)).collect();
    let mut replays: Vec<SubReplay> = Vec::new();
    for (i, c) in clients.iter_mut().enumerate() {
        let sub = c.subscribe(dash(i), 0, RANGE_END, WIDTH).unwrap();
        replays.push(SubReplay::new(&sub));
    }
    let mut victim = client(&server);
    let victim_sub = victim.subscribe("sub.a", 0, RANGE_END, WIDTH).unwrap();
    let mut victim_replay = SubReplay::new(&victim_sub);
    assert_eq!(server.active_dashboards(), 2);

    // Dedup is counter-verified over the wire: 6 subscriptions, 2
    // dashboards.
    let (_, stats) = clients[0].stats().unwrap();
    assert_eq!(stats.subs_active, 6);
    assert_eq!(stats.subs_deduped, 4, "subs_deduped must be N - K");

    // Racing writer: in-order and out-of-order inserts, a delete, and
    // flush/compact churn, directly against the engine.
    let writer_store = Arc::clone(&store);
    let writer = thread::spawn(move || {
        for round in 0..30i64 {
            let base = 4_800 + round * 160;
            let pts: Vec<Point> = (0..8)
                .map(|i| Point::new(base + i * 17, (round * 8 + i) as f64))
                .collect();
            writer_store.insert_batch("sub.a", &pts).unwrap();
            // Out-of-order points landing inside already-final spans.
            writer_store
                .insert_batch("sub.b", &[Point::new(37 + round, -(round as f64))])
                .unwrap();
            match round % 10 {
                3 => writer_store.delete("sub.a", 1_000, 1_500 + round).unwrap(),
                6 => {
                    writer_store.flush("sub.a").unwrap();
                }
                9 => {
                    let _ = writer_store.compact("sub.b");
                }
                _ => {}
            }
            thread::sleep(Duration::from_millis(2));
        }
    });

    // Stream while the writer races; kill the victim mid-stream by
    // dropping its connection without unsubscribing — the server must
    // detach its subscription while the shared dashboard keeps serving
    // the survivors.
    let mut victim = Some(victim);
    for round in 0..12 {
        for (c, r) in clients.iter_mut().zip(replays.iter_mut()) {
            drain(c, r, Duration::from_millis(2));
        }
        if let Some(v) = victim.as_mut() {
            drain(v, &mut victim_replay, Duration::from_millis(2));
            if round == 5 {
                drop(victim.take());
            }
        }
    }
    let _ = victim_sub.sub_id;
    writer.join().unwrap();

    // Converge: keep draining until the server reports quiescence
    // (change channel drained, dashboards exact, queues empty).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        for (c, r) in clients.iter_mut().zip(replays.iter_mut()) {
            drain(c, r, Duration::from_millis(2));
        }
        if server.quiesce_subscriptions(Duration::from_millis(250)) {
            break;
        }
        assert!(Instant::now() < deadline, "subscriptions never quiesced");
    }
    // Pushes flushed by the writer threads may still sit in socket
    // buffers; drain until silence.
    for (c, r) in clients.iter_mut().zip(replays.iter_mut()) {
        drain(c, r, Duration::from_millis(50));
    }

    // Every surviving replayed stream must equal a fresh recompute.
    for (i, r) in replays.iter().enumerate() {
        let oracle = oracle_spans(&store, dash(i), 0, RANGE_END, WIDTH);
        assert!(!r.has_seq_gap(), "client {i}: sequence gap in push stream");
        assert!(r.error().is_none(), "client {i}: unexpected SubError");
        assert!(!r.is_lagged(), "client {i}: lagged without resync");
        assert!(r.frames_applied() > 0, "client {i}: saw no deltas");
        assert_eq!(r.spans().len(), oracle.len());
        for (j, (got, want)) in r.spans().iter().zip(oracle.iter()).enumerate() {
            assert!(
                same_span(got, want),
                "client {i} span {j} diverged: got {got:?}, want {want:?}"
            );
        }
    }

    // Victim detached; survivors' dashboards still live.
    let (_, stats) = clients[0].stats().unwrap();
    assert_eq!(stats.subs_active, 5);
    assert!(stats.deltas_pushed > 0, "no deltas were ever pushed");
    assert_eq!(server.active_dashboards(), 2);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Unsubscribe tears a subscription down over the wire: the dashboard
/// disappears when its last subscriber leaves, and the id becomes
/// invalid (typed `Subscription` error) for later calls.
#[test]
fn unsubscribe_over_the_wire_tears_down() {
    let (store, dir) = open_store("unsub");
    seed(&store, "sub.c", 50);
    let server = server(Arc::clone(&store));

    let mut c1 = client(&server);
    let mut c2 = client(&server);
    let s1 = c1.subscribe("sub.c", 0, RANGE_END, WIDTH).unwrap();
    let s2 = c2.subscribe("sub.c", 0, RANGE_END, WIDTH).unwrap();
    assert_ne!(s1.sub_id, s2.sub_id);
    assert_eq!(server.active_dashboards(), 1);

    // A subscription belongs to its connection: c2 cannot tear down
    // c1's id.
    match c2.call(Request::Unsubscribe { sub_id: s1.sub_id }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Subscription),
        other => panic!("expected typed Subscription error, got {other:?}"),
    }

    c1.unsubscribe(s1.sub_id).unwrap();
    assert_eq!(
        server.active_dashboards(),
        1,
        "c2 still holds the dashboard"
    );
    c2.unsubscribe(s2.sub_id).unwrap();
    assert_eq!(server.active_dashboards(), 0);

    // Double unsubscribe is a typed error, not a hang or a panic.
    match c1.call(Request::Unsubscribe { sub_id: s1.sub_id }) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Subscription),
        other => panic!("expected typed Subscription error, got {other:?}"),
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Subscription admission errors are typed: unknown series, invalid
/// query geometry.
#[test]
fn subscribe_rejections_are_typed() {
    let (store, dir) = open_store("reject");
    seed(&store, "sub.d", 10);
    let server = server(Arc::clone(&store));
    let mut c = client(&server);

    match c.subscribe("no.such.series", 0, RANGE_END, WIDTH) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::SeriesNotFound),
        other => panic!("expected SeriesNotFound, got {other:?}"),
    }
    match c.subscribe("sub.d", 500, 100, WIDTH) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::InvalidRequest),
        other => panic!("expected InvalidRequest, got {other:?}"),
    }

    // A valid subscribe still works on the same connection afterwards
    // (the reader demux survives error responses).
    let sub = c.subscribe("sub.d", 0, RANGE_END, WIDTH).unwrap();
    assert_eq!(sub.spans.len(), WIDTH as usize);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
