//! Server vs in-process oracle.
//!
//! The network layer must be *invisible* to query semantics: N
//! concurrent clients issuing interleaved `WriteBatch`/`M4Query`/
//! `Delete`/`FlushSeal` traffic over TCP must observe byte-identical
//! results to the same scripts run directly against a twin `TsKv` —
//! each client owns disjoint series, so the cross-client interleaving
//! is commutative and the oracle can replay client-by-client.
//!
//! Also pinned here: `Busy` backpressure is a typed, counted error;
//! graceful shutdown drains the in-flight request (its response is
//! delivered) and refuses new connections afterwards; per-request
//! deadlines surface as typed `Timeout`.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::TsKv;
use tsnet::wire::{encode_response, Operator, Response, ResponseEnvelope};
use tsnet::{ClientConfig, NetError, ServerConfig, TsNetClient, TsNetServer};

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tsnet-oracle-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Small chunks/memtables so the scripts cross flush and compaction
/// boundaries, not just the in-memory path.
fn store_config() -> EngineConfig {
    EngineConfig {
        points_per_chunk: 16,
        memtable_threshold: 64,
        ..EngineConfig::default()
    }
}

fn open_store(tag: &str) -> (Arc<TsKv>, PathBuf) {
    let dir = scratch(tag);
    let store = Arc::new(TsKv::open(&dir, store_config()).unwrap());
    (store, dir)
}

fn client(server: &TsNetServer) -> TsNetClient {
    TsNetClient::connect(server.local_addr(), ClientConfig::default()).unwrap()
}

/// Canonical byte form of an M4 outcome, the unit of oracle comparison.
fn m4_bytes(spans: Vec<Option<m4::SpanRepr>>) -> Vec<u8> {
    // Pinned request id so oracle and server bytes compare on content
    // alone, independent of each client's id sequence.
    encode_response(&ResponseEnvelope {
        request_id: 0,
        body: Response::M4 { spans },
    })
    .unwrap()
}

/// Run one M4 query in-process, as the oracle sees it.
fn oracle_query(store: &TsKv, series: &str, op: Operator, t_qs: i64, t_qe: i64, w: u32) -> Vec<u8> {
    let snap = store.snapshot(series).unwrap();
    let query = m4::M4Query::new(t_qs, t_qe, w as usize).unwrap();
    let result = match op {
        Operator::Udf => m4::M4Udf::new().execute(&snap, &query),
        Operator::Lsm => m4::M4Lsm::new().execute(&snap, &query),
    }
    .unwrap();
    m4_bytes(result.spans)
}

// ---------------------------------------------------------------------
// Deterministic per-client scripts
// ---------------------------------------------------------------------

const CLIENTS: usize = 3;
const STEPS: usize = 24;

fn series_name(client: usize, which: usize) -> String {
    format!("c{client}.s{which}")
}

/// The write for `(client, step)`: 20 points, unique timestamps within
/// the client's series, values encoding (client, step, index).
fn step_write(client: usize, step: usize) -> (String, Vec<Point>) {
    let series = series_name(client, step % 2);
    let points = (0..20)
        .map(|i| {
            let t = (step as i64) * 100 + (i as i64) * 4 - 300;
            let v = (client * 1_000_000 + step * 1_000 + i) as f64;
            Point::new(t, v)
        })
        .collect();
    (series, points)
}

/// The queries issued after `(client, step)`'s write:
/// `(series, op, t_qs, t_qe, w)`.
fn step_queries(client: usize, step: usize) -> Vec<(String, Operator, i64, i64, u32)> {
    let mut queries = Vec::new();
    if step % 3 == 2 {
        let series = series_name(client, step % 2);
        let hi = (step as i64) * 100 + 100;
        queries.push((series, Operator::Lsm, -350, hi, 7));
    }
    if step % 7 == 5 {
        let series = series_name(client, step % 2);
        queries.push((series, Operator::Udf, -1000, 3_000, 11));
    }
    queries
}

/// The delete issued after `(client, step)`'s write, if any.
fn step_delete(client: usize, step: usize) -> Option<(String, i64, i64)> {
    if step % 10 == 9 {
        let series = series_name(client, step % 2);
        let mid = (step as i64) * 50;
        Some((series, mid - 30, mid + 30))
    } else {
        None
    }
}

/// Whether `(client, step)` flushes (and compacts) its even series.
fn step_flush(step: usize) -> bool {
    step == STEPS / 2
}

#[test]
fn concurrent_clients_match_in_process_oracle() {
    let (store, _dir) = open_store("concurrent");
    let server = TsNetServer::start(
        Arc::clone(&store),
        ServerConfig {
            max_in_flight: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // N concurrent clients, disjoint series, deterministic scripts.
    // Each client records the canonical bytes of every query response.
    let mut joins = Vec::new();
    for c in 0..CLIENTS {
        let addr = server.local_addr();
        joins.push(thread::spawn(move || {
            let mut cl = TsNetClient::connect(addr, ClientConfig::default()).unwrap();
            let mut observed: Vec<Vec<u8>> = Vec::new();
            for step in 0..STEPS {
                let (series, points) = step_write(c, step);
                let wrote = cl.write_batch(vec![(series, points.clone())]).unwrap();
                assert_eq!(wrote as usize, points.len());
                if let Some((series, lo, hi)) = step_delete(c, step) {
                    cl.delete(&series, lo, hi).unwrap();
                }
                if step_flush(step) {
                    cl.flush_seal(Some(&series_name(c, 0)), true).unwrap();
                }
                for (series, op, t_qs, t_qe, w) in step_queries(c, step) {
                    let spans = cl.m4_query(&series, op, t_qs, t_qe, w).unwrap();
                    observed.push(m4_bytes(spans));
                }
            }
            observed
        }));
    }
    let observed: Vec<Vec<Vec<u8>>> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    // Oracle: replay each client's script sequentially against a twin
    // store. Clients touch disjoint series, so per-client replay sees
    // exactly the states the live queries saw.
    let (twin, _twin_dir) = open_store("concurrent-twin");
    for (c, client_observed) in observed.iter().enumerate() {
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for step in 0..STEPS {
            let (series, points) = step_write(c, step);
            let mut batch = tskv::WriteBatch::new();
            batch.insert_many(&series, &points);
            twin.write_batch(&batch).unwrap();
            if let Some((series, lo, hi)) = step_delete(c, step) {
                twin.delete(&series, lo, hi).unwrap();
            }
            if step_flush(step) {
                twin.flush(&series_name(c, 0)).unwrap();
                twin.compact(&series_name(c, 0)).unwrap();
            }
            for (series, op, t_qs, t_qe, w) in step_queries(c, step) {
                expected.push(oracle_query(&twin, &series, op, t_qs, t_qe, w));
            }
        }
        assert_eq!(
            client_observed, &expected,
            "client {c}: networked M4 responses diverge from the in-process oracle"
        );
    }

    // Final-state check: both operators, every series, full range,
    // byte-identical across the TCP boundary.
    let mut cl = client(&server);
    for c in 0..CLIENTS {
        for which in 0..2 {
            let series = series_name(c, which);
            for op in [Operator::Udf, Operator::Lsm] {
                let spans = cl.m4_query(&series, op, -1000, 5_000, 13).unwrap();
                let expected = oracle_query(&twin, &series, op, -1000, 5_000, 13);
                assert_eq!(m4_bytes(spans), expected, "{series} {op:?} final state");
            }
        }
    }

    let (_, stats) = cl.stats().unwrap();
    assert!(stats.requests_write >= (CLIENTS * STEPS) as u64);
    assert!(stats.requests_query > 0);
    assert!(stats.requests_delete > 0);
    assert!(stats.requests_flush > 0);
    assert_eq!(stats.rejected_busy, 0, "scripts must not trip admission");
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    server.shutdown();
}

#[test]
fn busy_backpressure_is_typed_and_counted() {
    let (store, _dir) = open_store("busy");
    let server = TsNetServer::start(
        store,
        ServerConfig {
            max_in_flight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Client A parks the single admission slot with a delayed ping.
    let addr = server.local_addr();
    let occupier = thread::spawn(move || {
        let mut a = TsNetClient::connect(addr, ClientConfig::default()).unwrap();
        a.ping_delay(800)
    });

    // Client B watches via Stats (control-plane: bypasses admission)
    // until the slot is provably held, then sends admitted work.
    let mut b = client(&server);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, stats) = b.stats().unwrap();
        if stats.in_flight >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "occupier never admitted");
        thread::sleep(Duration::from_millis(5));
    }
    let rejected = b.ping();
    assert!(
        matches!(rejected, Err(NetError::Busy)),
        "expected typed Busy, got {rejected:?}"
    );
    let (_, stats) = b.stats().unwrap();
    assert!(stats.rejected_busy >= 1);

    // The connection survives backpressure, and retry succeeds once
    // the slot frees up.
    assert!(occupier.join().unwrap().is_ok());
    b.call_with_busy_retry(tsnet::Request::Ping { delay_ms: 0 }, 10, 20)
        .unwrap();
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (store, _dir) = open_store("drain");
    let server = TsNetServer::start(store, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    const DELAY_MS: u64 = 600;
    let in_flight = thread::spawn(move || {
        let mut a = TsNetClient::connect(addr, ClientConfig::default()).unwrap();
        a.ping_delay(DELAY_MS as u32)
    });

    let deadline = Instant::now() + Duration::from_secs(5);
    while server.in_flight() == 0 {
        assert!(Instant::now() < deadline, "delayed ping never admitted");
        thread::sleep(Duration::from_millis(5));
    }

    // Shutdown must block until the in-flight ping finishes, and the
    // client must still receive its Pong (drained, not dropped).
    let begun = Instant::now();
    server.shutdown();
    assert!(server.is_shutting_down());
    assert_eq!(server.in_flight(), 0, "drain left work in flight");
    assert!(
        begun.elapsed() >= Duration::from_millis(50),
        "shutdown returned without waiting for the in-flight request"
    );
    assert!(
        in_flight.join().unwrap().is_ok(),
        "in-flight response was not delivered"
    );

    // The listener is gone: new connections are refused.
    let refused = TsNetClient::connect(
        addr,
        ClientConfig {
            connect_attempts: 1,
            connect_backoff_ms: 1,
            ..ClientConfig::default()
        },
    );
    assert!(matches!(refused, Err(NetError::ConnectFailed { .. })));
}

#[test]
fn deadline_overrun_is_typed_and_counted() {
    let (store, _dir) = open_store("deadline");
    let server = TsNetServer::start(store, ServerConfig::default()).unwrap();
    let mut cl = client(&server);

    cl.set_deadline_ms(10);
    let late = cl.ping_delay(200);
    assert!(
        matches!(late, Err(NetError::Timeout)),
        "expected typed Timeout, got {late:?}"
    );

    cl.set_deadline_ms(0);
    cl.ping().unwrap();
    let (_, stats) = cl.stats().unwrap();
    assert_eq!(stats.timeouts, 1);
    assert!(stats.requests_ping >= 1);
    server.shutdown();
}

#[test]
fn remote_errors_are_typed() {
    let (store, _dir) = open_store("errors");
    let server = TsNetServer::start(store, ServerConfig::default()).unwrap();
    let mut cl = client(&server);

    // Unknown series.
    let missing = cl.m4_query("no.such", Operator::Lsm, 0, 10, 4);
    assert!(
        matches!(
            missing,
            Err(NetError::Remote {
                code: tsnet::ErrorCode::SeriesNotFound,
                ..
            })
        ),
        "{missing:?}"
    );

    // Semantically invalid query (empty range) on a real series.
    cl.write_batch(vec![("s".to_string(), vec![Point::new(1, 2.0)])])
        .unwrap();
    let empty = cl.m4_query("s", Operator::Udf, 10, 10, 4);
    assert!(
        matches!(
            empty,
            Err(NetError::Remote {
                code: tsnet::ErrorCode::InvalidRequest,
                ..
            })
        ),
        "{empty:?}"
    );

    // Invalid delete range.
    let bad_delete = cl.delete("s", 10, -10);
    assert!(
        matches!(
            bad_delete,
            Err(NetError::Remote {
                code: tsnet::ErrorCode::InvalidRequest,
                ..
            })
        ),
        "{bad_delete:?}"
    );

    let (_, stats) = cl.stats().unwrap();
    assert_eq!(stats.errors, 3);
    server.shutdown();
}

#[test]
fn latency_histogram_populates_over_the_wire() {
    let (store, _dir) = open_store("latency");
    let server = TsNetServer::start(store, ServerConfig::default()).unwrap();
    let mut cl = client(&server);
    for _ in 0..20 {
        cl.ping().unwrap();
    }
    let (_, stats) = cl.stats().unwrap();
    assert_eq!(stats.requests_ping, 20);
    assert_eq!(stats.latency_counts.len(), tsnet::stats::LATENCY_BUCKETS);
    assert_eq!(stats.latency_counts.iter().sum::<u64>(), 20);
    assert!(stats.p50_us() > 0);
    assert!(stats.p99_us() >= stats.p50_us());
    server.shutdown();
}
