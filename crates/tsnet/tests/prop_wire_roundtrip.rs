//! Property tests for the tsnet wire protocol.
//!
//! The protocol's contract has two halves:
//!
//! 1. **Round-trip fidelity** — any encodable request/response/push
//!    decodes back to a frame that re-encodes to the *same bytes*
//!    (byte equality sidesteps `NaN != NaN`: value bit patterns must
//!    survive the wire exactly).
//! 2. **Hostile-input totality** — truncations, bit flips and random
//!    garbage must decode to typed [`tsnet::NetError`]s, never panic,
//!    and anything that *does* decode must be self-consistent
//!    (re-encoding reproduces the consumed bytes).
//!
//! All three frame kinds of protocol v4 are covered, including the
//! server-initiated push frames ([`Push::SpanDelta`], [`Push::Lagged`],
//! [`Push::SubError`]) and the subscription request/response pairs.

// Tests assert by panicking; the workspace deny-set targets library
// code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use proptest::prelude::*;
use tsfile::types::Point;
use tskv::stats::IoSnapshot;
use tskv::wire::IO_BLOCK_U64S;
use tsnet::stats::{ServerStatsSnapshot, LATENCY_BUCKETS, SERVER_FIXED_U64S};
use tsnet::wire::{
    decode_frame, encode_push, encode_request, encode_response, Frame, Operator, Push, Request,
    RequestEnvelope, Response, ResponseEnvelope,
};
use tsnet::ErrorCode;

fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(97u8..=122, 1..=12)
        .prop_map(|bytes| String::from_utf8(bytes).unwrap_or_default())
}

/// Points with *any* value bit pattern — NaN and infinities included.
fn point_strategy() -> impl Strategy<Value = Point> {
    (any::<i64>(), any::<u64>()).prop_map(|(t, bits)| Point::new(t, f64::from_bits(bits)))
}

fn error_code_strategy() -> impl Strategy<Value = ErrorCode> {
    (0u8..=6).prop_map(|tag| ErrorCode::from_wire(tag).unwrap())
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let entry = (
        name_strategy(),
        prop::collection::vec(point_strategy(), 0..=16),
    );
    prop_oneof![
        any::<u32>().prop_map(|delay_ms| Request::Ping { delay_ms }),
        prop::collection::vec(entry, 0..=4).prop_map(|entries| Request::WriteBatch { entries }),
        (
            name_strategy(),
            any::<bool>(),
            any::<i64>(),
            any::<i64>(),
            any::<u32>()
        )
            .prop_map(|(series, lsm, t_qs, t_qe, w)| Request::M4Query {
                series,
                op: if lsm { Operator::Lsm } else { Operator::Udf },
                t_qs,
                t_qe,
                w,
            }),
        (name_strategy(), any::<i64>(), any::<i64>())
            .prop_map(|(series, start, end)| { Request::Delete { series, start, end } }),
        Just(Request::Stats),
        (any::<bool>(), name_strategy(), any::<bool>()).prop_map(|(named, name, compact)| {
            Request::FlushSeal {
                series: if named { Some(name) } else { None },
                compact,
            }
        }),
        (name_strategy(), any::<i64>(), any::<i64>(), any::<u32>()).prop_map(
            |(series, t_qs, t_qe, w)| Request::Subscribe {
                series,
                t_qs,
                t_qe,
                w,
            }
        ),
        any::<u64>().prop_map(|sub_id| Request::Unsubscribe { sub_id }),
    ]
}

fn envelope_strategy() -> impl Strategy<Value = RequestEnvelope> {
    (any::<u64>(), any::<u32>(), request_strategy()).prop_map(|(request_id, deadline_ms, body)| {
        RequestEnvelope {
            request_id,
            deadline_ms,
            body,
        }
    })
}

fn span_strategy() -> impl Strategy<Value = Option<m4::SpanRepr>> {
    (
        any::<bool>(),
        point_strategy(),
        point_strategy(),
        point_strategy(),
        point_strategy(),
    )
        .prop_map(|(some, first, last, bottom, top)| {
            some.then_some(m4::SpanRepr {
                first,
                last,
                bottom,
                top,
            })
        })
}

fn io_snapshot_strategy() -> impl Strategy<Value = IoSnapshot> {
    prop::collection::vec(any::<u64>(), IO_BLOCK_U64S).prop_map(|v| IoSnapshot {
        chunks_loaded: v[0],
        bytes_read: v[1],
        points_decoded: v[2],
        timestamps_decoded: v[3],
        mem_chunks_read: v[4],
        cache_hits: v[5],
        cache_misses: v[6],
        cache_evictions: v[7],
        cache_invalidations: v[8],
        points_written: v[9],
        wal_batches: v[10],
        wal_bytes: v[11],
        wal_syncs: v[12],
        compactions_scheduled: v[13],
        compactions_completed: v[14],
        compactions_skipped: v[15],
        compaction_bytes_read: v[16],
        compaction_bytes_rewritten: v[17],
        compaction_pages_copied: v[18],
        compaction_pages_recoded: v[19],
        pages_decoded: v[20],
        pages_skipped: v[21],
        pages_stat_answered: v[22],
        pool_hits: v[23],
        pool_misses: v[24],
        catalog_hits: v[25],
        catalog_misses: v[26],
        stores_instantiated: v[27],
    })
}

fn server_snapshot_strategy() -> impl Strategy<Value = ServerStatsSnapshot> {
    (
        prop::collection::vec(any::<u64>(), SERVER_FIXED_U64S),
        prop::collection::vec(any::<u64>(), 0..=LATENCY_BUCKETS),
    )
        .prop_map(|(v, latency_counts)| ServerStatsSnapshot {
            requests_ping: v[0],
            requests_write: v[1],
            requests_query: v[2],
            requests_delete: v[3],
            requests_stats: v[4],
            requests_flush: v[5],
            rejected_busy: v[6],
            timeouts: v[7],
            errors: v[8],
            bytes_in: v[9],
            bytes_out: v[10],
            connections_accepted: v[11],
            connections_rejected: v[12],
            in_flight: v[13],
            subs_active: v[14],
            subs_deduped: v[15],
            deltas_pushed: v[16],
            deltas_coalesced: v[17],
            resyncs: v[18],
            latency_counts,
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        any::<u64>().prop_map(|points| Response::Written { points }),
        prop::collection::vec(span_strategy(), 0..=24).prop_map(|spans| Response::M4 { spans }),
        Just(Response::Deleted),
        (io_snapshot_strategy(), server_snapshot_strategy()).prop_map(|(io, server)| {
            Response::Stats {
                io: Box::new(io),
                server: Box::new(server),
            }
        }),
        any::<u32>().prop_map(|series_flushed| Response::Flushed { series_flushed }),
        (error_code_strategy(), name_strategy())
            .prop_map(|(code, detail)| Response::Error { code, detail }),
        (any::<u64>(), prop::collection::vec(span_strategy(), 0..=24))
            .prop_map(|(sub_id, spans)| Response::SubAck { sub_id, spans }),
        Just(Response::Unsubscribed),
    ]
}

fn response_envelope_strategy() -> impl Strategy<Value = ResponseEnvelope> {
    (any::<u64>(), response_strategy())
        .prop_map(|(request_id, body)| ResponseEnvelope { request_id, body })
}

fn push_strategy() -> impl Strategy<Value = Push> {
    let delta = (any::<u32>(), span_strategy());
    prop_oneof![
        (
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            prop::collection::vec(delta, 0..=16)
        )
            .prop_map(|(sub_id, seq, resync, deltas)| Push::SpanDelta {
                sub_id,
                seq,
                resync,
                deltas,
            }),
        any::<u64>().prop_map(|sub_id| Push::Lagged { sub_id }),
        (any::<u64>(), error_code_strategy(), name_strategy()).prop_map(
            |(sub_id, code, detail)| Push::SubError {
                sub_id,
                code,
                detail,
            }
        ),
    ]
}

/// Re-encode a decoded frame with the matching encoder.
fn reencode(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Request(env) => encode_request(env).unwrap(),
        Frame::Response(env) => encode_response(env).unwrap(),
        Frame::Push(push) => encode_push(push).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_encode_decode_reencode_is_identity(env in envelope_strategy()) {
        let bytes = encode_request(&env).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(matches!(frame, Frame::Request(_)));
        prop_assert_eq!(reencode(&frame), bytes);
    }

    #[test]
    fn response_encode_decode_reencode_is_identity(env in response_envelope_strategy()) {
        let bytes = encode_response(&env).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(matches!(frame, Frame::Response(_)));
        prop_assert_eq!(reencode(&frame), bytes);
    }

    #[test]
    fn push_encode_decode_reencode_is_identity(push in push_strategy()) {
        let bytes = encode_push(&push).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert!(matches!(frame, Frame::Push(_)));
        prop_assert_eq!(reencode(&frame), bytes);
    }

    #[test]
    fn every_strict_prefix_is_a_typed_error(
        env in envelope_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_request(&env).unwrap();
        let k = cut.index(bytes.len()); // strictly less than the full frame
        prop_assert!(decode_frame(&bytes[..k]).is_err());
    }

    #[test]
    fn every_strict_push_prefix_is_a_typed_error(
        push in push_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_push(&push).unwrap();
        let k = cut.index(bytes.len());
        prop_assert!(decode_frame(&bytes[..k]).is_err());
    }

    #[test]
    fn single_bit_corruption_never_panics_and_stays_framed(
        env in envelope_strategy(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_request(&env).unwrap();
        let k = pos.index(bytes.len());
        bytes[k] ^= 1u8 << bit;
        // A flip is either caught as a typed error (magic, version,
        // kind, length, checksum) or — only for bytes outside the
        // checksummed payload that still form a valid frame, e.g. the
        // request/response kind byte — decodes to a frame that
        // re-encodes to exactly the bytes consumed.
        match decode_frame(&bytes) {
            Err(_) => {}
            Ok((frame, used)) => {
                prop_assert_eq!(reencode(&frame), bytes[..used].to_vec());
            }
        }
    }

    #[test]
    fn single_bit_push_corruption_never_panics_and_stays_framed(
        push in push_strategy(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_push(&push).unwrap();
        let k = pos.index(bytes.len());
        bytes[k] ^= 1u8 << bit;
        match decode_frame(&bytes) {
            Err(_) => {}
            Ok((frame, used)) => {
                prop_assert_eq!(reencode(&frame), bytes[..used].to_vec());
            }
        }
    }

    #[test]
    fn payload_corruption_is_always_caught_by_the_checksum(
        env in response_envelope_strategy(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_response(&env).unwrap();
        let payload_len = bytes.len() - tsnet::wire::HEADER_LEN - tsnet::wire::TRAILER_LEN;
        prop_assume!(payload_len > 0);
        let k = tsnet::wire::HEADER_LEN + pos.index(payload_len);
        bytes[k] ^= 1u8 << bit;
        let caught = matches!(
            decode_frame(&bytes),
            Err(tsnet::NetError::ChecksumMismatch { .. })
        );
        prop_assert!(caught, "payload flip must fail the checksum");
    }

    #[test]
    fn push_payload_corruption_is_always_caught_by_the_checksum(
        push in push_strategy(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut bytes = encode_push(&push).unwrap();
        let payload_len = bytes.len() - tsnet::wire::HEADER_LEN - tsnet::wire::TRAILER_LEN;
        prop_assume!(payload_len > 0);
        let k = tsnet::wire::HEADER_LEN + pos.index(payload_len);
        bytes[k] ^= 1u8 << bit;
        let caught = matches!(
            decode_frame(&bytes),
            Err(tsnet::NetError::ChecksumMismatch { .. })
        );
        prop_assert!(caught, "payload flip must fail the checksum");
    }

    #[test]
    fn random_garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..=64)) {
        // Totality: the decoder must return, not panic, on anything.
        let _ = decode_frame(&junk);
    }
}
