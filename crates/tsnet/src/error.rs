//! Typed errors for the network layer.
//!
//! Decoding raw network bytes mirrors the L1/L3 discipline of the
//! storage crates: every malformed input maps to a [`NetError`]
//! variant, never a panic. Server-side failures travel back to the
//! client as a typed error-code response ([`ErrorCode`]) and surface
//! there as [`NetError::Busy`], [`NetError::Timeout`] or
//! [`NetError::Remote`].

use std::fmt;
use std::io;

/// Server-side failure classes carried inside an error response frame.
///
/// The numeric discriminants are part of the wire protocol (see
/// [`crate::wire`]) and must never be reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the request (max in-flight reached)
    /// or the connection limit rejected the socket. Retryable.
    Busy,
    /// The request's deadline elapsed before its response was ready.
    Timeout,
    /// The named series does not exist on the server.
    SeriesNotFound,
    /// The request was syntactically valid but semantically rejected
    /// (bad query range, bad series name, bad delete range…).
    InvalidRequest,
    /// The storage engine or query operator failed.
    Engine,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The referenced subscription id is not active on this connection
    /// (already unsubscribed, never acknowledged, or another
    /// connection's), or the server's subscription limit was reached.
    Subscription,
}

impl ErrorCode {
    /// Wire discriminant of this code.
    pub fn to_wire(self) -> u8 {
        match self {
            ErrorCode::Busy => 0,
            ErrorCode::Timeout => 1,
            ErrorCode::SeriesNotFound => 2,
            ErrorCode::InvalidRequest => 3,
            ErrorCode::Engine => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Subscription => 6,
        }
    }

    /// Decode a wire discriminant.
    pub fn from_wire(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ErrorCode::Busy),
            1 => Some(ErrorCode::Timeout),
            2 => Some(ErrorCode::SeriesNotFound),
            3 => Some(ErrorCode::InvalidRequest),
            4 => Some(ErrorCode::Engine),
            5 => Some(ErrorCode::ShuttingDown),
            6 => Some(ErrorCode::Subscription),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Timeout => "timeout",
            ErrorCode::SeriesNotFound => "series not found",
            ErrorCode::InvalidRequest => "invalid request",
            ErrorCode::Engine => "engine error",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Subscription => "subscription error",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong on the wire or at the remote end.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The frame did not start with the protocol magic.
    BadMagic([u8; 4]),
    /// The frame's protocol version is not supported by this build.
    UnsupportedVersion(u8),
    /// The buffer ended before the structure it claims to hold.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The payload checksum did not match: bytes were corrupted in
    /// flight (or the peer is not speaking this protocol).
    ChecksumMismatch { expected: u32, actual: u32 },
    /// An enum discriminant byte held no known value.
    UnknownTag {
        /// Which enum was being decoded.
        context: &'static str,
        tag: u8,
    },
    /// A frame or collection declared a size above the protocol limit.
    TooLarge {
        context: &'static str,
        len: u64,
        max: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadString,
    /// The peer answered with a response variant that does not match
    /// the request that was sent.
    UnexpectedResponse(&'static str),
    /// Could not establish a connection within the configured retries.
    ConnectFailed { attempts: u32, last: io::Error },
    /// The server rejected the request under load. Retryable.
    Busy,
    /// The server could not answer within the request's deadline.
    Timeout,
    /// Any other typed failure reported by the server.
    Remote { code: ErrorCode, detail: String },
}

impl NetError {
    /// Rebuild the client-side error for a decoded error-response
    /// `(code, detail)` pair.
    pub fn from_remote(code: ErrorCode, detail: String) -> Self {
        match code {
            ErrorCode::Busy => NetError::Busy,
            ErrorCode::Timeout => NetError::Timeout,
            _ => NetError::Remote { code, detail },
        }
    }

    /// Whether retrying the same request later may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Busy | NetError::Timeout)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            NetError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            NetError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            NetError::ChecksumMismatch { expected, actual } => write!(
                f,
                "payload checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            NetError::UnknownTag { context, tag } => {
                write!(f, "unknown {context} tag {tag:#04x}")
            }
            NetError::TooLarge { context, len, max } => {
                write!(f, "{context} length {len} exceeds protocol limit {max}")
            }
            NetError::BadString => write!(f, "length-prefixed string is not valid UTF-8"),
            NetError::UnexpectedResponse(wanted) => {
                write!(f, "response variant does not answer a {wanted} request")
            }
            NetError::ConnectFailed { attempts, last } => {
                write!(f, "connect failed after {attempts} attempt(s): {last}")
            }
            NetError::Busy => write!(f, "server busy (admission control rejected the request)"),
            NetError::Timeout => write!(f, "request deadline elapsed"),
            NetError::Remote { code, detail } => write!(f, "remote error ({code}): {detail}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::ConnectFailed { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn error_codes_roundtrip_the_wire() {
        for code in [
            ErrorCode::Busy,
            ErrorCode::Timeout,
            ErrorCode::SeriesNotFound,
            ErrorCode::InvalidRequest,
            ErrorCode::Engine,
            ErrorCode::ShuttingDown,
            ErrorCode::Subscription,
        ] {
            assert_eq!(ErrorCode::from_wire(code.to_wire()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire(200), None);
    }

    #[test]
    fn remote_codes_map_to_typed_variants() {
        assert!(matches!(
            NetError::from_remote(ErrorCode::Busy, String::new()),
            NetError::Busy
        ));
        assert!(matches!(
            NetError::from_remote(ErrorCode::Timeout, String::new()),
            NetError::Timeout
        ));
        assert!(matches!(
            NetError::from_remote(ErrorCode::Engine, "boom".into()),
            NetError::Remote {
                code: ErrorCode::Engine,
                ..
            }
        ));
        assert!(NetError::Busy.is_retryable());
        assert!(!NetError::BadString.is_retryable());
    }
}
