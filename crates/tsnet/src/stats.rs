//! Server observability counters.
//!
//! Same philosophy as [`tskv::stats`]: the interesting claims about the
//! service layer — how many requests were rejected under backpressure,
//! how many timed out, what the tail latency looks like — must be
//! assertable in tests and benchmarks, not inferred from wall-clock
//! time. Latency is recorded into a **fixed-bucket power-of-two
//! histogram**, so quantiles are computed from counts alone; tests feed
//! durations in directly and never depend on a real clock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of latency histogram buckets. Bucket `i` counts requests
/// whose latency `us` satisfies `bucket_index(us) == i`; bucket `i`'s
/// upper bound is `2^i` microseconds and the last bucket absorbs
/// everything slower (`2^25` µs ≈ 33 s).
pub const LATENCY_BUCKETS: usize = 26;

/// Histogram bucket for a duration in microseconds: the number of
/// significant bits, clamped to the last bucket.
pub fn bucket_index(us: u64) -> usize {
    let bits = (u64::BITS - us.leading_zeros()) as usize;
    bits.min(LATENCY_BUCKETS - 1)
}

/// Inclusive upper bound (µs) of histogram bucket `i`.
pub fn bucket_upper_bound_us(i: usize) -> u64 {
    1u64 << i.min(LATENCY_BUCKETS - 1)
}

/// The RPC kinds the server counts individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    Ping,
    Write,
    Query,
    Delete,
    Stats,
    Flush,
}

impl RequestKind {
    fn index(self) -> usize {
        match self {
            RequestKind::Ping => 0,
            RequestKind::Write => 1,
            RequestKind::Query => 2,
            RequestKind::Delete => 3,
            RequestKind::Stats => 4,
            RequestKind::Flush => 5,
        }
    }
}

const KINDS: usize = 6;

/// Number of fixed (non-histogram) `u64` fields the Stats RPC
/// serializes from [`ServerStatsSnapshot`], in declaration order. The
/// wire encoder, decoder, and the property-test strategy all consume
/// this constant — bumping it together with the struct is the whole
/// protocol change.
pub const SERVER_FIXED_U64S: usize = 19;

/// Shared atomic counters for one server's lifetime.
#[derive(Debug)]
pub struct ServerStats {
    requests: [AtomicU64; KINDS],
    rejected_busy: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    subs_active: AtomicU64,
    subs_deduped: AtomicU64,
    deltas_pushed: AtomicU64,
    deltas_coalesced: AtomicU64,
    resyncs: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            requests: std::array::from_fn(|_| AtomicU64::new(0)),
            rejected_busy: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            subs_active: AtomicU64::new(0),
            subs_deduped: AtomicU64::new(0),
            deltas_pushed: AtomicU64::new(0),
            deltas_coalesced: AtomicU64::new(0),
            resyncs: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServerStats {
    /// Count one executed request of `kind` and its latency.
    pub fn record_request(&self, kind: RequestKind, latency_us: u64) {
        if let Some(c) = self.requests.get(kind.index()) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(b) = self.latency.get(bucket_index(latency_us)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one request rejected by admission control.
    pub fn record_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request whose deadline elapsed.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one request answered with a non-busy, non-timeout error.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count request bytes read off a socket.
    pub fn add_bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Count response bytes written to a socket.
    pub fn add_bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one accepted connection.
    pub fn record_conn_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one connection turned away at the pool limit.
    pub fn record_conn_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one subscription attached (the `subs_active` gauge).
    pub fn record_sub_attached(&self) {
        self.subs_active.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one subscription detached (unsubscribe or disconnect).
    pub fn record_sub_detached(&self) {
        self.subs_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count one subscription that attached to an *existing* shared
    /// dashboard computation instead of creating its own.
    pub fn record_sub_deduped(&self) {
        self.subs_deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one span-delta push frame written to a subscriber.
    pub fn record_delta_pushed(&self) {
        self.deltas_pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one span update merged into an already-pending delta for
    /// the same span (slow-consumer coalescing).
    pub fn record_delta_coalesced(&self) {
        self.deltas_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one slow-consumer resync: pending deltas were dropped, a
    /// `Lagged` frame was queued, and the next push carries full state.
    pub fn record_resync(&self) {
        self.resyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-value snapshot. `in_flight` is the current admission
    /// gauge, owned by the server rather than the counter block.
    pub fn snapshot(&self, in_flight: u64) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            requests_ping: self.requests[RequestKind::Ping.index()].load(Ordering::Relaxed),
            requests_write: self.requests[RequestKind::Write.index()].load(Ordering::Relaxed),
            requests_query: self.requests[RequestKind::Query.index()].load(Ordering::Relaxed),
            requests_delete: self.requests[RequestKind::Delete.index()].load(Ordering::Relaxed),
            requests_stats: self.requests[RequestKind::Stats.index()].load(Ordering::Relaxed),
            requests_flush: self.requests[RequestKind::Flush.index()].load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            in_flight,
            subs_active: self.subs_active.load(Ordering::Relaxed),
            subs_deduped: self.subs_deduped.load(Ordering::Relaxed),
            deltas_pushed: self.deltas_pushed.load(Ordering::Relaxed),
            deltas_coalesced: self.deltas_coalesced.load(Ordering::Relaxed),
            resyncs: self.resyncs.load(Ordering::Relaxed),
            latency_counts: self
                .latency
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-value snapshot of [`ServerStats`], serialized by the `Stats`
/// RPC alongside the engine's [`tskv::stats::IoSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Executed `Ping` requests.
    pub requests_ping: u64,
    /// Executed `WriteBatch` requests.
    pub requests_write: u64,
    /// Executed `M4Query` requests.
    pub requests_query: u64,
    /// Executed `Delete` requests.
    pub requests_delete: u64,
    /// Executed `Stats` requests (control-plane; bypass admission).
    pub requests_stats: u64,
    /// Executed `FlushSeal` requests.
    pub requests_flush: u64,
    /// Requests rejected by the max-in-flight admission gate.
    pub rejected_busy: u64,
    /// Requests whose deadline elapsed before the response was ready.
    pub timeouts: u64,
    /// Requests answered with a non-busy, non-timeout error.
    pub errors: u64,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Connections accepted into the worker pool.
    pub connections_accepted: u64,
    /// Connections turned away at the pool limit.
    pub connections_rejected: u64,
    /// Admitted requests executing right now.
    pub in_flight: u64,
    /// Subscriptions currently attached (gauge).
    pub subs_active: u64,
    /// Subscriptions that joined an existing shared dashboard
    /// computation: with N subscribers over K distinct dashboards this
    /// reads `N − K`.
    pub subs_deduped: u64,
    /// Span-delta push frames written to subscriber sockets.
    pub deltas_pushed: u64,
    /// Span updates merged into an already-pending delta (coalesced
    /// instead of queued separately).
    pub deltas_coalesced: u64,
    /// Slow-consumer resyncs (`Lagged` + full-state push).
    pub resyncs: u64,
    /// Latency histogram counts ([`LATENCY_BUCKETS`] entries; bucket
    /// `i` covers latencies up to [`bucket_upper_bound_us`]`(i)`).
    pub latency_counts: Vec<u64>,
}

impl ServerStatsSnapshot {
    /// Total executed requests across all kinds.
    pub fn requests_total(&self) -> u64 {
        self.requests_ping
            + self.requests_write
            + self.requests_query
            + self.requests_delete
            + self.requests_stats
            + self.requests_flush
    }

    /// The histogram bucket upper bound (µs) containing the `q`-th
    /// latency quantile (`0.0 < q <= 1.0`). Zero when nothing was
    /// recorded. Quantiles are bucket-resolution approximations: the
    /// returned value is the smallest power-of-two bound at or above
    /// the true quantile.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.latency_counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.latency_counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound_us(i);
            }
        }
        bucket_upper_bound_us(LATENCY_BUCKETS - 1)
    }

    /// Median latency bucket bound (µs).
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency bucket bound (µs).
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
        let mut last = 0;
        for us in [0u64, 1, 5, 100, 10_000, 1 << 40] {
            let b = bucket_index(us);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn quantiles_from_recorded_counts_no_clock() {
        let s = ServerStats::default();
        // 99 fast requests (~100 µs) and one slow outlier (~1 s),
        // recorded directly — no wall-clock involved.
        for _ in 0..99 {
            s.record_request(RequestKind::Query, 100);
        }
        s.record_request(RequestKind::Query, 1_000_000);
        let snap = s.snapshot(0);
        assert_eq!(snap.requests_query, 100);
        // 100 µs has 7 significant bits → bucket 7, bound 128 µs.
        assert_eq!(snap.p50_us(), 128);
        // The 99th of 100 samples is still a fast one; p100 is slow.
        assert_eq!(snap.p99_us(), 128);
        assert_eq!(
            snap.quantile_us(1.0),
            bucket_upper_bound_us(bucket_index(1_000_000))
        );
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let s = ServerStats::default();
        s.record_request(RequestKind::Ping, 1);
        s.record_request(RequestKind::Write, 1);
        s.record_request(RequestKind::Write, 1);
        s.record_busy();
        s.record_timeout();
        s.record_error();
        s.add_bytes_in(10);
        s.add_bytes_out(20);
        s.record_conn_accepted();
        s.record_conn_rejected();
        let snap = s.snapshot(3);
        assert_eq!(snap.requests_ping, 1);
        assert_eq!(snap.requests_write, 2);
        assert_eq!(snap.requests_total(), 3);
        assert_eq!(snap.rejected_busy, 1);
        assert_eq!(snap.timeouts, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.bytes_in, 10);
        assert_eq!(snap.bytes_out, 20);
        assert_eq!(snap.connections_accepted, 1);
        assert_eq!(snap.connections_rejected, 1);
        assert_eq!(snap.in_flight, 3);
    }

    #[test]
    fn subscription_counters_accumulate() {
        let s = ServerStats::default();
        s.record_sub_attached();
        s.record_sub_attached();
        s.record_sub_attached();
        s.record_sub_detached();
        s.record_sub_deduped();
        s.record_delta_pushed();
        s.record_delta_pushed();
        s.record_delta_coalesced();
        s.record_resync();
        let snap = s.snapshot(0);
        assert_eq!(snap.subs_active, 2);
        assert_eq!(snap.subs_deduped, 1);
        assert_eq!(snap.deltas_pushed, 2);
        assert_eq!(snap.deltas_coalesced, 1);
        assert_eq!(snap.resyncs, 1);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let snap = ServerStats::default().snapshot(0);
        assert_eq!(snap.p50_us(), 0);
        assert_eq!(snap.p99_us(), 0);
    }
}
