//! Blocking client for the tsnet protocol.
//!
//! One [`TsNetClient`] owns one TCP connection and issues one request
//! at a time (use one client per thread for concurrency). Connection
//! establishment retries with linear backoff; `Busy` responses surface
//! as the retryable [`NetError::Busy`] so callers choose their own
//! backpressure policy — or use [`TsNetClient::call_with_busy_retry`].
//!
//! ## Reading a connection that also carries pushes
//!
//! Once a subscription is active the server may interleave
//! **unsolicited push frames** between responses. The read path demuxes
//! on frame kind and request id: pushes read mid-call are buffered and
//! later surfaced by [`TsNetClient::poll_push`]; response frames whose
//! request id does not match the in-flight request (stale answers from
//! an abandoned call) are discarded instead of being mistaken for the
//! current call's response — the correlation id is what makes
//! [`TsNetClient::call_with_busy_retry`] safe on a pushy connection.
//!
//! [`SubReplay`] folds a subscription's `SubAck` baseline plus its
//! `SpanDelta` stream back into a dashboard state; at any server
//! quiesce point that state is byte-identical to a fresh M4 recompute.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use m4::SpanRepr;
use tsfile::types::Point;
use tskv::stats::IoSnapshot;

use crate::error::{ErrorCode, NetError};
use crate::stats::ServerStatsSnapshot;
use crate::wire::{self, Frame, Operator, Push, Request, RequestEnvelope, Response};
use crate::Result;

/// Tuning knobs for one client connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection attempts before giving up.
    pub connect_attempts: u32,
    /// Backoff between connection attempts (ms, linear: attempt × this).
    pub connect_backoff_ms: u64,
    /// Socket read timeout while waiting for a response (ms; 0 = none).
    pub read_timeout_ms: u64,
    /// Deadline stamped on every request envelope (ms; 0 = none).
    pub deadline_ms: u32,
    /// Largest response payload this client will accept (bytes).
    pub max_payload_bytes: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 10,
            connect_backoff_ms: 50,
            read_timeout_ms: 30_000,
            deadline_ms: 0,
            max_payload_bytes: wire::MAX_PAYLOAD_BYTES,
        }
    }
}

/// A blocking connection to a [`crate::server::TsNetServer`].
pub struct TsNetClient {
    stream: TcpStream,
    config: ClientConfig,
    /// Correlation id for the next request envelope.
    next_request_id: u64,
    /// Push frames read while waiting for a response, in arrival
    /// order; drained by [`TsNetClient::poll_push`].
    buffered_pushes: VecDeque<Push>,
}

/// An acknowledged subscription: its server-assigned id and the
/// baseline span state the delta stream applies on top of.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    pub sub_id: u64,
    pub spans: Vec<Option<SpanRepr>>,
}

impl TsNetClient {
    /// Connect to `addr`, retrying per the config. Useful against a
    /// server that is still binding (CI starts both concurrently).
    pub fn connect(addr: impl ToSocketAddrs + Copy, config: ClientConfig) -> Result<TsNetClient> {
        let attempts = config.connect_attempts.max(1);
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(
                    config.connect_backoff_ms.saturating_mul(u64::from(attempt)),
                ));
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    if config.read_timeout_ms > 0 {
                        stream.set_read_timeout(Some(Duration::from_millis(
                            config.read_timeout_ms,
                        )))?;
                    }
                    stream.set_nodelay(true)?;
                    return Ok(TsNetClient {
                        stream,
                        config,
                        next_request_id: 1,
                        buffered_pushes: VecDeque::new(),
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::ConnectFailed {
            attempts,
            last: last.unwrap_or_else(|| std::io::Error::other("no connection attempt ran")),
        })
    }

    /// Change the deadline stamped on subsequent requests (ms; 0 = none).
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.config.deadline_ms = deadline_ms;
    }

    /// Issue one request and decode its response frame. Error
    /// responses come back as `Err` ([`NetError::Busy`],
    /// [`NetError::Timeout`] or [`NetError::Remote`]).
    ///
    /// Push frames that arrive before the response are buffered for
    /// [`TsNetClient::poll_push`]; response frames carrying a stale
    /// request id (answers to an earlier, abandoned call) are
    /// discarded.
    pub fn call(&mut self, body: Request) -> Result<Response> {
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        let env = RequestEnvelope {
            request_id,
            deadline_ms: self.config.deadline_ms,
            body,
        };
        let bytes = wire::encode_request(&env)?;
        wire::write_frame(&mut self.stream, &bytes)?;
        loop {
            let frame = wire::read_frame(&mut self.stream, self.config.max_payload_bytes)?;
            match frame {
                Frame::Push(push) => {
                    self.buffered_pushes.push_back(push);
                }
                Frame::Response(resp) if resp.request_id == request_id => {
                    return match resp.body {
                        Response::Error { code, detail } => {
                            Err(NetError::from_remote(code, detail))
                        }
                        body => Ok(body),
                    };
                }
                // A stale response (its call already returned with a
                // read error or timeout): drop it and keep reading —
                // this is what re-syncs the stream after a deadline.
                Frame::Response(_) => {}
                Frame::Request(_) => return Err(NetError::UnexpectedResponse("client")),
            }
        }
    }

    /// Surface the next server push, waiting up to `timeout` for one
    /// to arrive. Returns `Ok(None)` when the wait elapses without a
    /// push. Buffered pushes (read mid-call) are drained first.
    pub fn poll_push(&mut self, timeout: Duration) -> Result<Option<Push>> {
        if let Some(push) = self.buffered_pushes.pop_front() {
            return Ok(Some(push));
        }
        // A zero timeout would mean "block forever" to the OS; clamp
        // to the smallest finite wait instead.
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let outcome = loop {
            match wire::read_frame(&mut self.stream, self.config.max_payload_bytes) {
                Ok(Frame::Push(push)) => break Ok(Some(push)),
                // Stale response from an abandoned call: discard.
                Ok(Frame::Response(_)) => {}
                Ok(Frame::Request(_)) => break Err(NetError::UnexpectedResponse("client")),
                Err(NetError::Io(e))
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break Ok(None);
                }
                Err(e) => break Err(e),
            }
        };
        // Restore the configured response timeout for subsequent calls.
        let configured = if self.config.read_timeout_ms > 0 {
            Some(Duration::from_millis(self.config.read_timeout_ms))
        } else {
            None
        };
        self.stream.set_read_timeout(configured)?;
        outcome
    }

    /// Like [`TsNetClient::call`], retrying `Busy` rejections with
    /// linear backoff. Non-retryable errors return immediately.
    pub fn call_with_busy_retry(
        &mut self,
        body: Request,
        attempts: u32,
        backoff_ms: u64,
    ) -> Result<Response> {
        let attempts = attempts.max(1);
        let mut outcome = self.call(body.clone());
        for attempt in 1..attempts {
            match &outcome {
                Err(NetError::Busy) => {
                    thread::sleep(Duration::from_millis(
                        backoff_ms.saturating_mul(u64::from(attempt)),
                    ));
                    outcome = self.call(body.clone());
                }
                _ => break,
            }
        }
        outcome
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.ping_delay(0)
    }

    /// Liveness probe that holds its admission slot for `delay_ms` on
    /// the server — orchestration aid for backpressure tests.
    pub fn ping_delay(&mut self, delay_ms: u32) -> Result<()> {
        match self.call(Request::Ping { delay_ms })? {
            Response::Pong => Ok(()),
            _ => Err(NetError::UnexpectedResponse("ping")),
        }
    }

    /// Write points to one or more series; returns points accepted.
    pub fn write_batch(&mut self, entries: Vec<(String, Vec<Point>)>) -> Result<u64> {
        match self.call(Request::WriteBatch { entries })? {
            Response::Written { points } => Ok(points),
            _ => Err(NetError::UnexpectedResponse("write-batch")),
        }
    }

    /// Run an M4 query; returns the per-span representations.
    pub fn m4_query(
        &mut self,
        series: &str,
        op: Operator,
        t_qs: i64,
        t_qe: i64,
        w: u32,
    ) -> Result<Vec<Option<SpanRepr>>> {
        let req = Request::M4Query {
            series: series.to_string(),
            op,
            t_qs,
            t_qe,
            w,
        };
        match self.call(req)? {
            Response::M4 { spans } => Ok(spans),
            _ => Err(NetError::UnexpectedResponse("m4-query")),
        }
    }

    /// Delete `[start, end]` from a series.
    pub fn delete(&mut self, series: &str, start: i64, end: i64) -> Result<()> {
        let req = Request::Delete {
            series: series.to_string(),
            start,
            end,
        };
        match self.call(req)? {
            Response::Deleted => Ok(()),
            _ => Err(NetError::UnexpectedResponse("delete")),
        }
    }

    /// Fetch engine I/O counters and server counters.
    pub fn stats(&mut self) -> Result<(IoSnapshot, ServerStatsSnapshot)> {
        match self.call(Request::Stats)? {
            Response::Stats { io, server } => Ok((*io, *server)),
            _ => Err(NetError::UnexpectedResponse("stats")),
        }
    }

    /// Flush (and optionally compact) one series or all; returns the
    /// series count touched.
    pub fn flush_seal(&mut self, series: Option<&str>, compact: bool) -> Result<u32> {
        let req = Request::FlushSeal {
            series: series.map(str::to_string),
            compact,
        };
        match self.call(req)? {
            Response::Flushed { series_flushed } => Ok(series_flushed),
            _ => Err(NetError::UnexpectedResponse("flush-seal")),
        }
    }

    /// Register a live M4 subscription; returns the server-assigned id
    /// and the baseline spans the delta stream applies on top of.
    pub fn subscribe(
        &mut self,
        series: &str,
        t_qs: i64,
        t_qe: i64,
        w: u32,
    ) -> Result<Subscription> {
        let req = Request::Subscribe {
            series: series.to_string(),
            t_qs,
            t_qe,
            w,
        };
        match self.call(req)? {
            Response::SubAck { sub_id, spans } => Ok(Subscription { sub_id, spans }),
            _ => Err(NetError::UnexpectedResponse("subscribe")),
        }
    }

    /// Detach one subscription. Pushes for its id already in flight
    /// may still be read afterwards; [`SubReplay`] ignores them once
    /// dropped.
    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<()> {
        match self.call(Request::Unsubscribe { sub_id })? {
            Response::Unsubscribed => Ok(()),
            _ => Err(NetError::UnexpectedResponse("unsubscribe")),
        }
    }
}

/// Client-side fold of one subscription's push stream back into a
/// dashboard state.
///
/// Seeded with the `SubAck` baseline, then fed every push frame the
/// connection yields (frames for other subscription ids are ignored).
/// `SpanDelta` frames overwrite the named spans; a `resync` frame
/// replaces the whole state. At any server quiesce point the folded
/// state equals a fresh M4 recompute, byte for byte.
#[derive(Debug, Clone)]
pub struct SubReplay {
    sub_id: u64,
    spans: Vec<Option<SpanRepr>>,
    next_seq: u64,
    /// A `Lagged` frame arrived: deltas were dropped server-side and a
    /// resync is (or was) in flight.
    lagged: bool,
    /// The sequence numbers skipped or repeated — the stream is not
    /// trustworthy (this never happens over a healthy connection).
    seq_gap: bool,
    /// Terminal server-side failure for this subscription, if any.
    error: Option<(ErrorCode, String)>,
}

impl SubReplay {
    /// Start replaying on top of an acknowledged subscription.
    pub fn new(sub: &Subscription) -> SubReplay {
        SubReplay {
            sub_id: sub.sub_id,
            spans: sub.spans.clone(),
            next_seq: 0,
            lagged: false,
            seq_gap: false,
            error: None,
        }
    }

    /// Fold one push frame in. Returns `true` when the frame addressed
    /// this subscription (whether or not it changed anything).
    pub fn apply(&mut self, push: &Push) -> bool {
        match push {
            Push::SpanDelta {
                sub_id,
                seq,
                resync,
                deltas,
            } => {
                if *sub_id != self.sub_id {
                    return false;
                }
                if *seq != self.next_seq {
                    self.seq_gap = true;
                }
                self.next_seq = seq.wrapping_add(1);
                if *resync {
                    // Full-state frame: everything not named is gone.
                    self.spans.iter_mut().for_each(|s| *s = None);
                    self.lagged = false;
                }
                for (idx, span) in deltas {
                    if let Some(slot) = self.spans.get_mut(*idx as usize) {
                        *slot = *span;
                    }
                }
                true
            }
            Push::Lagged { sub_id } => {
                if *sub_id != self.sub_id {
                    return false;
                }
                self.lagged = true;
                true
            }
            Push::SubError {
                sub_id,
                code,
                detail,
            } => {
                if *sub_id != self.sub_id {
                    return false;
                }
                self.error = Some((*code, detail.clone()));
                true
            }
        }
    }

    /// The folded span state.
    pub fn spans(&self) -> &[Option<SpanRepr>] {
        &self.spans
    }

    /// Whether a lag was signalled and its resync has not landed yet.
    pub fn is_lagged(&self) -> bool {
        self.lagged
    }

    /// Whether the push stream skipped or repeated a sequence number.
    pub fn has_seq_gap(&self) -> bool {
        self.seq_gap
    }

    /// Terminal server-side failure, if one was pushed.
    pub fn error(&self) -> Option<&(ErrorCode, String)> {
        self.error.as_ref()
    }

    /// Push frames folded so far (the next expected sequence number).
    pub fn frames_applied(&self) -> u64 {
        self.next_seq
    }
}
