//! Blocking client for the tsnet protocol.
//!
//! One [`TsNetClient`] owns one TCP connection and issues one request
//! at a time (the protocol is strictly request/response per
//! connection; use one client per thread for concurrency). Connection
//! establishment retries with linear backoff; `Busy` responses surface
//! as the retryable [`NetError::Busy`] so callers choose their own
//! backpressure policy — or use [`TsNetClient::call_with_busy_retry`].

use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use m4::SpanRepr;
use tsfile::types::Point;
use tskv::stats::IoSnapshot;

use crate::error::NetError;
use crate::stats::ServerStatsSnapshot;
use crate::wire::{self, Frame, Operator, Request, RequestEnvelope, Response};
use crate::Result;

/// Tuning knobs for one client connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection attempts before giving up.
    pub connect_attempts: u32,
    /// Backoff between connection attempts (ms, linear: attempt × this).
    pub connect_backoff_ms: u64,
    /// Socket read timeout while waiting for a response (ms; 0 = none).
    pub read_timeout_ms: u64,
    /// Deadline stamped on every request envelope (ms; 0 = none).
    pub deadline_ms: u32,
    /// Largest response payload this client will accept (bytes).
    pub max_payload_bytes: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 10,
            connect_backoff_ms: 50,
            read_timeout_ms: 30_000,
            deadline_ms: 0,
            max_payload_bytes: wire::MAX_PAYLOAD_BYTES,
        }
    }
}

/// A blocking connection to a [`crate::server::TsNetServer`].
pub struct TsNetClient {
    stream: TcpStream,
    config: ClientConfig,
}

impl TsNetClient {
    /// Connect to `addr`, retrying per the config. Useful against a
    /// server that is still binding (CI starts both concurrently).
    pub fn connect(addr: impl ToSocketAddrs + Copy, config: ClientConfig) -> Result<TsNetClient> {
        let attempts = config.connect_attempts.max(1);
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(
                    config.connect_backoff_ms.saturating_mul(u64::from(attempt)),
                ));
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    if config.read_timeout_ms > 0 {
                        stream.set_read_timeout(Some(Duration::from_millis(
                            config.read_timeout_ms,
                        )))?;
                    }
                    stream.set_nodelay(true)?;
                    return Ok(TsNetClient { stream, config });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::ConnectFailed {
            attempts,
            last: last.unwrap_or_else(|| std::io::Error::other("no connection attempt ran")),
        })
    }

    /// Change the deadline stamped on subsequent requests (ms; 0 = none).
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.config.deadline_ms = deadline_ms;
    }

    /// Issue one request and decode its response frame. Error
    /// responses come back as `Err` ([`NetError::Busy`],
    /// [`NetError::Timeout`] or [`NetError::Remote`]).
    pub fn call(&mut self, body: Request) -> Result<Response> {
        let env = RequestEnvelope {
            deadline_ms: self.config.deadline_ms,
            body,
        };
        let bytes = wire::encode_request(&env)?;
        wire::write_frame(&mut self.stream, &bytes)?;
        let frame = wire::read_frame(&mut self.stream, self.config.max_payload_bytes)?;
        match frame {
            Frame::Response(Response::Error { code, detail }) => {
                Err(NetError::from_remote(code, detail))
            }
            Frame::Response(resp) => Ok(resp),
            Frame::Request(_) => Err(NetError::UnexpectedResponse("client")),
        }
    }

    /// Like [`TsNetClient::call`], retrying `Busy` rejections with
    /// linear backoff. Non-retryable errors return immediately.
    pub fn call_with_busy_retry(
        &mut self,
        body: Request,
        attempts: u32,
        backoff_ms: u64,
    ) -> Result<Response> {
        let attempts = attempts.max(1);
        let mut outcome = self.call(body.clone());
        for attempt in 1..attempts {
            match &outcome {
                Err(NetError::Busy) => {
                    thread::sleep(Duration::from_millis(
                        backoff_ms.saturating_mul(u64::from(attempt)),
                    ));
                    outcome = self.call(body.clone());
                }
                _ => break,
            }
        }
        outcome
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        self.ping_delay(0)
    }

    /// Liveness probe that holds its admission slot for `delay_ms` on
    /// the server — orchestration aid for backpressure tests.
    pub fn ping_delay(&mut self, delay_ms: u32) -> Result<()> {
        match self.call(Request::Ping { delay_ms })? {
            Response::Pong => Ok(()),
            _ => Err(NetError::UnexpectedResponse("ping")),
        }
    }

    /// Write points to one or more series; returns points accepted.
    pub fn write_batch(&mut self, entries: Vec<(String, Vec<Point>)>) -> Result<u64> {
        match self.call(Request::WriteBatch { entries })? {
            Response::Written { points } => Ok(points),
            _ => Err(NetError::UnexpectedResponse("write-batch")),
        }
    }

    /// Run an M4 query; returns the per-span representations.
    pub fn m4_query(
        &mut self,
        series: &str,
        op: Operator,
        t_qs: i64,
        t_qe: i64,
        w: u32,
    ) -> Result<Vec<Option<SpanRepr>>> {
        let req = Request::M4Query {
            series: series.to_string(),
            op,
            t_qs,
            t_qe,
            w,
        };
        match self.call(req)? {
            Response::M4 { spans } => Ok(spans),
            _ => Err(NetError::UnexpectedResponse("m4-query")),
        }
    }

    /// Delete `[start, end]` from a series.
    pub fn delete(&mut self, series: &str, start: i64, end: i64) -> Result<()> {
        let req = Request::Delete {
            series: series.to_string(),
            start,
            end,
        };
        match self.call(req)? {
            Response::Deleted => Ok(()),
            _ => Err(NetError::UnexpectedResponse("delete")),
        }
    }

    /// Fetch engine I/O counters and server counters.
    pub fn stats(&mut self) -> Result<(IoSnapshot, ServerStatsSnapshot)> {
        match self.call(Request::Stats)? {
            Response::Stats { io, server } => Ok((*io, *server)),
            _ => Err(NetError::UnexpectedResponse("stats")),
        }
    }

    /// Flush (and optionally compact) one series or all; returns the
    /// series count touched.
    pub fn flush_seal(&mut self, series: Option<&str>, compact: bool) -> Result<u32> {
        let req = Request::FlushSeal {
            series: series.map(str::to_string),
            compact,
        };
        match self.call(req)? {
            Response::Flushed { series_flushed } => Ok(series_flushed),
            _ => Err(NetError::UnexpectedResponse("flush-seal")),
        }
    }
}
