//! The length-prefixed, versioned binary wire protocol.
//!
//! ## Frame layout
//!
//! ```text
//! magic    4 bytes  b"TSN1"
//! version  1 byte   protocol version
//! kind     1 byte   0 = request, 1 = response, 2 = server push
//! len      4 bytes  payload length, little-endian u32
//! payload  len bytes
//! crc      4 bytes  CRC32 (IEEE) of the payload, little-endian
//! ```
//!
//! Payloads are flat little-endian structs: `u8` tags for enums,
//! fixed-width integers, `f64` as raw bits (NaN patterns survive the
//! wire), strings as a `u16` length prefix + UTF-8 bytes.
//!
//! Since v4 the protocol is no longer strict request/reply: a request
//! payload starts with a `request_id: u64` (chosen by the client,
//! echoed verbatim in the response) followed by `deadline_ms: u32`,
//! and a response payload starts with the echoed `request_id`. The
//! id lets a client demultiplex responses from **push frames** (kind
//! 2) — server-initiated [`Push`] payloads that may arrive between a
//! request and its response on a subscribed connection.
//!
//! This module interprets **untrusted network bytes** and therefore
//! follows the same discipline as the tsfile byte parsers (xtask L1/L3):
//! no panics, no indexing — every structural problem decodes to a
//! typed [`NetError`], and a corrupted payload is caught by the
//! checksum before any of it is interpreted.

use std::io::{Read, Write};

use m4::SpanRepr;
use tsfile::checksum::crc32;
use tsfile::types::Point;
use tskv::stats::IoSnapshot;
use tskv::wire::{decode_io_block, encode_io_block, IO_BLOCK_U64S};

use crate::error::{ErrorCode, NetError};
use crate::stats::{ServerStatsSnapshot, LATENCY_BUCKETS, SERVER_FIXED_U64S};
use crate::Result;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TSN1";
/// Protocol version this build speaks. v2 appended the buffer-pool
/// hit/miss counters to the Stats io block (PR 7); v3 inserted the
/// four compaction write-amplification counters (bytes read/rewritten,
/// pages copied/recoded); v4 broke strict request/reply — request and
/// response payloads now carry a `request_id`, frame kind 2 carries
/// server-initiated [`Push`] payloads (subscriptions), and the Stats
/// server block grew the five subscription counters; v5 appended the
/// high-cardinality catalog counters (catalog hit/miss, lazy store
/// instantiations) to the Stats io block. Mismatched peers are
/// rejected rather than silently mis-framed.
pub const VERSION: u8 = 5;
/// Bytes before the payload (magic + version + kind + len).
pub const HEADER_LEN: usize = 10;
/// Bytes after the payload (payload CRC32).
pub const TRAILER_LEN: usize = 4;
/// Hard ceiling on payload size (64 MiB); [`crate::server::ServerConfig`]
/// may lower it.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;
/// Ceiling on series per [`Request::WriteBatch`].
pub const MAX_BATCH_SERIES: u32 = 1 << 16;

/// Which M4 operator a query should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// The merge-everything baseline ([`m4::M4Udf`]).
    Udf,
    /// The paper's metadata-first operator ([`m4::M4Lsm`]).
    Lsm,
}

/// One RPC request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe. `delay_ms` makes the server hold the request's
    /// admission slot for that long before answering — an
    /// orchestration aid for backpressure tests and benchmarks (capped
    /// by [`crate::server::ServerConfig::max_ping_delay_ms`]).
    Ping { delay_ms: u32 },
    /// Multi-series write, applied via [`tskv::TsKv::write_batch`].
    WriteBatch { entries: Vec<(String, Vec<Point>)> },
    /// An M4 representation query over one series.
    M4Query {
        series: String,
        op: Operator,
        t_qs: i64,
        t_qe: i64,
        w: u32,
    },
    /// Versioned range tombstone on one series.
    Delete {
        series: String,
        start: i64,
        end: i64,
    },
    /// Engine + server counters. Control-plane: bypasses admission.
    Stats,
    /// Flush (and optionally compact) one series or every series —
    /// test/bench orchestration, mirroring the in-process harness.
    FlushSeal {
        series: Option<String>,
        compact: bool,
    },
    /// Register a live M4 subscription for `(series, [t_qs, t_qe), w)`.
    /// Acknowledged by [`Response::SubAck`]; span deltas then arrive as
    /// [`Push::SpanDelta`] frames until unsubscribed or disconnected.
    Subscribe {
        series: String,
        t_qs: i64,
        t_qe: i64,
        w: u32,
    },
    /// Detach one subscription previously acknowledged on this
    /// connection.
    Unsubscribe { sub_id: u64 },
}

/// A request plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed verbatim in the response.
    /// Lets the client tell the response apart from push frames that
    /// arrive in between.
    pub request_id: u64,
    /// Milliseconds the client is willing to wait (0 = no deadline).
    /// The server answers `Timeout` when the response misses it; the
    /// work itself is not preempted.
    pub deadline_ms: u32,
    pub body: Request,
}

/// One RPC response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    /// Points accepted by `WriteBatch`.
    Written {
        points: u64,
    },
    /// Per-span M4 representations (`None` = empty span), exactly the
    /// `spans` of an [`m4::M4Result`].
    M4 {
        spans: Vec<Option<SpanRepr>>,
    },
    Deleted,
    /// Engine I/O counters and server counters. Boxed: the two
    /// snapshot blocks dwarf every other variant, and responses are
    /// moved around (channels, retries) far more often than stats are
    /// read.
    Stats {
        io: Box<IoSnapshot>,
        server: Box<ServerStatsSnapshot>,
    },
    /// Series flushed (and compacted when requested) by `FlushSeal`.
    Flushed {
        series_flushed: u32,
    },
    /// Typed failure.
    Error {
        code: ErrorCode,
        detail: String,
    },
    /// Subscription acknowledged: `sub_id` names it in every
    /// subsequent push frame, `spans` is the baseline state the client
    /// replays deltas onto (the shared dashboard's last-broadcast
    /// representation at attach time).
    SubAck {
        sub_id: u64,
        spans: Vec<Option<SpanRepr>>,
    },
    /// Unsubscribe acknowledged; no further pushes for that id will be
    /// sent (frames already in flight may still arrive).
    Unsubscribed,
}

/// A response plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEnvelope {
    /// The `request_id` of the request this answers, echoed verbatim.
    pub request_id: u64,
    pub body: Response,
}

/// One server-initiated push payload (frame kind 2). Pushes carry the
/// subscription id they belong to and are never acknowledged.
#[derive(Debug, Clone, PartialEq)]
pub enum Push {
    /// Span updates for one subscription. Each entry replaces the
    /// subscriber's span `index` with the carried representation
    /// (state-carrying, so coalescing by span index is lossless).
    /// `seq` increments per frame per subscription; `resync` marks a
    /// full-state frame after a [`Push::Lagged`] — the client must
    /// reset all spans to `None` before applying it.
    SpanDelta {
        sub_id: u64,
        seq: u64,
        resync: bool,
        deltas: Vec<(u32, Option<SpanRepr>)>,
    },
    /// The subscriber fell behind and pending deltas were dropped
    /// (slow-consumer policy: coalesce, then drop). The next
    /// `SpanDelta` for this id carries full state (`resync = true`).
    Lagged { sub_id: u64 },
    /// The subscription failed server-side (e.g. the series was
    /// dropped) and is detached.
    SubError {
        sub_id: u64,
        code: ErrorCode,
        detail: String,
    },
}

/// A decoded frame: what kind of payload it carried.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Request(RequestEnvelope),
    Response(ResponseEnvelope),
    Push(Push),
}

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
const KIND_PUSH: u8 = 2;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| NetError::TooLarge {
        context: "string",
        len: s.len() as u64,
        max: u64::from(u16::MAX),
    })?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_i64(out, p.t);
    put_u64(out, p.v.to_bits());
}

/// One `Option<SpanRepr>`: a presence flag, then the four points.
fn put_opt_span(out: &mut Vec<u8>, span: &Option<SpanRepr>) {
    match span {
        Some(s) => {
            out.push(1);
            put_point(out, s.first);
            put_point(out, s.last);
            put_point(out, s.bottom);
            put_point(out, s.top);
        }
        None => out.push(0),
    }
}

/// A `u32` count followed by that many `Option<SpanRepr>`s — the span
/// list shape shared by `M4` responses and `SubAck`.
fn put_span_list(out: &mut Vec<u8>, spans: &[Option<SpanRepr>]) -> Result<()> {
    let w = u32::try_from(spans.len()).map_err(|_| NetError::TooLarge {
        context: "span count",
        len: spans.len() as u64,
        max: u64::from(u32::MAX),
    })?;
    put_u32(out, w);
    for span in spans {
        put_opt_span(out, span);
    }
    Ok(())
}

fn encode_request_payload(env: &RequestEnvelope) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    put_u64(&mut out, env.request_id);
    put_u32(&mut out, env.deadline_ms);
    match &env.body {
        Request::Ping { delay_ms } => {
            out.push(0);
            put_u32(&mut out, *delay_ms);
        }
        Request::WriteBatch { entries } => {
            out.push(1);
            let n = u32::try_from(entries.len()).map_err(|_| NetError::TooLarge {
                context: "write-batch series count",
                len: entries.len() as u64,
                max: u64::from(MAX_BATCH_SERIES),
            })?;
            if n > MAX_BATCH_SERIES {
                return Err(NetError::TooLarge {
                    context: "write-batch series count",
                    len: u64::from(n),
                    max: u64::from(MAX_BATCH_SERIES),
                });
            }
            put_u32(&mut out, n);
            for (name, points) in entries {
                put_str(&mut out, name)?;
                let np = u32::try_from(points.len()).map_err(|_| NetError::TooLarge {
                    context: "write-batch point count",
                    len: points.len() as u64,
                    max: u64::from(u32::MAX),
                })?;
                put_u32(&mut out, np);
                for p in points {
                    put_point(&mut out, *p);
                }
            }
        }
        Request::M4Query {
            series,
            op,
            t_qs,
            t_qe,
            w,
        } => {
            out.push(2);
            put_str(&mut out, series)?;
            out.push(match op {
                Operator::Udf => 0,
                Operator::Lsm => 1,
            });
            put_i64(&mut out, *t_qs);
            put_i64(&mut out, *t_qe);
            put_u32(&mut out, *w);
        }
        Request::Delete { series, start, end } => {
            out.push(3);
            put_str(&mut out, series)?;
            put_i64(&mut out, *start);
            put_i64(&mut out, *end);
        }
        Request::Stats => out.push(4),
        Request::FlushSeal { series, compact } => {
            out.push(5);
            match series {
                Some(name) => {
                    out.push(1);
                    put_str(&mut out, name)?;
                }
                None => out.push(0),
            }
            out.push(u8::from(*compact));
        }
        Request::Subscribe {
            series,
            t_qs,
            t_qe,
            w,
        } => {
            out.push(6);
            put_str(&mut out, series)?;
            put_i64(&mut out, *t_qs);
            put_i64(&mut out, *t_qe);
            put_u32(&mut out, *w);
        }
        Request::Unsubscribe { sub_id } => {
            out.push(7);
            put_u64(&mut out, *sub_id);
        }
    }
    Ok(out)
}

fn encode_response_payload(env: &ResponseEnvelope) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    put_u64(&mut out, env.request_id);
    match &env.body {
        Response::Pong => out.push(0),
        Response::Written { points } => {
            out.push(1);
            put_u64(&mut out, *points);
        }
        Response::M4 { spans } => {
            out.push(2);
            put_span_list(&mut out, spans)?;
        }
        Response::Deleted => out.push(3),
        Response::Stats { io, server } => {
            out.push(4);
            for v in encode_io_block(io) {
                put_u64(&mut out, v);
            }
            // The array type pins the count to the shared constant: a
            // new snapshot field that is not added here fails to
            // compile instead of silently truncating the block.
            let fixed: [u64; SERVER_FIXED_U64S] = [
                server.requests_ping,
                server.requests_write,
                server.requests_query,
                server.requests_delete,
                server.requests_stats,
                server.requests_flush,
                server.rejected_busy,
                server.timeouts,
                server.errors,
                server.bytes_in,
                server.bytes_out,
                server.connections_accepted,
                server.connections_rejected,
                server.in_flight,
                server.subs_active,
                server.subs_deduped,
                server.deltas_pushed,
                server.deltas_coalesced,
                server.resyncs,
            ];
            for v in fixed {
                put_u64(&mut out, v);
            }
            let n = u32::try_from(server.latency_counts.len()).map_err(|_| NetError::TooLarge {
                context: "latency bucket count",
                len: server.latency_counts.len() as u64,
                max: LATENCY_BUCKETS as u64,
            })?;
            put_u32(&mut out, n);
            for c in &server.latency_counts {
                put_u64(&mut out, *c);
            }
        }
        Response::Flushed { series_flushed } => {
            out.push(5);
            put_u32(&mut out, *series_flushed);
        }
        Response::Error { code, detail } => {
            out.push(6);
            out.push(code.to_wire());
            put_str(&mut out, detail)?;
        }
        Response::SubAck { sub_id, spans } => {
            out.push(7);
            put_u64(&mut out, *sub_id);
            put_span_list(&mut out, spans)?;
        }
        Response::Unsubscribed => out.push(8),
    }
    Ok(out)
}

fn encode_push_payload(push: &Push) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    match push {
        Push::SpanDelta {
            sub_id,
            seq,
            resync,
            deltas,
        } => {
            out.push(0);
            put_u64(&mut out, *sub_id);
            put_u64(&mut out, *seq);
            out.push(u8::from(*resync));
            let n = u32::try_from(deltas.len()).map_err(|_| NetError::TooLarge {
                context: "delta count",
                len: deltas.len() as u64,
                max: u64::from(u32::MAX),
            })?;
            put_u32(&mut out, n);
            for (index, span) in deltas {
                put_u32(&mut out, *index);
                put_opt_span(&mut out, span);
            }
        }
        Push::Lagged { sub_id } => {
            out.push(1);
            put_u64(&mut out, *sub_id);
        }
        Push::SubError {
            sub_id,
            code,
            detail,
        } => {
            out.push(2);
            put_u64(&mut out, *sub_id);
            out.push(code.to_wire());
            put_str(&mut out, detail)?;
        }
    }
    Ok(out)
}

fn frame_bytes(kind: u8, payload: Vec<u8>) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::TooLarge {
        context: "payload",
        len: payload.len() as u64,
        max: u64::from(MAX_PAYLOAD_BYTES),
    })?;
    if len > MAX_PAYLOAD_BYTES {
        return Err(NetError::TooLarge {
            context: "payload",
            len: u64::from(len),
            max: u64::from(MAX_PAYLOAD_BYTES),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u32(&mut out, len);
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Encode a request envelope into one complete frame.
pub fn encode_request(env: &RequestEnvelope) -> Result<Vec<u8>> {
    frame_bytes(KIND_REQUEST, encode_request_payload(env)?)
}

/// Encode a response envelope into one complete frame.
pub fn encode_response(env: &ResponseEnvelope) -> Result<Vec<u8>> {
    frame_bytes(KIND_RESPONSE, encode_response_payload(env)?)
}

/// Encode a push payload into one complete frame.
pub fn encode_push(push: &Push) -> Result<Vec<u8>> {
    frame_bytes(KIND_PUSH, encode_push_payload(push)?)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked reader over untrusted bytes. Every access goes
/// through `get`; running out of bytes is a typed error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(NetError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(NetError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or(NetError::Truncated { needed: 1, got: 0 })
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        let arr: [u8; 2] = b.try_into().map_err(|_| NetError::Truncated {
            needed: 2,
            got: b.len(),
        })?;
        Ok(u16::from_le_bytes(arr))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| NetError::Truncated {
            needed: 4,
            got: b.len(),
        })?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| NetError::Truncated {
            needed: 8,
            got: b.len(),
        })?;
        Ok(u64::from_le_bytes(arr))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(tsfile::cast::i64_bits(self.u64()?))
    }

    fn str16(&mut self) -> Result<String> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::BadString)
    }

    fn point(&mut self) -> Result<Point> {
        let t = self.i64()?;
        let v = f64::from_bits(self.u64()?);
        Ok(Point::new(t, v))
    }

    /// One `Option<SpanRepr>`: presence flag, then the four points.
    fn opt_span(&mut self) -> Result<Option<SpanRepr>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let first = self.point()?;
                let last = self.point()?;
                let bottom = self.point()?;
                let top = self.point()?;
                Ok(Some(SpanRepr {
                    first,
                    last,
                    bottom,
                    top,
                }))
            }
            other => Err(NetError::UnknownTag {
                context: "span flag",
                tag: other,
            }),
        }
    }

    /// The span list shape shared by `M4` responses and `SubAck`.
    fn span_list(&mut self) -> Result<Vec<Option<SpanRepr>>> {
        let w = self.u32()?;
        self.check_claim("span count", u64::from(w), 1)?;
        let mut spans = Vec::with_capacity(w as usize);
        for _ in 0..w {
            spans.push(self.opt_span()?);
        }
        Ok(spans)
    }

    /// Guard a claimed element count against the bytes actually
    /// present, so corrupted counts cannot drive huge allocations.
    fn check_claim(&self, context: &'static str, n: u64, min_elem_bytes: u64) -> Result<()> {
        let available = self.remaining() as u64;
        let needed = n.saturating_mul(min_elem_bytes);
        if needed > available {
            return Err(NetError::TooLarge {
                context,
                len: n,
                max: available / min_elem_bytes.max(1),
            });
        }
        Ok(())
    }
}

/// Decode a request payload (the bytes between header and CRC).
pub fn decode_request_payload(payload: &[u8]) -> Result<RequestEnvelope> {
    let mut c = Cursor::new(payload);
    let request_id = c.u64()?;
    let deadline_ms = c.u32()?;
    let tag = c.u8()?;
    let body = match tag {
        0 => Request::Ping { delay_ms: c.u32()? },
        1 => {
            let n = c.u32()?;
            if n > MAX_BATCH_SERIES {
                return Err(NetError::TooLarge {
                    context: "write-batch series count",
                    len: u64::from(n),
                    max: u64::from(MAX_BATCH_SERIES),
                });
            }
            // Each series costs at least a name length + point count.
            c.check_claim("write-batch series count", u64::from(n), 6)?;
            let mut entries = Vec::new();
            for _ in 0..n {
                let name = c.str16()?;
                let np = c.u32()?;
                c.check_claim("write-batch point count", u64::from(np), 16)?;
                let mut points = Vec::with_capacity(np as usize);
                for _ in 0..np {
                    points.push(c.point()?);
                }
                entries.push((name, points));
            }
            Request::WriteBatch { entries }
        }
        2 => {
            let series = c.str16()?;
            let op = match c.u8()? {
                0 => Operator::Udf,
                1 => Operator::Lsm,
                other => {
                    return Err(NetError::UnknownTag {
                        context: "operator",
                        tag: other,
                    })
                }
            };
            let t_qs = c.i64()?;
            let t_qe = c.i64()?;
            let w = c.u32()?;
            Request::M4Query {
                series,
                op,
                t_qs,
                t_qe,
                w,
            }
        }
        3 => {
            let series = c.str16()?;
            let start = c.i64()?;
            let end = c.i64()?;
            Request::Delete { series, start, end }
        }
        4 => Request::Stats,
        5 => {
            let series = match c.u8()? {
                0 => None,
                1 => Some(c.str16()?),
                other => {
                    return Err(NetError::UnknownTag {
                        context: "flush-seal series flag",
                        tag: other,
                    })
                }
            };
            let compact = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(NetError::UnknownTag {
                        context: "flush-seal compact flag",
                        tag: other,
                    })
                }
            };
            Request::FlushSeal { series, compact }
        }
        6 => {
            let series = c.str16()?;
            let t_qs = c.i64()?;
            let t_qe = c.i64()?;
            let w = c.u32()?;
            Request::Subscribe {
                series,
                t_qs,
                t_qe,
                w,
            }
        }
        7 => Request::Unsubscribe { sub_id: c.u64()? },
        other => {
            return Err(NetError::UnknownTag {
                context: "request",
                tag: other,
            })
        }
    };
    if c.remaining() != 0 {
        return Err(NetError::TooLarge {
            context: "request payload trailing bytes",
            len: c.remaining() as u64,
            max: 0,
        });
    }
    Ok(RequestEnvelope {
        request_id,
        deadline_ms,
        body,
    })
}

fn decode_io_snapshot(c: &mut Cursor<'_>) -> Result<IoSnapshot> {
    let mut block = [0u64; IO_BLOCK_U64S];
    for v in block.iter_mut() {
        *v = c.u64()?;
    }
    Ok(decode_io_block(&block))
}

fn decode_server_snapshot(c: &mut Cursor<'_>) -> Result<ServerStatsSnapshot> {
    let mut snap = ServerStatsSnapshot {
        requests_ping: c.u64()?,
        requests_write: c.u64()?,
        requests_query: c.u64()?,
        requests_delete: c.u64()?,
        requests_stats: c.u64()?,
        requests_flush: c.u64()?,
        rejected_busy: c.u64()?,
        timeouts: c.u64()?,
        errors: c.u64()?,
        bytes_in: c.u64()?,
        bytes_out: c.u64()?,
        connections_accepted: c.u64()?,
        connections_rejected: c.u64()?,
        in_flight: c.u64()?,
        subs_active: c.u64()?,
        subs_deduped: c.u64()?,
        deltas_pushed: c.u64()?,
        deltas_coalesced: c.u64()?,
        resyncs: c.u64()?,
        latency_counts: Vec::new(),
    };
    let n = c.u32()?;
    if n as usize > LATENCY_BUCKETS {
        return Err(NetError::TooLarge {
            context: "latency bucket count",
            len: u64::from(n),
            max: LATENCY_BUCKETS as u64,
        });
    }
    c.check_claim("latency bucket count", u64::from(n), 8)?;
    let mut counts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        counts.push(c.u64()?);
    }
    snap.latency_counts = counts;
    Ok(snap)
}

/// Decode a response payload (the bytes between header and CRC).
pub fn decode_response_payload(payload: &[u8]) -> Result<ResponseEnvelope> {
    let mut c = Cursor::new(payload);
    let request_id = c.u64()?;
    let tag = c.u8()?;
    let body = match tag {
        0 => Response::Pong,
        1 => Response::Written { points: c.u64()? },
        2 => Response::M4 {
            spans: c.span_list()?,
        },
        3 => Response::Deleted,
        4 => {
            let io = Box::new(decode_io_snapshot(&mut c)?);
            let server = Box::new(decode_server_snapshot(&mut c)?);
            Response::Stats { io, server }
        }
        5 => Response::Flushed {
            series_flushed: c.u32()?,
        },
        6 => {
            let code_tag = c.u8()?;
            let code = ErrorCode::from_wire(code_tag).ok_or(NetError::UnknownTag {
                context: "error code",
                tag: code_tag,
            })?;
            let detail = c.str16()?;
            Response::Error { code, detail }
        }
        7 => {
            let sub_id = c.u64()?;
            let spans = c.span_list()?;
            Response::SubAck { sub_id, spans }
        }
        8 => Response::Unsubscribed,
        other => {
            return Err(NetError::UnknownTag {
                context: "response",
                tag: other,
            })
        }
    };
    if c.remaining() != 0 {
        return Err(NetError::TooLarge {
            context: "response payload trailing bytes",
            len: c.remaining() as u64,
            max: 0,
        });
    }
    Ok(ResponseEnvelope { request_id, body })
}

/// Decode a push payload (the bytes between header and CRC).
pub fn decode_push_payload(payload: &[u8]) -> Result<Push> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let push = match tag {
        0 => {
            let sub_id = c.u64()?;
            let seq = c.u64()?;
            let resync = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(NetError::UnknownTag {
                        context: "resync flag",
                        tag: other,
                    })
                }
            };
            let n = c.u32()?;
            // Each delta costs at least a span index + presence flag.
            c.check_claim("delta count", u64::from(n), 5)?;
            let mut deltas = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let index = c.u32()?;
                let span = c.opt_span()?;
                deltas.push((index, span));
            }
            Push::SpanDelta {
                sub_id,
                seq,
                resync,
                deltas,
            }
        }
        1 => Push::Lagged { sub_id: c.u64()? },
        2 => {
            let sub_id = c.u64()?;
            let code_tag = c.u8()?;
            let code = ErrorCode::from_wire(code_tag).ok_or(NetError::UnknownTag {
                context: "error code",
                tag: code_tag,
            })?;
            let detail = c.str16()?;
            Push::SubError {
                sub_id,
                code,
                detail,
            }
        }
        other => {
            return Err(NetError::UnknownTag {
                context: "push",
                tag: other,
            })
        }
    };
    if c.remaining() != 0 {
        return Err(NetError::TooLarge {
            context: "push payload trailing bytes",
            len: c.remaining() as u64,
            max: 0,
        });
    }
    Ok(push)
}

/// Parse and validate a frame header. Returns `(kind, payload_len)`.
fn decode_header(header: &[u8], max_payload_bytes: u32) -> Result<(u8, usize)> {
    let mut c = Cursor::new(header);
    let magic = c.take(4)?;
    if magic != MAGIC {
        let arr: [u8; 4] = magic.try_into().map_err(|_| NetError::Truncated {
            needed: 4,
            got: magic.len(),
        })?;
        return Err(NetError::BadMagic(arr));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(NetError::UnsupportedVersion(version));
    }
    let kind = c.u8()?;
    if kind != KIND_REQUEST && kind != KIND_RESPONSE && kind != KIND_PUSH {
        return Err(NetError::UnknownTag {
            context: "frame kind",
            tag: kind,
        });
    }
    let len = c.u32()?;
    let max = max_payload_bytes.min(MAX_PAYLOAD_BYTES);
    if len > max {
        return Err(NetError::TooLarge {
            context: "payload",
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    Ok((kind, len as usize))
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame> {
    match kind {
        KIND_REQUEST => Ok(Frame::Request(decode_request_payload(payload)?)),
        KIND_PUSH => Ok(Frame::Push(decode_push_payload(payload)?)),
        _ => Ok(Frame::Response(decode_response_payload(payload)?)),
    }
}

/// Decode one complete frame from a byte buffer. Returns the frame and
/// the number of bytes it occupied. Every malformed shape — wrong
/// magic, unknown version or tag, truncation at any offset, checksum
/// mismatch, trailing payload bytes — is a typed error.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize)> {
    let mut c = Cursor::new(buf);
    let header = c.take(HEADER_LEN)?;
    let (kind, len) = decode_header(header, MAX_PAYLOAD_BYTES)?;
    let payload = c.take(len)?;
    let expected = c.u32()?;
    let actual = crc32(payload);
    if expected != actual {
        return Err(NetError::ChecksumMismatch { expected, actual });
    }
    let frame = decode_payload(kind, payload)?;
    Ok((frame, HEADER_LEN + len + TRAILER_LEN))
}

/// Read one frame off a blocking stream. `max_payload_bytes` bounds
/// the allocation a peer can demand. The payload staging buffer comes
/// from the tsfile buffer pool: a server worker thread decoding one
/// frame per request reuses the same warm allocation.
pub fn read_frame(r: &mut impl Read, max_payload_bytes: u32) -> Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len) = decode_header(&header, max_payload_bytes)?;
    let mut payload = tsfile::bufpool::take(len);
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; TRAILER_LEN];
    r.read_exact(&mut crc_bytes)?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&payload);
    if expected != actual {
        return Err(NetError::ChecksumMismatch { expected, actual });
    }
    decode_payload(kind, &payload)
}

/// Write one pre-encoded frame to a blocking stream and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<()> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;

    fn roundtrip_request(body: Request) {
        let env = RequestEnvelope {
            request_id: 77,
            deadline_ms: 250,
            body,
        };
        let bytes = encode_request(&env).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame, Frame::Request(env));
    }

    fn roundtrip_response(body: Response) {
        let env = ResponseEnvelope {
            request_id: 99,
            body,
        };
        let bytes = encode_response(&env).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame, Frame::Response(env));
    }

    fn roundtrip_push(push: Push) {
        let bytes = encode_push(&push).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame, Frame::Push(push));
    }

    fn span(seed: i64) -> SpanRepr {
        SpanRepr {
            first: Point::new(seed, seed as f64 + 0.5),
            last: Point::new(seed + 9, -2.5),
            bottom: Point::new(seed + 4, -7.0),
            top: Point::new(seed + 3, 8.0),
        }
    }

    #[test]
    fn request_variants_roundtrip() {
        roundtrip_request(Request::Ping { delay_ms: 0 });
        roundtrip_request(Request::WriteBatch {
            entries: vec![
                ("a.b".into(), vec![Point::new(1, 2.0), Point::new(-5, -0.0)]),
                ("c".into(), vec![]),
            ],
        });
        roundtrip_request(Request::M4Query {
            series: "sensor.speed".into(),
            op: Operator::Lsm,
            t_qs: -100,
            t_qe: i64::MAX,
            w: 480,
        });
        roundtrip_request(Request::Delete {
            series: "s".into(),
            start: i64::MIN,
            end: i64::MAX,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::FlushSeal {
            series: Some("s".into()),
            compact: true,
        });
        roundtrip_request(Request::FlushSeal {
            series: None,
            compact: false,
        });
        roundtrip_request(Request::Subscribe {
            series: "dash.speed".into(),
            t_qs: 0,
            t_qe: 1_000_000,
            w: 480,
        });
        roundtrip_request(Request::Unsubscribe { sub_id: u64::MAX });
    }

    #[test]
    fn response_variants_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Written { points: u64::MAX });
        roundtrip_response(Response::M4 {
            spans: vec![None, Some(span(1))],
        });
        roundtrip_response(Response::Deleted);
        roundtrip_response(Response::Stats {
            io: Box::new(IoSnapshot {
                chunks_loaded: 1,
                points_decoded: 3,
                pages_decoded: 5,
                pages_skipped: 11,
                pages_stat_answered: 2,
                ..Default::default()
            }),
            server: Box::new(ServerStatsSnapshot {
                requests_query: 7,
                subs_active: 3,
                subs_deduped: 2,
                deltas_pushed: 40,
                deltas_coalesced: 4,
                resyncs: 1,
                latency_counts: vec![0; LATENCY_BUCKETS],
                ..Default::default()
            }),
        });
        roundtrip_response(Response::Flushed { series_flushed: 3 });
        roundtrip_response(Response::Error {
            code: ErrorCode::SeriesNotFound,
            detail: "series \"x\"".into(),
        });
        roundtrip_response(Response::SubAck {
            sub_id: 12,
            spans: vec![Some(span(5)), None, None],
        });
        roundtrip_response(Response::Unsubscribed);
    }

    #[test]
    fn push_variants_roundtrip() {
        roundtrip_push(Push::SpanDelta {
            sub_id: 3,
            seq: 0,
            resync: false,
            deltas: vec![(0, Some(span(10))), (7, None)],
        });
        roundtrip_push(Push::SpanDelta {
            sub_id: u64::MAX,
            seq: u64::MAX,
            resync: true,
            deltas: vec![],
        });
        roundtrip_push(Push::Lagged { sub_id: 3 });
        roundtrip_push(Push::SubError {
            sub_id: 9,
            code: ErrorCode::Subscription,
            detail: "series dropped".into(),
        });
    }

    #[test]
    fn request_ids_echo_through_both_envelopes() {
        let req = RequestEnvelope {
            request_id: 0xDEAD_BEEF_0BAD_CAFE,
            deadline_ms: 0,
            body: Request::Stats,
        };
        let bytes = encode_request(&req).unwrap();
        let (Frame::Request(decoded), _) = decode_frame(&bytes).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(decoded.request_id, req.request_id);

        let resp = ResponseEnvelope {
            request_id: req.request_id,
            body: Response::Pong,
        };
        let bytes = encode_response(&resp).unwrap();
        let (Frame::Response(decoded), _) = decode_frame(&bytes).unwrap() else {
            panic!("wrong kind")
        };
        assert_eq!(decoded.request_id, req.request_id);
    }

    #[test]
    fn nan_value_bits_survive_the_wire() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let env = RequestEnvelope {
            request_id: 1,
            deadline_ms: 0,
            body: Request::WriteBatch {
                entries: vec![("s".into(), vec![Point::new(0, weird)])],
            },
        };
        let bytes = encode_request(&env).unwrap();
        let (frame, _) = decode_frame(&bytes).unwrap();
        let Frame::Request(env2) = frame else {
            panic!("wrong kind")
        };
        let Request::WriteBatch { entries } = env2.body else {
            panic!("wrong body")
        };
        assert_eq!(entries[0].1[0].v.to_bits(), weird.to_bits());
    }

    #[test]
    fn bad_magic_version_kind_are_typed() {
        let good = encode_request(&RequestEnvelope {
            request_id: 0,
            deadline_ms: 0,
            body: Request::Stats,
        })
        .unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(NetError::BadMagic(_))));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::UnsupportedVersion(99))
        ));

        // v3 (the previous protocol) is rejected too: the envelope
        // layout changed incompatibly.
        let mut bad = good.clone();
        bad[4] = 3;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::UnsupportedVersion(3))
        ));

        let mut bad = good.clone();
        bad[5] = 7;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::UnknownTag {
                context: "frame kind",
                tag: 7
            })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let good = encode_request(&RequestEnvelope {
            request_id: 0,
            deadline_ms: 9,
            body: Request::Ping { delay_ms: 1 },
        })
        .unwrap();
        let mut bad = good.clone();
        bad[HEADER_LEN] ^= 0x40;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let good = encode_response(&ResponseEnvelope {
            request_id: 5,
            body: Response::Written { points: 5 },
        })
        .unwrap();
        for k in 0..good.len() {
            let r = decode_frame(&good[..k]);
            assert!(r.is_err(), "prefix of {k} bytes must not decode");
        }
        let good = encode_push(&Push::SpanDelta {
            sub_id: 1,
            seq: 2,
            resync: false,
            deltas: vec![(3, Some(span(0)))],
        })
        .unwrap();
        for k in 0..good.len() {
            let r = decode_frame(&good[..k]);
            assert!(r.is_err(), "push prefix of {k} bytes must not decode");
        }
    }

    #[test]
    fn oversized_claimed_counts_are_rejected() {
        // A write-batch frame claiming u32::MAX points but holding none.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // request id
        put_u32(&mut payload, 0); // deadline
        payload.push(1); // WriteBatch
        put_u32(&mut payload, 1); // one series
        put_str(&mut payload, "s").unwrap();
        put_u32(&mut payload, u32::MAX); // absurd point count
        let frame = frame_bytes(KIND_REQUEST, payload).unwrap();
        assert!(matches!(
            decode_frame(&frame),
            Err(NetError::TooLarge { .. })
        ));

        // A push frame claiming u32::MAX span deltas but holding none.
        let mut payload = Vec::new();
        payload.push(0); // SpanDelta
        put_u64(&mut payload, 1); // sub id
        put_u64(&mut payload, 0); // seq
        payload.push(0); // resync
        put_u32(&mut payload, u32::MAX); // absurd delta count
        let frame = frame_bytes(KIND_PUSH, payload).unwrap();
        assert!(matches!(
            decode_frame(&frame),
            Err(NetError::TooLarge { .. })
        ));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let env = RequestEnvelope {
            request_id: 42,
            deadline_ms: 1,
            body: Request::Delete {
                series: "s".into(),
                start: 0,
                end: 10,
            },
        };
        let bytes = encode_request(&env).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &bytes).unwrap();
        let frame = read_frame(&mut buf.as_slice(), MAX_PAYLOAD_BYTES).unwrap();
        assert_eq!(frame, Frame::Request(env));

        let push = Push::Lagged { sub_id: 8 };
        let bytes = encode_push(&push).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &bytes).unwrap();
        let frame = read_frame(&mut buf.as_slice(), MAX_PAYLOAD_BYTES).unwrap();
        assert_eq!(frame, Frame::Push(push));
    }
}
