//! The length-prefixed, versioned binary wire protocol.
//!
//! ## Frame layout
//!
//! ```text
//! magic    4 bytes  b"TSN1"
//! version  1 byte   protocol version (currently 1)
//! kind     1 byte   0 = request, 1 = response
//! len      4 bytes  payload length, little-endian u32
//! payload  len bytes
//! crc      4 bytes  CRC32 (IEEE) of the payload, little-endian
//! ```
//!
//! Payloads are flat little-endian structs: `u8` tags for enums,
//! fixed-width integers, `f64` as raw bits (NaN patterns survive the
//! wire), strings as a `u16` length prefix + UTF-8 bytes. A request
//! payload starts with a `deadline_ms: u32` envelope field (0 = no
//! deadline) followed by the request tag.
//!
//! This module interprets **untrusted network bytes** and therefore
//! follows the same discipline as the tsfile byte parsers (xtask L1/L3):
//! no panics, no indexing — every structural problem decodes to a
//! typed [`NetError`], and a corrupted payload is caught by the
//! checksum before any of it is interpreted.

use std::io::{Read, Write};

use m4::SpanRepr;
use tsfile::checksum::crc32;
use tsfile::types::Point;
use tskv::stats::IoSnapshot;

use crate::error::{ErrorCode, NetError};
use crate::stats::{ServerStatsSnapshot, LATENCY_BUCKETS};
use crate::Result;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TSN1";
/// Protocol version this build speaks. v2 appended the buffer-pool
/// hit/miss counters to the Stats io block (PR 7); v3 inserted the
/// four compaction write-amplification counters (bytes read/rewritten,
/// pages copied/recoded). Mismatched peers are rejected rather than
/// silently mis-framed.
pub const VERSION: u8 = 3;
/// Bytes before the payload (magic + version + kind + len).
pub const HEADER_LEN: usize = 10;
/// Bytes after the payload (payload CRC32).
pub const TRAILER_LEN: usize = 4;
/// Hard ceiling on payload size (64 MiB); [`crate::server::ServerConfig`]
/// may lower it.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;
/// Ceiling on series per [`Request::WriteBatch`].
pub const MAX_BATCH_SERIES: u32 = 1 << 16;

/// Which M4 operator a query should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// The merge-everything baseline ([`m4::M4Udf`]).
    Udf,
    /// The paper's metadata-first operator ([`m4::M4Lsm`]).
    Lsm,
}

/// One RPC request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe. `delay_ms` makes the server hold the request's
    /// admission slot for that long before answering — an
    /// orchestration aid for backpressure tests and benchmarks (capped
    /// by [`crate::server::ServerConfig::max_ping_delay_ms`]).
    Ping { delay_ms: u32 },
    /// Multi-series write, applied via [`tskv::TsKv::write_batch`].
    WriteBatch { entries: Vec<(String, Vec<Point>)> },
    /// An M4 representation query over one series.
    M4Query {
        series: String,
        op: Operator,
        t_qs: i64,
        t_qe: i64,
        w: u32,
    },
    /// Versioned range tombstone on one series.
    Delete {
        series: String,
        start: i64,
        end: i64,
    },
    /// Engine + server counters. Control-plane: bypasses admission.
    Stats,
    /// Flush (and optionally compact) one series or every series —
    /// test/bench orchestration, mirroring the in-process harness.
    FlushSeal {
        series: Option<String>,
        compact: bool,
    },
}

/// A request plus its envelope fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEnvelope {
    /// Milliseconds the client is willing to wait (0 = no deadline).
    /// The server answers `Timeout` when the response misses it; the
    /// work itself is not preempted.
    pub deadline_ms: u32,
    pub body: Request,
}

/// One RPC response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Pong,
    /// Points accepted by `WriteBatch`.
    Written {
        points: u64,
    },
    /// Per-span M4 representations (`None` = empty span), exactly the
    /// `spans` of an [`m4::M4Result`].
    M4 {
        spans: Vec<Option<SpanRepr>>,
    },
    Deleted,
    /// Engine I/O counters and server counters. Boxed: the two
    /// snapshot blocks dwarf every other variant, and responses are
    /// moved around (channels, retries) far more often than stats are
    /// read.
    Stats {
        io: Box<IoSnapshot>,
        server: Box<ServerStatsSnapshot>,
    },
    /// Series flushed (and compacted when requested) by `FlushSeal`.
    Flushed {
        series_flushed: u32,
    },
    /// Typed failure.
    Error {
        code: ErrorCode,
        detail: String,
    },
}

/// A decoded frame: what kind of payload it carried.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    Request(RequestEnvelope),
    Response(Response),
}

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| NetError::TooLarge {
        context: "string",
        len: s.len() as u64,
        max: u64::from(u16::MAX),
    })?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_i64(out, p.t);
    put_u64(out, p.v.to_bits());
}

fn encode_request_payload(env: &RequestEnvelope) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    put_u32(&mut out, env.deadline_ms);
    match &env.body {
        Request::Ping { delay_ms } => {
            out.push(0);
            put_u32(&mut out, *delay_ms);
        }
        Request::WriteBatch { entries } => {
            out.push(1);
            let n = u32::try_from(entries.len()).map_err(|_| NetError::TooLarge {
                context: "write-batch series count",
                len: entries.len() as u64,
                max: u64::from(MAX_BATCH_SERIES),
            })?;
            if n > MAX_BATCH_SERIES {
                return Err(NetError::TooLarge {
                    context: "write-batch series count",
                    len: u64::from(n),
                    max: u64::from(MAX_BATCH_SERIES),
                });
            }
            put_u32(&mut out, n);
            for (name, points) in entries {
                put_str(&mut out, name)?;
                let np = u32::try_from(points.len()).map_err(|_| NetError::TooLarge {
                    context: "write-batch point count",
                    len: points.len() as u64,
                    max: u64::from(u32::MAX),
                })?;
                put_u32(&mut out, np);
                for p in points {
                    put_point(&mut out, *p);
                }
            }
        }
        Request::M4Query {
            series,
            op,
            t_qs,
            t_qe,
            w,
        } => {
            out.push(2);
            put_str(&mut out, series)?;
            out.push(match op {
                Operator::Udf => 0,
                Operator::Lsm => 1,
            });
            put_i64(&mut out, *t_qs);
            put_i64(&mut out, *t_qe);
            put_u32(&mut out, *w);
        }
        Request::Delete { series, start, end } => {
            out.push(3);
            put_str(&mut out, series)?;
            put_i64(&mut out, *start);
            put_i64(&mut out, *end);
        }
        Request::Stats => out.push(4),
        Request::FlushSeal { series, compact } => {
            out.push(5);
            match series {
                Some(name) => {
                    out.push(1);
                    put_str(&mut out, name)?;
                }
                None => out.push(0),
            }
            out.push(u8::from(*compact));
        }
    }
    Ok(out)
}

fn encode_response_payload(resp: &Response) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    match resp {
        Response::Pong => out.push(0),
        Response::Written { points } => {
            out.push(1);
            put_u64(&mut out, *points);
        }
        Response::M4 { spans } => {
            out.push(2);
            let w = u32::try_from(spans.len()).map_err(|_| NetError::TooLarge {
                context: "span count",
                len: spans.len() as u64,
                max: u64::from(u32::MAX),
            })?;
            put_u32(&mut out, w);
            for span in spans {
                match span {
                    Some(s) => {
                        out.push(1);
                        put_point(&mut out, s.first);
                        put_point(&mut out, s.last);
                        put_point(&mut out, s.bottom);
                        put_point(&mut out, s.top);
                    }
                    None => out.push(0),
                }
            }
        }
        Response::Deleted => out.push(3),
        Response::Stats { io, server } => {
            out.push(4);
            for v in [
                io.chunks_loaded,
                io.bytes_read,
                io.points_decoded,
                io.timestamps_decoded,
                io.mem_chunks_read,
                io.cache_hits,
                io.cache_misses,
                io.cache_evictions,
                io.cache_invalidations,
                io.points_written,
                io.wal_batches,
                io.wal_bytes,
                io.wal_syncs,
                io.compactions_scheduled,
                io.compactions_completed,
                io.compactions_skipped,
                io.compaction_bytes_read,
                io.compaction_bytes_rewritten,
                io.compaction_pages_copied,
                io.compaction_pages_recoded,
                io.pages_decoded,
                io.pages_skipped,
                io.pages_stat_answered,
                io.pool_hits,
                io.pool_misses,
            ] {
                put_u64(&mut out, v);
            }
            for v in [
                server.requests_ping,
                server.requests_write,
                server.requests_query,
                server.requests_delete,
                server.requests_stats,
                server.requests_flush,
                server.rejected_busy,
                server.timeouts,
                server.errors,
                server.bytes_in,
                server.bytes_out,
                server.connections_accepted,
                server.connections_rejected,
                server.in_flight,
            ] {
                put_u64(&mut out, v);
            }
            let n = u32::try_from(server.latency_counts.len()).map_err(|_| NetError::TooLarge {
                context: "latency bucket count",
                len: server.latency_counts.len() as u64,
                max: LATENCY_BUCKETS as u64,
            })?;
            put_u32(&mut out, n);
            for c in &server.latency_counts {
                put_u64(&mut out, *c);
            }
        }
        Response::Flushed { series_flushed } => {
            out.push(5);
            put_u32(&mut out, *series_flushed);
        }
        Response::Error { code, detail } => {
            out.push(6);
            out.push(code.to_wire());
            put_str(&mut out, detail)?;
        }
    }
    Ok(out)
}

fn frame_bytes(kind: u8, payload: Vec<u8>) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::TooLarge {
        context: "payload",
        len: payload.len() as u64,
        max: u64::from(MAX_PAYLOAD_BYTES),
    })?;
    if len > MAX_PAYLOAD_BYTES {
        return Err(NetError::TooLarge {
            context: "payload",
            len: u64::from(len),
            max: u64::from(MAX_PAYLOAD_BYTES),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u32(&mut out, len);
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc);
    Ok(out)
}

/// Encode a request envelope into one complete frame.
pub fn encode_request(env: &RequestEnvelope) -> Result<Vec<u8>> {
    frame_bytes(KIND_REQUEST, encode_request_payload(env)?)
}

/// Encode a response into one complete frame.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>> {
    frame_bytes(KIND_RESPONSE, encode_response_payload(resp)?)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked reader over untrusted bytes. Every access goes
/// through `get`; running out of bytes is a typed error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(NetError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(NetError::Truncated {
            needed: n,
            got: self.remaining(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        let b = self.take(1)?;
        b.first()
            .copied()
            .ok_or(NetError::Truncated { needed: 1, got: 0 })
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        let arr: [u8; 2] = b.try_into().map_err(|_| NetError::Truncated {
            needed: 2,
            got: b.len(),
        })?;
        Ok(u16::from_le_bytes(arr))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| NetError::Truncated {
            needed: 4,
            got: b.len(),
        })?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| NetError::Truncated {
            needed: 8,
            got: b.len(),
        })?;
        Ok(u64::from_le_bytes(arr))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(tsfile::cast::i64_bits(self.u64()?))
    }

    fn str16(&mut self) -> Result<String> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::BadString)
    }

    fn point(&mut self) -> Result<Point> {
        let t = self.i64()?;
        let v = f64::from_bits(self.u64()?);
        Ok(Point::new(t, v))
    }

    /// Guard a claimed element count against the bytes actually
    /// present, so corrupted counts cannot drive huge allocations.
    fn check_claim(&self, context: &'static str, n: u64, min_elem_bytes: u64) -> Result<()> {
        let available = self.remaining() as u64;
        let needed = n.saturating_mul(min_elem_bytes);
        if needed > available {
            return Err(NetError::TooLarge {
                context,
                len: n,
                max: available / min_elem_bytes.max(1),
            });
        }
        Ok(())
    }
}

/// Decode a request payload (the bytes between header and CRC).
pub fn decode_request_payload(payload: &[u8]) -> Result<RequestEnvelope> {
    let mut c = Cursor::new(payload);
    let deadline_ms = c.u32()?;
    let tag = c.u8()?;
    let body = match tag {
        0 => Request::Ping { delay_ms: c.u32()? },
        1 => {
            let n = c.u32()?;
            if n > MAX_BATCH_SERIES {
                return Err(NetError::TooLarge {
                    context: "write-batch series count",
                    len: u64::from(n),
                    max: u64::from(MAX_BATCH_SERIES),
                });
            }
            // Each series costs at least a name length + point count.
            c.check_claim("write-batch series count", u64::from(n), 6)?;
            let mut entries = Vec::new();
            for _ in 0..n {
                let name = c.str16()?;
                let np = c.u32()?;
                c.check_claim("write-batch point count", u64::from(np), 16)?;
                let mut points = Vec::with_capacity(np as usize);
                for _ in 0..np {
                    points.push(c.point()?);
                }
                entries.push((name, points));
            }
            Request::WriteBatch { entries }
        }
        2 => {
            let series = c.str16()?;
            let op = match c.u8()? {
                0 => Operator::Udf,
                1 => Operator::Lsm,
                other => {
                    return Err(NetError::UnknownTag {
                        context: "operator",
                        tag: other,
                    })
                }
            };
            let t_qs = c.i64()?;
            let t_qe = c.i64()?;
            let w = c.u32()?;
            Request::M4Query {
                series,
                op,
                t_qs,
                t_qe,
                w,
            }
        }
        3 => {
            let series = c.str16()?;
            let start = c.i64()?;
            let end = c.i64()?;
            Request::Delete { series, start, end }
        }
        4 => Request::Stats,
        5 => {
            let series = match c.u8()? {
                0 => None,
                1 => Some(c.str16()?),
                other => {
                    return Err(NetError::UnknownTag {
                        context: "flush-seal series flag",
                        tag: other,
                    })
                }
            };
            let compact = match c.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(NetError::UnknownTag {
                        context: "flush-seal compact flag",
                        tag: other,
                    })
                }
            };
            Request::FlushSeal { series, compact }
        }
        other => {
            return Err(NetError::UnknownTag {
                context: "request",
                tag: other,
            })
        }
    };
    if c.remaining() != 0 {
        return Err(NetError::TooLarge {
            context: "request payload trailing bytes",
            len: c.remaining() as u64,
            max: 0,
        });
    }
    Ok(RequestEnvelope { deadline_ms, body })
}

fn decode_io_snapshot(c: &mut Cursor<'_>) -> Result<IoSnapshot> {
    Ok(IoSnapshot {
        chunks_loaded: c.u64()?,
        bytes_read: c.u64()?,
        points_decoded: c.u64()?,
        timestamps_decoded: c.u64()?,
        mem_chunks_read: c.u64()?,
        cache_hits: c.u64()?,
        cache_misses: c.u64()?,
        cache_evictions: c.u64()?,
        cache_invalidations: c.u64()?,
        points_written: c.u64()?,
        wal_batches: c.u64()?,
        wal_bytes: c.u64()?,
        wal_syncs: c.u64()?,
        compactions_scheduled: c.u64()?,
        compactions_completed: c.u64()?,
        compactions_skipped: c.u64()?,
        compaction_bytes_read: c.u64()?,
        compaction_bytes_rewritten: c.u64()?,
        compaction_pages_copied: c.u64()?,
        compaction_pages_recoded: c.u64()?,
        pages_decoded: c.u64()?,
        pages_skipped: c.u64()?,
        pages_stat_answered: c.u64()?,
        pool_hits: c.u64()?,
        pool_misses: c.u64()?,
    })
}

fn decode_server_snapshot(c: &mut Cursor<'_>) -> Result<ServerStatsSnapshot> {
    let mut snap = ServerStatsSnapshot {
        requests_ping: c.u64()?,
        requests_write: c.u64()?,
        requests_query: c.u64()?,
        requests_delete: c.u64()?,
        requests_stats: c.u64()?,
        requests_flush: c.u64()?,
        rejected_busy: c.u64()?,
        timeouts: c.u64()?,
        errors: c.u64()?,
        bytes_in: c.u64()?,
        bytes_out: c.u64()?,
        connections_accepted: c.u64()?,
        connections_rejected: c.u64()?,
        in_flight: c.u64()?,
        latency_counts: Vec::new(),
    };
    let n = c.u32()?;
    if n as usize > LATENCY_BUCKETS {
        return Err(NetError::TooLarge {
            context: "latency bucket count",
            len: u64::from(n),
            max: LATENCY_BUCKETS as u64,
        });
    }
    c.check_claim("latency bucket count", u64::from(n), 8)?;
    let mut counts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        counts.push(c.u64()?);
    }
    snap.latency_counts = counts;
    Ok(snap)
}

/// Decode a response payload (the bytes between header and CRC).
pub fn decode_response_payload(payload: &[u8]) -> Result<Response> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let resp = match tag {
        0 => Response::Pong,
        1 => Response::Written { points: c.u64()? },
        2 => {
            let w = c.u32()?;
            c.check_claim("span count", u64::from(w), 1)?;
            let mut spans = Vec::with_capacity(w as usize);
            for _ in 0..w {
                match c.u8()? {
                    0 => spans.push(None),
                    1 => {
                        let first = c.point()?;
                        let last = c.point()?;
                        let bottom = c.point()?;
                        let top = c.point()?;
                        spans.push(Some(SpanRepr {
                            first,
                            last,
                            bottom,
                            top,
                        }));
                    }
                    other => {
                        return Err(NetError::UnknownTag {
                            context: "span flag",
                            tag: other,
                        })
                    }
                }
            }
            Response::M4 { spans }
        }
        3 => Response::Deleted,
        4 => {
            let io = Box::new(decode_io_snapshot(&mut c)?);
            let server = Box::new(decode_server_snapshot(&mut c)?);
            Response::Stats { io, server }
        }
        5 => Response::Flushed {
            series_flushed: c.u32()?,
        },
        6 => {
            let code_tag = c.u8()?;
            let code = ErrorCode::from_wire(code_tag).ok_or(NetError::UnknownTag {
                context: "error code",
                tag: code_tag,
            })?;
            let detail = c.str16()?;
            Response::Error { code, detail }
        }
        other => {
            return Err(NetError::UnknownTag {
                context: "response",
                tag: other,
            })
        }
    };
    if c.remaining() != 0 {
        return Err(NetError::TooLarge {
            context: "response payload trailing bytes",
            len: c.remaining() as u64,
            max: 0,
        });
    }
    Ok(resp)
}

/// Parse and validate a frame header. Returns `(kind, payload_len)`.
fn decode_header(header: &[u8], max_payload_bytes: u32) -> Result<(u8, usize)> {
    let mut c = Cursor::new(header);
    let magic = c.take(4)?;
    if magic != MAGIC {
        let arr: [u8; 4] = magic.try_into().map_err(|_| NetError::Truncated {
            needed: 4,
            got: magic.len(),
        })?;
        return Err(NetError::BadMagic(arr));
    }
    let version = c.u8()?;
    if version != VERSION {
        return Err(NetError::UnsupportedVersion(version));
    }
    let kind = c.u8()?;
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(NetError::UnknownTag {
            context: "frame kind",
            tag: kind,
        });
    }
    let len = c.u32()?;
    let max = max_payload_bytes.min(MAX_PAYLOAD_BYTES);
    if len > max {
        return Err(NetError::TooLarge {
            context: "payload",
            len: u64::from(len),
            max: u64::from(max),
        });
    }
    Ok((kind, len as usize))
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame> {
    match kind {
        KIND_REQUEST => Ok(Frame::Request(decode_request_payload(payload)?)),
        _ => Ok(Frame::Response(decode_response_payload(payload)?)),
    }
}

/// Decode one complete frame from a byte buffer. Returns the frame and
/// the number of bytes it occupied. Every malformed shape — wrong
/// magic, unknown version or tag, truncation at any offset, checksum
/// mismatch, trailing payload bytes — is a typed error.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize)> {
    let mut c = Cursor::new(buf);
    let header = c.take(HEADER_LEN)?;
    let (kind, len) = decode_header(header, MAX_PAYLOAD_BYTES)?;
    let payload = c.take(len)?;
    let expected = c.u32()?;
    let actual = crc32(payload);
    if expected != actual {
        return Err(NetError::ChecksumMismatch { expected, actual });
    }
    let frame = decode_payload(kind, payload)?;
    Ok((frame, HEADER_LEN + len + TRAILER_LEN))
}

/// Read one frame off a blocking stream. `max_payload_bytes` bounds
/// the allocation a peer can demand. The payload staging buffer comes
/// from the tsfile buffer pool: a server worker thread decoding one
/// frame per request reuses the same warm allocation.
pub fn read_frame(r: &mut impl Read, max_payload_bytes: u32) -> Result<Frame> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (kind, len) = decode_header(&header, max_payload_bytes)?;
    let mut payload = tsfile::bufpool::take(len);
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; TRAILER_LEN];
    r.read_exact(&mut crc_bytes)?;
    let expected = u32::from_le_bytes(crc_bytes);
    let actual = crc32(&payload);
    if expected != actual {
        return Err(NetError::ChecksumMismatch { expected, actual });
    }
    decode_payload(kind, &payload)
}

/// Write one pre-encoded frame to a blocking stream and flush it.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> Result<()> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::indexing_slicing
    )]

    use super::*;

    fn roundtrip_request(body: Request) {
        let env = RequestEnvelope {
            deadline_ms: 250,
            body,
        };
        let bytes = encode_request(&env).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame, Frame::Request(env));
    }

    fn roundtrip_response(resp: Response) {
        let bytes = encode_response(&resp).unwrap();
        let (frame, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(frame, Frame::Response(resp));
    }

    #[test]
    fn request_variants_roundtrip() {
        roundtrip_request(Request::Ping { delay_ms: 0 });
        roundtrip_request(Request::WriteBatch {
            entries: vec![
                ("a.b".into(), vec![Point::new(1, 2.0), Point::new(-5, -0.0)]),
                ("c".into(), vec![]),
            ],
        });
        roundtrip_request(Request::M4Query {
            series: "sensor.speed".into(),
            op: Operator::Lsm,
            t_qs: -100,
            t_qe: i64::MAX,
            w: 480,
        });
        roundtrip_request(Request::Delete {
            series: "s".into(),
            start: i64::MIN,
            end: i64::MAX,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::FlushSeal {
            series: Some("s".into()),
            compact: true,
        });
        roundtrip_request(Request::FlushSeal {
            series: None,
            compact: false,
        });
    }

    #[test]
    fn response_variants_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Written { points: u64::MAX });
        roundtrip_response(Response::M4 {
            spans: vec![
                None,
                Some(SpanRepr {
                    first: Point::new(1, 1.5),
                    last: Point::new(9, -2.5),
                    bottom: Point::new(4, -7.0),
                    top: Point::new(3, 8.0),
                }),
            ],
        });
        roundtrip_response(Response::Deleted);
        roundtrip_response(Response::Stats {
            io: Box::new(IoSnapshot {
                chunks_loaded: 1,
                points_decoded: 3,
                pages_decoded: 5,
                pages_skipped: 11,
                pages_stat_answered: 2,
                ..Default::default()
            }),
            server: Box::new(ServerStatsSnapshot {
                requests_query: 7,
                latency_counts: vec![0; LATENCY_BUCKETS],
                ..Default::default()
            }),
        });
        roundtrip_response(Response::Flushed { series_flushed: 3 });
        roundtrip_response(Response::Error {
            code: ErrorCode::SeriesNotFound,
            detail: "series \"x\"".into(),
        });
    }

    #[test]
    fn nan_value_bits_survive_the_wire() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let env = RequestEnvelope {
            deadline_ms: 0,
            body: Request::WriteBatch {
                entries: vec![("s".into(), vec![Point::new(0, weird)])],
            },
        };
        let bytes = encode_request(&env).unwrap();
        let (frame, _) = decode_frame(&bytes).unwrap();
        let Frame::Request(env2) = frame else {
            panic!("wrong kind")
        };
        let Request::WriteBatch { entries } = env2.body else {
            panic!("wrong body")
        };
        assert_eq!(entries[0].1[0].v.to_bits(), weird.to_bits());
    }

    #[test]
    fn bad_magic_version_kind_are_typed() {
        let good = encode_request(&RequestEnvelope {
            deadline_ms: 0,
            body: Request::Stats,
        })
        .unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode_frame(&bad), Err(NetError::BadMagic(_))));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::UnsupportedVersion(99))
        ));

        let mut bad = good.clone();
        bad[5] = 7;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::UnknownTag {
                context: "frame kind",
                tag: 7
            })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let good = encode_request(&RequestEnvelope {
            deadline_ms: 9,
            body: Request::Ping { delay_ms: 1 },
        })
        .unwrap();
        let mut bad = good.clone();
        bad[HEADER_LEN] ^= 0x40;
        assert!(matches!(
            decode_frame(&bad),
            Err(NetError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let good = encode_response(&Response::Written { points: 5 }).unwrap();
        for k in 0..good.len() {
            let r = decode_frame(&good[..k]);
            assert!(r.is_err(), "prefix of {k} bytes must not decode");
        }
    }

    #[test]
    fn oversized_claimed_counts_are_rejected() {
        // A write-batch frame claiming u32::MAX points but holding none.
        let mut payload = Vec::new();
        put_u32(&mut payload, 0); // deadline
        payload.push(1); // WriteBatch
        put_u32(&mut payload, 1); // one series
        put_str(&mut payload, "s").unwrap();
        put_u32(&mut payload, u32::MAX); // absurd point count
        let frame = frame_bytes(KIND_REQUEST, payload).unwrap();
        assert!(matches!(
            decode_frame(&frame),
            Err(NetError::TooLarge { .. })
        ));
    }

    #[test]
    fn stream_read_write_roundtrip() {
        let env = RequestEnvelope {
            deadline_ms: 1,
            body: Request::Delete {
                series: "s".into(),
                start: 0,
                end: 10,
            },
        };
        let bytes = encode_request(&env).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &bytes).unwrap();
        let frame = read_frame(&mut buf.as_slice(), MAX_PAYLOAD_BYTES).unwrap();
        assert_eq!(frame, Frame::Request(env));
    }
}
