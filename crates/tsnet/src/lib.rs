//! # tsnet — the network service layer
//!
//! Everything below this crate runs in one process; `tsnet` puts the
//! M4-LSM engine behind a socket so serving cost — admission control,
//! backpressure, per-request deadlines, wire encoding — becomes
//! measurable, the way the paper's operator is measured inside Apache
//! IoTDB rather than as a library call.
//!
//! Three layers:
//!
//! - [`wire`] — a length-prefixed, versioned, checksummed binary frame
//!   protocol. Decoding follows the storage crates' discipline for
//!   untrusted bytes: typed [`NetError`]s, never panics, never
//!   attacker-controlled allocations.
//! - [`server`] — a multi-threaded TCP server fronting a shared
//!   [`tskv::TsKv`]: bounded connection pool, max-in-flight admission
//!   gate with `Busy` backpressure, per-request deadlines, graceful
//!   shutdown that drains in-flight requests.
//! - [`client`] — a blocking client with connect/retry and typed
//!   errors, a reader that demuxes server pushes from responses, and
//!   a [`client::SubReplay`] helper that folds span deltas back into a
//!   dashboard state.
//! - [`sub`] — server-push M4 subscriptions: identical `(series,
//!   range, w)` subscriptions share ONE incremental [`m4::stream::
//!   StreamingM4`] computation; ingest advances it once and span
//!   deltas fan out over bounded per-connection queues
//!   (coalesce-then-drop with a `Lagged` + resync contract for slow
//!   consumers).
//!
//! Supported RPCs: `Ping`, `WriteBatch`, `M4Query` (udf and lsm),
//! `Delete`, `Stats` (engine [`tskv::stats::IoSnapshot`] + server
//! [`ServerStatsSnapshot`]), `FlushSeal`, `Subscribe`/`Unsubscribe`
//! (server-initiated `SpanDelta`/`Lagged`/`SubError` push frames).
//!
//! ```no_run
//! use std::sync::Arc;
//! use tsnet::{ClientConfig, Operator, ServerConfig, TsNetClient, TsNetServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let store = Arc::new(tskv::TsKv::open("/tmp/db", tskv::config::EngineConfig::default())?);
//! let server = TsNetServer::start(store, ServerConfig::default())?;
//! let mut client = TsNetClient::connect(server.local_addr(), ClientConfig::default())?;
//! client.write_batch(vec![("s".into(), vec![tsfile::types::Point::new(1, 2.0)])])?;
//! let spans = client.m4_query("s", Operator::Lsm, 0, 10, 4)?;
//! assert_eq!(spans.len(), 4);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod error;
pub mod server;
pub mod stats;
pub mod sub;
pub mod wire;

pub use client::{ClientConfig, SubReplay, Subscription, TsNetClient};
pub use error::{ErrorCode, NetError};
pub use server::{ServerConfig, TsNetServer};
pub use stats::{RequestKind, ServerStats, ServerStatsSnapshot};
pub use sub::{SubRegistry, SubSettings};
pub use wire::{Frame, Operator, Push, Request, RequestEnvelope, Response, ResponseEnvelope};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;
