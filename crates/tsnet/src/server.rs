//! The TCP query/ingest server.
//!
//! ## Threading model
//!
//! One blocking **accept thread** owns the listener. Each accepted
//! connection gets a dedicated **worker thread** from a bounded pool
//! (`max_connections`); connections beyond the bound are answered with
//! a `Busy` error frame and closed. Workers alternate between a short
//! `peek`-with-timeout poll (so they notice shutdown without consuming
//! frame bytes) and a full blocking frame read once bytes are present.
//!
//! ## Admission control
//!
//! A single atomic in-flight gauge admits at most `max_in_flight`
//! requests into execution; excess requests are answered immediately
//! with `Busy` (the connection stays usable — backpressure, not
//! eviction). `Stats` is control-plane and bypasses admission, so an
//! operator (or a test) can always observe a saturated server.
//!
//! ## Shutdown protocol
//!
//! [`TsNetServer::shutdown`] sets the drain flag, wakes the accept
//! thread with a self-connection, then joins it and every worker.
//! Workers finish the request they are executing (its response is
//! written before the thread exits — in-flight work is drained), answer
//! any *newly arriving* frame with `ShuttingDown`, and exit at the next
//! idle poll.
//!
//! ## Lock discipline (xtask L2)
//!
//! The only lock is the worker-pool registry. Guards over it are
//! acquired *after* thread spawn and scoped to a registry push or take
//! — no file I/O, no flush/compact, no socket write happens while a
//! guard is live.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tskv::{TsKv, WriteBatch};

use crate::error::{ErrorCode, NetError};
use crate::stats::{RequestKind, ServerStats};
use crate::wire::{self, Frame, Operator, Request, Response};
use crate::Result;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`TsNetServer::local_addr`]).
    pub addr: String,
    /// Worker-pool bound: connections beyond this are answered `Busy`
    /// and closed.
    pub max_connections: usize,
    /// Admission-control bound: requests executing at once.
    pub max_in_flight: usize,
    /// Server-side cap on any request's deadline (ms; 0 = uncapped).
    pub request_timeout_ms: u64,
    /// How long a worker may block mid-frame before the connection is
    /// considered dead (ms).
    pub frame_read_timeout_ms: u64,
    /// Idle poll interval between frames (ms); bounds how fast workers
    /// notice shutdown.
    pub poll_interval_ms: u64,
    /// Cap on `Ping::delay_ms` so a client cannot park a slot forever.
    pub max_ping_delay_ms: u32,
    /// Per-frame payload ceiling (bytes), at most
    /// [`wire::MAX_PAYLOAD_BYTES`].
    pub max_payload_bytes: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 32,
            max_in_flight: 4,
            request_timeout_ms: 30_000,
            frame_read_timeout_ms: 30_000,
            poll_interval_ms: 20,
            max_ping_delay_ms: 10_000,
            max_payload_bytes: wire::MAX_PAYLOAD_BYTES,
        }
    }
}

/// State shared by the accept thread and every worker.
struct Shared {
    store: Arc<TsKv>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    active_conns: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping it shuts it down (joining all threads);
/// call [`TsNetServer::shutdown`] explicitly to control when.
pub struct TsNetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl TsNetServer {
    /// Bind `config.addr` and start serving `store`.
    pub fn start(store: Arc<TsKv>, config: ServerConfig) -> Result<TsNetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            store,
            stats: Arc::new(ServerStats::default()),
            config,
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            active_conns: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("tsnet-accept".to_string())
            .spawn(move || accept_loop(&accept_shared, &listener))
            .map_err(NetError::Io)?;
        Ok(TsNetServer {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The engine this server fronts.
    pub fn store(&self) -> Arc<TsKv> {
        Arc::clone(&self.shared.store)
    }

    /// Admitted requests executing right now.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Whether the drain flag is set.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// join every thread. Idempotent; blocks until the drain finishes.
    pub fn shutdown(&self) {
        let already = self.shared.shutting_down.swap(true, Ordering::AcqRel);
        // Wake the blocking accept call so it can observe the flag.
        // Harmless if the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        if already {
            // Another caller is (or was) draining; nothing to join here.
            return;
        }
        let accept = {
            let mut slot = self.accept.lock();
            slot.take()
        };
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let workers = {
            let mut pool = self.shared.workers.lock();
            std::mem::take(&mut *pool)
        };
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for TsNetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    // The wake-up pill (or a late client); close it.
                    return;
                }
                handle_connection(shared, stream);
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure; don't spin.
                thread::sleep(Duration::from_millis(shared.config.poll_interval_ms.max(1)));
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let occupied = shared.active_conns.fetch_add(1, Ordering::AcqRel);
    if occupied >= shared.config.max_connections.max(1) {
        shared.active_conns.fetch_sub(1, Ordering::AcqRel);
        shared.stats.record_conn_rejected();
        // Write the Busy rejection off the accept thread: a client
        // that never drains its socket would otherwise park the
        // accept loop and starve every other connection. The write is
        // both detached and bounded by a write timeout; if the spawn
        // itself fails the connection just closes unanswered.
        let reject_shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("tsnet-reject".to_string())
            .spawn(move || {
                let _ = stream.set_write_timeout(Some(Duration::from_millis(
                    reject_shared.config.frame_read_timeout_ms.max(1),
                )));
                let _ = respond(
                    &reject_shared,
                    &mut stream,
                    &error_response(ErrorCode::Busy, "connection limit reached"),
                );
            });
        return;
    }
    shared.stats.record_conn_accepted();
    let worker_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("tsnet-worker".to_string())
        .spawn(move || {
            worker_loop(&worker_shared, stream);
            worker_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
        });
    match spawned {
        Ok(handle) => {
            let mut pool = shared.workers.lock();
            pool.push(handle);
        }
        Err(_) => {
            // The stream moved into the failed closure and is gone;
            // release the slot.
            shared.active_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn worker_loop(shared: &Shared, mut stream: TcpStream) {
    let poll = Duration::from_millis(shared.config.poll_interval_ms.max(1));
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut probe = [0u8; 1];
    loop {
        match stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    // A frame arrived after the drain began: answer it
                    // with a typed refusal and close. (In-flight work is
                    // drained; *new* work is not accepted.)
                    let _ = respond(
                        shared,
                        &mut stream,
                        &error_response(ErrorCode::ShuttingDown, "server is draining"),
                    );
                    return;
                }
                if !serve_one(shared, &mut stream, poll) {
                    return;
                }
            }
            Err(e) if polling_would_block(&e) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn polling_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Socket reader that counts the bytes it delivers.
struct CountingReader<'a> {
    inner: &'a mut TcpStream,
    bytes: u64,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// Read, execute and answer one request. Returns `false` when the
/// connection must close (framing lost or socket dead).
fn serve_one(shared: &Shared, stream: &mut TcpStream, poll: Duration) -> bool {
    let frame_timeout = Duration::from_millis(shared.config.frame_read_timeout_ms.max(1));
    if stream.set_read_timeout(Some(frame_timeout)).is_err() {
        return false;
    }
    let started = Instant::now();
    let mut counting = CountingReader {
        inner: stream,
        bytes: 0,
    };
    let frame = wire::read_frame(&mut counting, shared.config.max_payload_bytes);
    let bytes_in = counting.bytes;
    shared.stats.add_bytes_in(bytes_in);
    let env = match frame {
        Ok(Frame::Request(env)) => env,
        Ok(Frame::Response(_)) => {
            // A peer that sends response frames is not a client;
            // refuse and close.
            let _ = respond(
                shared,
                stream,
                &error_response(ErrorCode::InvalidRequest, "expected a request frame"),
            );
            return false;
        }
        Err(e) => {
            // Frame boundaries are unrecoverable after a decode error:
            // answer (best effort) and close.
            let _ = respond(
                shared,
                stream,
                &error_response(ErrorCode::InvalidRequest, &format!("bad frame: {e}")),
            );
            return false;
        }
    };

    let admission_exempt = matches!(env.body, Request::Stats);
    if !admission_exempt && !try_admit(shared) {
        shared.stats.record_busy();
        let sent = respond(
            shared,
            stream,
            &error_response(ErrorCode::Busy, "max in-flight reached"),
        );
        let _ = stream.set_read_timeout(Some(poll));
        return sent.is_ok();
    }

    let (kind, outcome) = execute(shared, &env.body);
    if !admission_exempt {
        release(shared);
    }

    let elapsed = started.elapsed();
    let response = match outcome {
        Ok(resp) => {
            if deadline_missed(elapsed, env.deadline_ms, shared.config.request_timeout_ms) {
                shared.stats.record_timeout();
                error_response(
                    ErrorCode::Timeout,
                    &format!("deadline of {} ms elapsed", env.deadline_ms),
                )
            } else {
                shared.stats.record_request(kind, duration_us(elapsed));
                resp
            }
        }
        Err((code, detail)) => {
            shared.stats.record_error();
            error_response(code, &detail)
        }
    };

    let sent = respond(shared, stream, &response);
    let _ = stream.set_read_timeout(Some(poll));
    sent.is_ok()
}

/// Whether `elapsed` exceeds the effective deadline: the tighter of the
/// request's own deadline and the server-wide cap (0 disables either).
fn deadline_missed(elapsed: Duration, deadline_ms: u32, cap_ms: u64) -> bool {
    let request = if deadline_ms > 0 {
        Some(u64::from(deadline_ms))
    } else {
        None
    };
    let cap = if cap_ms > 0 { Some(cap_ms) } else { None };
    let effective = match (request, cap) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    match effective {
        Some(ms) => elapsed > Duration::from_millis(ms),
        None => false,
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn try_admit(shared: &Shared) -> bool {
    let max = shared.config.max_in_flight.max(1);
    shared
        .in_flight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            if n < max {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok()
}

fn release(shared: &Shared) {
    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
}

fn error_response(code: ErrorCode, detail: &str) -> Response {
    Response::Error {
        code,
        detail: detail.to_string(),
    }
}

/// Encode and write one response frame, counting bytes out.
fn respond(shared: &Shared, stream: &mut TcpStream, resp: &Response) -> Result<()> {
    let bytes = wire::encode_response(resp)?;
    wire::write_frame(stream, &bytes)?;
    shared.stats.add_bytes_out(bytes.len() as u64);
    Ok(())
}

fn map_tskv_error(e: &tskv::TsKvError) -> (ErrorCode, String) {
    use tskv::TsKvError;
    let code = match e {
        TsKvError::SeriesNotFound(_) => ErrorCode::SeriesNotFound,
        TsKvError::InvalidDeleteRange { .. }
        | TsKvError::InvalidSeriesName(_)
        | TsKvError::InvalidConfig { .. } => ErrorCode::InvalidRequest,
        TsKvError::TsFile(_) | TsKvError::Io(_) => ErrorCode::Engine,
    };
    (code, e.to_string())
}

fn map_m4_error(e: &m4::M4Error) -> (ErrorCode, String) {
    use m4::M4Error;
    let code = match e {
        M4Error::Storage(inner) => return map_tskv_error(inner),
        M4Error::EmptyQueryRange { .. } | M4Error::ZeroSpans | M4Error::EmptyCanvas => {
            ErrorCode::InvalidRequest
        }
        M4Error::Internal(_) => ErrorCode::Engine,
    };
    (code, e.to_string())
}

type Execution = std::result::Result<Response, (ErrorCode, String)>;

fn execute(shared: &Shared, body: &Request) -> (RequestKind, Execution) {
    match body {
        Request::Ping { delay_ms } => {
            let delay = (*delay_ms).min(shared.config.max_ping_delay_ms);
            if delay > 0 {
                thread::sleep(Duration::from_millis(u64::from(delay)));
            }
            (RequestKind::Ping, Ok(Response::Pong))
        }
        Request::WriteBatch { entries } => (RequestKind::Write, execute_write(shared, entries)),
        Request::M4Query {
            series,
            op,
            t_qs,
            t_qe,
            w,
        } => (
            RequestKind::Query,
            execute_query(shared, series, *op, *t_qs, *t_qe, *w),
        ),
        Request::Delete { series, start, end } => {
            let outcome = match shared.store.delete(series, *start, *end) {
                Ok(()) => Ok(Response::Deleted),
                Err(e) => Err(map_tskv_error(&e)),
            };
            (RequestKind::Delete, outcome)
        }
        Request::Stats => {
            let io_snap = shared.store.io().snapshot();
            let in_flight = shared.in_flight.load(Ordering::Acquire) as u64;
            let server = shared.stats.snapshot(in_flight);
            (
                RequestKind::Stats,
                Ok(Response::Stats {
                    io: Box::new(io_snap),
                    server: Box::new(server),
                }),
            )
        }
        Request::FlushSeal { series, compact } => {
            (RequestKind::Flush, execute_flush(shared, series, *compact))
        }
    }
}

fn execute_write(shared: &Shared, entries: &[(String, Vec<tsfile::types::Point>)]) -> Execution {
    let mut batch = WriteBatch::new();
    for (series, points) in entries {
        batch.insert_many(series, points);
    }
    match shared.store.write_batch(&batch) {
        Ok(points) => Ok(Response::Written {
            points: points as u64,
        }),
        Err(e) => Err(map_tskv_error(&e)),
    }
}

fn execute_query(
    shared: &Shared,
    series: &str,
    op: Operator,
    t_qs: i64,
    t_qe: i64,
    w: u32,
) -> Execution {
    let snapshot = shared
        .store
        .snapshot(series)
        .map_err(|e| map_tskv_error(&e))?;
    let query = m4::M4Query::new(t_qs, t_qe, w as usize).map_err(|e| map_m4_error(&e))?;
    let result = match op {
        Operator::Udf => m4::M4Udf::new().execute(&snapshot, &query),
        Operator::Lsm => m4::M4Lsm::new().execute(&snapshot, &query),
    };
    match result {
        Ok(r) => Ok(Response::M4 { spans: r.spans }),
        Err(e) => Err(map_m4_error(&e)),
    }
}

fn execute_flush(shared: &Shared, series: &Option<String>, compact: bool) -> Execution {
    let names: Vec<String> = match series {
        Some(name) => vec![name.clone()],
        None => shared.store.series_names(),
    };
    for name in &names {
        shared.store.flush(name).map_err(|e| map_tskv_error(&e))?;
        if compact {
            shared.store.compact(name).map_err(|e| map_tskv_error(&e))?;
        }
    }
    Ok(Response::Flushed {
        series_flushed: names.len() as u32,
    })
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn deadline_uses_the_tighter_of_request_and_cap() {
        let ms = Duration::from_millis;
        // No deadline anywhere: never missed.
        assert!(!deadline_missed(ms(10_000), 0, 0));
        // Request deadline only.
        assert!(deadline_missed(ms(11), 10, 0));
        assert!(!deadline_missed(ms(9), 10, 0));
        // Server cap only.
        assert!(deadline_missed(ms(31), 0, 30));
        // Both: the tighter wins in each direction.
        assert!(deadline_missed(ms(11), 10, 30));
        assert!(deadline_missed(ms(11), 30, 10));
        assert!(!deadline_missed(ms(9), 10, 30));
    }

    #[test]
    fn duration_us_saturates() {
        assert_eq!(duration_us(Duration::from_micros(7)), 7);
        assert_eq!(duration_us(Duration::MAX), u64::MAX);
    }
}
