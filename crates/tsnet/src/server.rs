//! The TCP query/ingest server.
//!
//! ## Threading model
//!
//! One blocking **accept thread** owns the listener. Each accepted
//! connection gets a dedicated **worker thread** from a bounded pool
//! (`max_connections`); connections beyond the bound are answered with
//! a `Busy` error frame and closed. Workers alternate between a short
//! `peek`-with-timeout poll (so they notice shutdown without consuming
//! frame bytes) and a full blocking frame read once bytes are present.
//!
//! Each connection also gets a **writer thread** owning the socket's
//! write half exclusively: every outbound frame — worker responses and
//! subscription pushes alike — goes through the connection's bounded
//! [`sub::OutboundQueue`], so responses and pushes never interleave
//! mid-frame and no thread ever writes a socket while holding a lock.
//! One process-wide **dispatcher thread** (see [`sub::SubRegistry`])
//! consumes engine change events, advances the shared per-dashboard
//! streaming computations, and fans span deltas out to those queues.
//!
//! ## Admission control
//!
//! A single atomic in-flight gauge admits at most `max_in_flight`
//! requests into execution; excess requests are answered immediately
//! with `Busy` (the connection stays usable — backpressure, not
//! eviction). `Stats` is control-plane and bypasses admission, so an
//! operator (or a test) can always observe a saturated server.
//!
//! ## Shutdown protocol
//!
//! [`TsNetServer::shutdown`] sets the drain flag, wakes the accept
//! thread with a self-connection, then joins it and every worker.
//! Workers finish the request they are executing (its response is
//! written before the thread exits — in-flight work is drained), answer
//! any *newly arriving* frame with `ShuttingDown`, and exit at the next
//! idle poll.
//!
//! ## Lock discipline (xtask L2)
//!
//! Locks here are the worker-pool registry and the per-connection
//! outbound queues. Guards are scoped to registry pushes/takes and
//! queue mutations — no file I/O, no flush/compact, no socket write
//! happens while a guard is live. Socket writes belong exclusively to
//! the writer threads, which take frames *out* of the queue under the
//! lock and write them after releasing it.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tskv::{TsKv, WriteBatch};

use crate::error::{ErrorCode, NetError};
use crate::stats::{RequestKind, ServerStats};
use crate::sub::{self, OutboundQueue, SubRegistry, SubSettings};
use crate::wire::{self, Frame, Operator, Request, RequestEnvelope, Response, ResponseEnvelope};
use crate::Result;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`TsNetServer::local_addr`]).
    pub addr: String,
    /// Worker-pool bound: connections beyond this are answered `Busy`
    /// and closed.
    pub max_connections: usize,
    /// Admission-control bound: requests executing at once.
    pub max_in_flight: usize,
    /// Server-side cap on any request's deadline (ms; 0 = uncapped).
    pub request_timeout_ms: u64,
    /// How long a worker may block mid-frame before the connection is
    /// considered dead (ms).
    pub frame_read_timeout_ms: u64,
    /// Idle poll interval between frames (ms); bounds how fast workers
    /// notice shutdown.
    pub poll_interval_ms: u64,
    /// Cap on `Ping::delay_ms` so a client cannot park a slot forever.
    pub max_ping_delay_ms: u32,
    /// Per-frame payload ceiling (bytes), at most
    /// [`wire::MAX_PAYLOAD_BYTES`].
    pub max_payload_bytes: u32,
    /// Registry-wide cap on concurrently active subscriptions.
    pub max_subscriptions: usize,
    /// Per-connection pending span-entry budget; a subscriber whose
    /// queue exceeds it is lagged into a full-state resync.
    pub push_queue_spans: usize,
    /// Depth of the engine change-notification channel feeding the
    /// subscription dispatcher.
    pub change_queue_depth: usize,
    /// Subscription dispatcher poll interval (ms).
    pub dispatch_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 32,
            max_in_flight: 4,
            request_timeout_ms: 30_000,
            frame_read_timeout_ms: 30_000,
            poll_interval_ms: 20,
            max_ping_delay_ms: 10_000,
            max_payload_bytes: wire::MAX_PAYLOAD_BYTES,
            max_subscriptions: 1024,
            push_queue_spans: 4096,
            change_queue_depth: 1024,
            dispatch_interval_ms: 10,
        }
    }
}

/// State shared by the accept thread and every worker.
struct Shared {
    store: Arc<TsKv>,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    registry: Arc<SubRegistry>,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    active_conns: AtomicUsize,
    next_conn_id: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server. Dropping it shuts it down (joining all threads);
/// call [`TsNetServer::shutdown`] explicitly to control when.
pub struct TsNetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl TsNetServer {
    /// Bind `config.addr` and start serving `store`.
    pub fn start(store: Arc<TsKv>, config: ServerConfig) -> Result<TsNetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let registry = SubRegistry::start(
            Arc::clone(&store),
            Arc::clone(&stats),
            SubSettings {
                max_subscriptions: config.max_subscriptions,
                push_queue_spans: config.push_queue_spans,
                change_queue_depth: config.change_queue_depth,
                dispatch_interval_ms: config.dispatch_interval_ms,
            },
        );
        let shared = Arc::new(Shared {
            store,
            stats,
            config,
            registry,
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            active_conns: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(1),
            workers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("tsnet-accept".to_string())
            .spawn(move || accept_loop(&accept_shared, &listener))
            .map_err(NetError::Io)?;
        Ok(TsNetServer {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The engine this server fronts.
    pub fn store(&self) -> Arc<TsKv> {
        Arc::clone(&self.shared.store)
    }

    /// Admitted requests executing right now.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Whether the drain flag is set.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Acquire)
    }

    /// Live shared dashboard computations (distinct subscription keys).
    pub fn active_dashboards(&self) -> usize {
        self.shared.registry.active_dashboards()
    }

    /// Block until the subscription plane is settled: every published
    /// change event processed, every dashboard span exact, every push
    /// queue drained onto its socket. At that point each subscriber's
    /// replayed state equals a fresh M4 recompute byte-for-byte.
    /// Returns `false` on timeout.
    pub fn quiesce_subscriptions(&self, timeout: Duration) -> bool {
        self.shared.registry.quiesce(timeout)
    }

    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// join every thread. Idempotent; blocks until the drain finishes.
    pub fn shutdown(&self) {
        let already = self.shared.shutting_down.swap(true, Ordering::AcqRel);
        // Wake the blocking accept call so it can observe the flag.
        // Harmless if the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        if already {
            // Another caller is (or was) draining; nothing to join here.
            return;
        }
        let accept = {
            let mut slot = self.accept.lock();
            slot.take()
        };
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let workers = {
            let mut pool = self.shared.workers.lock();
            std::mem::take(&mut *pool)
        };
        for handle in workers {
            let _ = handle.join();
        }
        // Workers are gone (each closed its queue, joined its writer
        // and detached its subscriptions); stop the dispatcher last.
        self.shared.registry.stop();
    }
}

impl Drop for TsNetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    // The wake-up pill (or a late client); close it.
                    return;
                }
                handle_connection(shared, stream);
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure; don't spin.
                thread::sleep(Duration::from_millis(shared.config.poll_interval_ms.max(1)));
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let occupied = shared.active_conns.fetch_add(1, Ordering::AcqRel);
    if occupied >= shared.config.max_connections.max(1) {
        shared.active_conns.fetch_sub(1, Ordering::AcqRel);
        shared.stats.record_conn_rejected();
        // Write the Busy rejection off the accept thread: a client
        // that never drains its socket would otherwise park the
        // accept loop and starve every other connection. The write is
        // both detached and bounded by a write timeout; if the spawn
        // itself fails the connection just closes unanswered.
        let reject_shared = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("tsnet-reject".to_string())
            .spawn(move || {
                let _ = stream.set_write_timeout(Some(Duration::from_millis(
                    reject_shared.config.frame_read_timeout_ms.max(1),
                )));
                // No worker (and thus no writer thread) ever exists for
                // a rejected connection, so a direct write is safe.
                let _ = respond_direct(
                    &reject_shared,
                    &mut stream,
                    &reply_envelope(
                        0,
                        error_response(ErrorCode::Busy, "connection limit reached"),
                    ),
                );
            });
        return;
    }
    shared.stats.record_conn_accepted();
    let worker_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name("tsnet-worker".to_string())
        .spawn(move || {
            worker_loop(&worker_shared, stream);
            worker_shared.active_conns.fetch_sub(1, Ordering::AcqRel);
        });
    match spawned {
        Ok(handle) => {
            let mut pool = shared.workers.lock();
            pool.push(handle);
        }
        Err(_) => {
            // The stream moved into the failed closure and is gone;
            // release the slot.
            shared.active_conns.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

fn worker_loop(shared: &Shared, mut stream: TcpStream) {
    let poll = Duration::from_millis(shared.config.poll_interval_ms.max(1));
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    // The worker keeps the read half; the writer thread owns a cloned
    // write half, fed by the connection's outbound queue.
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::AcqRel);
    let queue = Arc::new(OutboundQueue::new(shared.config.push_queue_spans));
    let writer_queue = Arc::clone(&queue);
    let writer_stats = Arc::clone(&shared.stats);
    let writer = thread::Builder::new()
        .name("tsnet-push".to_string())
        .spawn(move || {
            let mut half = write_half;
            sub::writer_loop(&writer_queue, &mut half, &writer_stats);
        });
    let Ok(writer) = writer else {
        return;
    };
    let mut probe = [0u8; 1];
    loop {
        if queue.is_dead() {
            // The writer hit a socket error; the connection is gone.
            break;
        }
        match stream.peek(&mut probe) {
            Ok(0) => break, // peer closed
            Ok(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    // A frame arrived after the drain began: answer it
                    // with a typed refusal and close. (In-flight work is
                    // drained; *new* work is not accepted.) The queue
                    // close below flushes the refusal before the writer
                    // exits.
                    enqueue_reply(
                        &queue,
                        0,
                        error_response(ErrorCode::ShuttingDown, "server is draining"),
                    );
                    break;
                }
                if !serve_one(shared, &mut stream, &queue, conn_id, poll) {
                    break;
                }
            }
            Err(e) if polling_would_block(&e) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Teardown order matters: detach subscriptions first so the
    // dispatcher stops feeding the queue, then close the queue (the
    // writer drains the backlog and exits), then reap the writer.
    shared.registry.drop_connection(conn_id);
    queue.close();
    let _ = writer.join();
}

fn polling_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Socket reader that counts the bytes it delivers.
struct CountingReader<'a> {
    inner: &'a mut TcpStream,
    bytes: u64,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// Read, execute and answer one request. Returns `false` when the
/// connection must close (framing lost or socket dead).
///
/// Responses are enqueued onto the connection's outbound queue — the
/// writer thread owns the socket's write half — so a response never
/// interleaves with a push frame. Responses to frames whose envelope
/// could not be decoded echo request id 0.
fn serve_one(
    shared: &Shared,
    stream: &mut TcpStream,
    queue: &Arc<OutboundQueue>,
    conn_id: u64,
    poll: Duration,
) -> bool {
    let frame_timeout = Duration::from_millis(shared.config.frame_read_timeout_ms.max(1));
    if stream.set_read_timeout(Some(frame_timeout)).is_err() {
        return false;
    }
    let started = Instant::now();
    let mut counting = CountingReader {
        inner: stream,
        bytes: 0,
    };
    let frame = wire::read_frame(&mut counting, shared.config.max_payload_bytes);
    let bytes_in = counting.bytes;
    shared.stats.add_bytes_in(bytes_in);
    let env = match frame {
        Ok(Frame::Request(env)) => env,
        Ok(Frame::Response(_) | Frame::Push(_)) => {
            // A peer that sends response or push frames is not a
            // client; refuse and close.
            enqueue_reply(
                queue,
                0,
                error_response(ErrorCode::InvalidRequest, "expected a request frame"),
            );
            return false;
        }
        Err(e) => {
            // Frame boundaries are unrecoverable after a decode error:
            // answer (best effort) and close.
            enqueue_reply(
                queue,
                0,
                error_response(ErrorCode::InvalidRequest, &format!("bad frame: {e}")),
            );
            return false;
        }
    };

    let admission_exempt = matches!(env.body, Request::Stats);
    if !admission_exempt && !try_admit(shared) {
        shared.stats.record_busy();
        let sent = enqueue_reply(
            queue,
            env.request_id,
            error_response(ErrorCode::Busy, "max in-flight reached"),
        );
        let _ = stream.set_read_timeout(Some(poll));
        return sent;
    }

    let (kind, outcome) = execute(shared, &env, conn_id, queue);
    if !admission_exempt {
        release(shared);
    }

    let elapsed = started.elapsed();
    let reply = match outcome {
        Outcome::AckQueued => {
            // The SubAck was enqueued under the registry lock (ahead of
            // any delta for the new id); only the bookkeeping is left.
            shared.stats.record_request(kind, duration_us(elapsed));
            None
        }
        Outcome::Reply(resp) => {
            if deadline_missed(elapsed, env.deadline_ms, shared.config.request_timeout_ms) {
                shared.stats.record_timeout();
                Some(error_response(
                    ErrorCode::Timeout,
                    &format!("deadline of {} ms elapsed", env.deadline_ms),
                ))
            } else {
                shared.stats.record_request(kind, duration_us(elapsed));
                Some(resp)
            }
        }
        Outcome::Fail(code, detail) => {
            shared.stats.record_error();
            Some(error_response(code, &detail))
        }
    };

    let sent = match reply {
        Some(body) => enqueue_reply(queue, env.request_id, body),
        None => true,
    };
    let _ = stream.set_read_timeout(Some(poll));
    sent
}

/// Whether `elapsed` exceeds the effective deadline: the tighter of the
/// request's own deadline and the server-wide cap (0 disables either).
fn deadline_missed(elapsed: Duration, deadline_ms: u32, cap_ms: u64) -> bool {
    let request = if deadline_ms > 0 {
        Some(u64::from(deadline_ms))
    } else {
        None
    };
    let cap = if cap_ms > 0 { Some(cap_ms) } else { None };
    let effective = match (request, cap) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    };
    match effective {
        Some(ms) => elapsed > Duration::from_millis(ms),
        None => false,
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn try_admit(shared: &Shared) -> bool {
    let max = shared.config.max_in_flight.max(1);
    shared
        .in_flight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            if n < max {
                Some(n + 1)
            } else {
                None
            }
        })
        .is_ok()
}

fn release(shared: &Shared) {
    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
}

fn error_response(code: ErrorCode, detail: &str) -> Response {
    Response::Error {
        code,
        detail: detail.to_string(),
    }
}

fn reply_envelope(request_id: u64, body: Response) -> ResponseEnvelope {
    ResponseEnvelope { request_id, body }
}

/// Encode one response and hand it to the connection's writer thread.
/// Returns `false` when the frame cannot be delivered (encode failure
/// or the connection's write side is already closed/dead). Bytes-out
/// accounting happens in the writer, at the socket.
fn enqueue_reply(queue: &OutboundQueue, request_id: u64, body: Response) -> bool {
    match wire::encode_response(&reply_envelope(request_id, body)) {
        Ok(bytes) => queue.push_response(bytes),
        Err(_) => false,
    }
}

/// Encode and write one response frame directly, counting bytes out.
/// Only for connections that never had a writer thread (the Busy
/// reject path on the accept side).
fn respond_direct(shared: &Shared, stream: &mut TcpStream, env: &ResponseEnvelope) -> Result<()> {
    let bytes = wire::encode_response(env)?;
    wire::write_frame(stream, &bytes)?;
    shared.stats.add_bytes_out(bytes.len() as u64);
    Ok(())
}

fn map_tskv_error(e: &tskv::TsKvError) -> (ErrorCode, String) {
    use tskv::TsKvError;
    let code = match e {
        TsKvError::SeriesNotFound(_) => ErrorCode::SeriesNotFound,
        TsKvError::InvalidDeleteRange { .. }
        | TsKvError::InvalidSeriesName(_)
        | TsKvError::InvalidConfig { .. } => ErrorCode::InvalidRequest,
        TsKvError::CatalogFull { .. }
        | TsKvError::Corrupt(_)
        | TsKvError::TsFile(_)
        | TsKvError::Io(_) => ErrorCode::Engine,
    };
    (code, e.to_string())
}

fn map_m4_error(e: &m4::M4Error) -> (ErrorCode, String) {
    use m4::M4Error;
    let code = match e {
        M4Error::Storage(inner) => return map_tskv_error(inner),
        M4Error::EmptyQueryRange { .. } | M4Error::ZeroSpans | M4Error::EmptyCanvas => {
            ErrorCode::InvalidRequest
        }
        M4Error::Internal(_) => ErrorCode::Engine,
    };
    (code, e.to_string())
}

type Execution = std::result::Result<Response, (ErrorCode, String)>;

/// What a request execution produced.
enum Outcome {
    /// A response body to envelope and enqueue.
    Reply(Response),
    /// The response (a `SubAck`) was already enqueued by the
    /// subscription registry, atomically ahead of any push for the new
    /// subscription id.
    AckQueued,
    /// A typed failure to report as an error response.
    Fail(ErrorCode, String),
}

impl From<Execution> for Outcome {
    fn from(e: Execution) -> Outcome {
        match e {
            Ok(resp) => Outcome::Reply(resp),
            Err((code, detail)) => Outcome::Fail(code, detail),
        }
    }
}

fn execute(
    shared: &Shared,
    env: &RequestEnvelope,
    conn_id: u64,
    queue: &Arc<OutboundQueue>,
) -> (RequestKind, Outcome) {
    match &env.body {
        Request::Ping { delay_ms } => {
            let delay = (*delay_ms).min(shared.config.max_ping_delay_ms);
            if delay > 0 {
                thread::sleep(Duration::from_millis(u64::from(delay)));
            }
            (RequestKind::Ping, Outcome::Reply(Response::Pong))
        }
        Request::WriteBatch { entries } => {
            (RequestKind::Write, execute_write(shared, entries).into())
        }
        Request::M4Query {
            series,
            op,
            t_qs,
            t_qe,
            w,
        } => (
            RequestKind::Query,
            execute_query(shared, series, *op, *t_qs, *t_qe, *w).into(),
        ),
        Request::Delete { series, start, end } => {
            let outcome = match shared.store.delete(series, *start, *end) {
                Ok(()) => Outcome::Reply(Response::Deleted),
                Err(e) => {
                    let (code, detail) = map_tskv_error(&e);
                    Outcome::Fail(code, detail)
                }
            };
            (RequestKind::Delete, outcome)
        }
        Request::Stats => {
            let io_snap = shared.store.io().snapshot();
            let in_flight = shared.in_flight.load(Ordering::Acquire) as u64;
            let server = shared.stats.snapshot(in_flight);
            (
                RequestKind::Stats,
                Outcome::Reply(Response::Stats {
                    io: Box::new(io_snap),
                    server: Box::new(server),
                }),
            )
        }
        Request::FlushSeal { series, compact } => (
            RequestKind::Flush,
            execute_flush(shared, series, *compact).into(),
        ),
        Request::Subscribe {
            series,
            t_qs,
            t_qe,
            w,
        } => {
            let outcome = match shared.registry.subscribe(
                conn_id,
                queue,
                env.request_id,
                sub::SubSpec {
                    series,
                    t_qs: *t_qs,
                    t_qe: *t_qe,
                    w: *w,
                },
            ) {
                Ok(_sub_id) => Outcome::AckQueued,
                Err((code, detail)) => Outcome::Fail(code, detail),
            };
            (RequestKind::Query, outcome)
        }
        Request::Unsubscribe { sub_id } => {
            let outcome = match shared.registry.unsubscribe(conn_id, *sub_id) {
                Ok(()) => Outcome::Reply(Response::Unsubscribed),
                Err((code, detail)) => Outcome::Fail(code, detail),
            };
            (RequestKind::Query, outcome)
        }
    }
}

fn execute_write(shared: &Shared, entries: &[(String, Vec<tsfile::types::Point>)]) -> Execution {
    let mut batch = WriteBatch::new();
    for (series, points) in entries {
        batch.insert_many(series, points);
    }
    match shared.store.write_batch(&batch) {
        Ok(points) => Ok(Response::Written {
            points: points as u64,
        }),
        Err(e) => Err(map_tskv_error(&e)),
    }
}

fn execute_query(
    shared: &Shared,
    series: &str,
    op: Operator,
    t_qs: i64,
    t_qe: i64,
    w: u32,
) -> Execution {
    let snapshot = shared
        .store
        .snapshot(series)
        .map_err(|e| map_tskv_error(&e))?;
    let query = m4::M4Query::new(t_qs, t_qe, w as usize).map_err(|e| map_m4_error(&e))?;
    let result = match op {
        Operator::Udf => m4::M4Udf::new().execute(&snapshot, &query),
        Operator::Lsm => m4::M4Lsm::new().execute(&snapshot, &query),
    };
    match result {
        Ok(r) => Ok(Response::M4 { spans: r.spans }),
        Err(e) => Err(map_m4_error(&e)),
    }
}

fn execute_flush(shared: &Shared, series: &Option<String>, compact: bool) -> Execution {
    // Resolve once at the boundary, then sweep dense ids: the
    // all-series case never materializes a name list (with a
    // high-cardinality catalog that would be millions of Strings for a
    // sweep that touches only the handful of instantiated stores).
    let ids: Vec<tskv::SeriesId> = match series {
        Some(name) => vec![shared
            .store
            .series_id(name)
            .ok_or_else(|| map_tskv_error(&tskv::TsKvError::SeriesNotFound(name.clone())))?],
        None => (0..shared.store.series_count())
            .map(|i| tskv::SeriesId(i as u32))
            .collect(),
    };
    for &id in &ids {
        shared
            .store
            .flush_by_id(id)
            .map_err(|e| map_tskv_error(&e))?;
        if compact {
            shared
                .store
                .compact_by_id(id)
                .map_err(|e| map_tskv_error(&e))?;
        }
    }
    Ok(Response::Flushed {
        series_flushed: ids.len() as u32,
    })
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn deadline_uses_the_tighter_of_request_and_cap() {
        let ms = Duration::from_millis;
        // No deadline anywhere: never missed.
        assert!(!deadline_missed(ms(10_000), 0, 0));
        // Request deadline only.
        assert!(deadline_missed(ms(11), 10, 0));
        assert!(!deadline_missed(ms(9), 10, 0));
        // Server cap only.
        assert!(deadline_missed(ms(31), 0, 30));
        // Both: the tighter wins in each direction.
        assert!(deadline_missed(ms(11), 10, 30));
        assert!(deadline_missed(ms(11), 30, 10));
        assert!(!deadline_missed(ms(9), 10, 30));
    }

    #[test]
    fn duration_us_saturates() {
        assert_eq!(duration_us(Duration::from_micros(7)), 7);
        assert_eq!(duration_us(Duration::MAX), u64::MAX);
    }
}
