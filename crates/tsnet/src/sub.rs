//! Server-push M4 subscriptions: one shared incremental computation
//! per distinct dashboard, broadcast to every subscriber.
//!
//! ## Dedup model
//!
//! A subscription is keyed by `(series, t_qs, t_qe, w)` — the
//! [`DashKey`]. All subscribers with the same key attach to ONE
//! [`Dashboard`]: a single [`StreamingM4`] advanced once per ingest
//! event, regardless of how many clients watch it. Attaching to an
//! existing dashboard bumps `subs_deduped`; with N subscribers over K
//! distinct dashboards the counter reads `N − K` and exactly K
//! streaming computations exist.
//!
//! ## Data flow
//!
//! ```text
//! tskv writers ──ChangeEvent──▶ dispatcher thread (one per registry)
//!                                 │ ingest / invalidate per dashboard
//!                                 │ repair dirty spans (M4Lsm, no locks)
//!                                 │ diff vs last broadcast (bit-exact)
//!                                 ▼
//!                            enqueue_push ──▶ per-connection outbound
//!                                             queue ──▶ writer thread
//!                                                        ──▶ socket
//! ```
//!
//! The dispatcher owns every streaming state; workers and writer
//! threads never touch them. Span deltas are **state-carrying** (span
//! index → new authoritative representation), so coalescing pending
//! deltas for the same span is lossless: the newer value simply
//! replaces the older one (`deltas_coalesced`).
//!
//! ## Slow-consumer policy
//!
//! Each connection's outbound queue holds at most
//! [`crate::server::ServerConfig::push_queue_spans`] pending span
//! entries (coalesce-then-drop, never unbounded memory). A
//! subscription that pushes the queue past the budget has its pending
//! deltas dropped and replaced by a full-state **resync**: the writer
//! emits a [`Push::Lagged`] frame, then a `SpanDelta` with
//! `resync = true` carrying every span (`resyncs` counts these). A
//! resync entry is bounded by the dashboard's own `w`.
//!
//! ## Correctness contract
//!
//! Change events may arrive out of apply order (they are published
//! after the engine's shard lock is released). The streaming layer
//! absorbs this: replayed or reordered input either applies
//! idempotently on the in-order path or marks the span dirty, and
//! dirty spans are repaired from an authoritative [`m4::M4Lsm`]
//! recompute over a fresh snapshot. Lost events (bounded channel
//! overflow) set the receiver's `missed` flag, which invalidates every
//! dashboard. Consequence: at any quiesce point — no events pending,
//! no dirty spans, queues drained — every subscriber's replayed state
//! is byte-identical to a fresh M4 recompute. [`SubRegistry::quiesce`]
//! waits for exactly that point.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use m4::stream::StreamingM4;
use m4::{M4Query, SpanRepr};
use parking_lot::Mutex;
use tskv::{ChangeEvent, ChangeObserver, ChangeRx, SeriesId, TsKv};

use crate::error::ErrorCode;
use crate::stats::ServerStats;
use crate::wire::{self, Push, Response, ResponseEnvelope};

/// Upper bound on change events folded into one dispatcher step, so a
/// hot writer cannot starve repair/broadcast indefinitely.
const MAX_EVENT_BATCH: usize = 256;

/// Registry tuning, copied out of the server config at start.
#[derive(Debug, Clone)]
pub struct SubSettings {
    /// Registry-wide cap on concurrently active subscriptions.
    pub max_subscriptions: usize,
    /// Per-connection pending span-entry budget before a slow consumer
    /// is lagged into a resync.
    pub push_queue_spans: usize,
    /// Depth of the engine change-notification channel.
    pub change_queue_depth: usize,
    /// Dispatcher poll interval (ms): bounds how long a freshly created
    /// dashboard waits for its initial fill when no events arrive.
    pub dispatch_interval_ms: u64,
}

/// A subscription request as it arrives off the wire: the dashboard
/// identity a subscriber wants to attach to.
#[derive(Debug, Clone, Copy)]
pub struct SubSpec<'a> {
    pub series: &'a str,
    pub t_qs: i64,
    pub t_qe: i64,
    pub w: u32,
}

/// Identity of one shared dashboard computation. The series is the
/// interned [`SeriesId`], resolved once at subscribe time: everything
/// past the wire boundary — event matching, repair snapshots, dashboard
/// dedup — runs on dense ids, never on name strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DashKey {
    series: SeriesId,
    t_qs: i64,
    t_qe: i64,
    w: usize,
}

/// One shared computation: the live streaming state, the last
/// representation broadcast to subscribers, and who is attached.
struct Dashboard {
    stream: StreamingM4,
    /// Spans as of the last broadcast — the diff baseline, and the
    /// exact state a newly attached subscriber receives in its SubAck.
    last: Vec<Option<SpanRepr>>,
    subs: Vec<u64>,
}

struct SubMeta {
    key: DashKey,
    conn_id: u64,
}

#[derive(Default)]
struct Inner {
    next_sub_id: u64,
    dashboards: HashMap<DashKey, Dashboard>,
    subs: HashMap<u64, SubMeta>,
    conns: HashMap<u64, Arc<OutboundQueue>>,
}

/// Pending (coalesced) span deltas for one subscription on one
/// connection. Keyed by span index, so the map can never exceed the
/// dashboard's `w` entries.
#[derive(Default)]
struct PendingSub {
    deltas: BTreeMap<u32, Option<SpanRepr>>,
    /// Next frame carries full state and the resync flag.
    resync: bool,
    /// Emit a `Lagged` frame before the next delta frame.
    lagged: bool,
}

#[derive(Default)]
struct QueueState {
    /// Encoded response frames, written before push frames so a
    /// `SubAck` always precedes the deltas that follow it.
    responses: VecDeque<Vec<u8>>,
    /// Out-of-band push frames (subscription failures).
    urgent: Vec<Push>,
    /// Coalesced span deltas per subscription.
    pending: BTreeMap<u64, PendingSub>,
    /// Per-subscription push frame sequence numbers.
    seqs: HashMap<u64, u64>,
    /// No further enqueues; the writer drains what is left and exits.
    closed: bool,
    /// The socket write side failed; the connection is unusable.
    dead: bool,
    /// The writer thread is mid-write (frames taken but not yet on the
    /// socket) — quiesce must wait for this to clear.
    writing: bool,
}

/// The single outbound channel of one connection: every frame the
/// server sends — responses and pushes alike — goes through this
/// bounded queue to the connection's writer thread, so no socket write
/// ever happens under a lock and response frames never interleave
/// mid-frame with push frames.
pub struct OutboundQueue {
    // std primitives here, not the parking_lot shim: the writer thread
    // needs a condvar, which the shim does not provide. Poisoning is
    // absorbed the same way the shim does it.
    state: StdMutex<QueueState>,
    cv: Condvar,
    max_spans: usize,
}

impl OutboundQueue {
    pub fn new(max_spans: usize) -> OutboundQueue {
        OutboundQueue {
            state: StdMutex::new(QueueState::default()),
            cv: Condvar::new(),
            max_spans: max_spans.max(1),
        }
    }

    /// Acquire the queue state, absorbing poison (a panicking writer
    /// must not wedge every other thread of the connection).
    fn lock_state(&self) -> StdMutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queue one encoded response frame. Returns `false` when the
    /// connection is closing or its socket already failed.
    pub fn push_response(&self, frame: Vec<u8>) -> bool {
        let mut q = self.lock_state();
        if q.closed || q.dead {
            return false;
        }
        q.responses.push_back(frame);
        self.cv.notify_one();
        true
    }

    /// Whether the writer thread hit a socket error.
    pub fn is_dead(&self) -> bool {
        self.lock_state().dead
    }

    /// Stop accepting frames; the writer drains the backlog and exits.
    pub fn close(&self) {
        let mut q = self.lock_state();
        q.closed = true;
        self.cv.notify_all();
    }

    fn has_work(q: &QueueState) -> bool {
        !q.responses.is_empty() || !q.urgent.is_empty() || !q.pending.is_empty()
    }

    fn idle_for_quiesce(&self) -> bool {
        let q = self.lock_state();
        q.urgent.is_empty() && q.pending.is_empty() && !q.writing
    }
}

/// Bit-exact span equality: `-0.0 != 0.0` and NaN payloads compare by
/// representation, matching the replay-equals-recompute contract.
fn same_span(a: &Option<SpanRepr>, b: &Option<SpanRepr>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            let p = |l: &tsfile::types::Point, r: &tsfile::types::Point| {
                l.t == r.t && l.v.to_bits() == r.v.to_bits()
            };
            p(&x.first, &y.first)
                && p(&x.last, &y.last)
                && p(&x.bottom, &y.bottom)
                && p(&x.top, &y.top)
        }
        _ => false,
    }
}

/// The body of one connection's writer thread: drain the outbound
/// queue and put frames on the socket, responses first. Exits when the
/// queue is closed and drained, or on the first write error.
pub fn writer_loop(queue: &OutboundQueue, stream: &mut TcpStream, stats: &ServerStats) {
    loop {
        let (responses, frames) = {
            let mut q = queue.lock_state();
            while !OutboundQueue::has_work(&q) {
                if q.closed {
                    return;
                }
                q = queue
                    .cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            let responses: Vec<Vec<u8>> = q.responses.drain(..).collect();
            let mut frames: Vec<Push> = std::mem::take(&mut q.urgent);
            let pending = std::mem::take(&mut q.pending);
            for (sub_id, p) in pending {
                if p.lagged {
                    frames.push(Push::Lagged { sub_id });
                }
                if p.deltas.is_empty() && !p.resync {
                    continue;
                }
                let seq = q.seqs.entry(sub_id).or_insert(0);
                let this_seq = *seq;
                *seq = seq.wrapping_add(1);
                frames.push(Push::SpanDelta {
                    sub_id,
                    seq: this_seq,
                    resync: p.resync,
                    deltas: p.deltas.into_iter().collect(),
                });
            }
            q.writing = true;
            (responses, frames)
        };
        let mut ok = true;
        for bytes in &responses {
            if wire::write_frame(stream, bytes).is_err() {
                ok = false;
                break;
            }
            stats.add_bytes_out(bytes.len() as u64);
        }
        if ok {
            for f in &frames {
                let Ok(bytes) = wire::encode_push(f) else {
                    continue;
                };
                if wire::write_frame(stream, &bytes).is_err() {
                    ok = false;
                    break;
                }
                stats.add_bytes_out(bytes.len() as u64);
                if matches!(f, Push::SpanDelta { .. }) {
                    stats.record_delta_pushed();
                }
            }
        }
        let mut q = queue.lock_state();
        q.writing = false;
        if !ok {
            q.dead = true;
            q.closed = true;
            q.responses.clear();
            q.urgent.clear();
            q.pending.clear();
            return;
        }
        if q.closed && !OutboundQueue::has_work(&q) {
            return;
        }
    }
}

/// The subscription registry: dedups subscriptions into shared
/// dashboards, owns the dispatcher thread that advances them, and
/// fans span deltas out to connection queues.
pub struct SubRegistry {
    store: Arc<TsKv>,
    stats: Arc<ServerStats>,
    settings: SubSettings,
    inner: Mutex<Inner>,
    shutting_down: AtomicBool,
    /// Idle latch for the dispatcher: with zero dashboards it parks
    /// here instead of polling the change channel every
    /// `dispatch_interval_ms`. `subscribe` and `stop` set the flag
    /// under the mutex and notify, so a park can never miss a wake.
    /// std primitives, not the parking_lot shim — it has no condvar.
    wake: StdMutex<bool>,
    wake_cv: Condvar,
    /// Dispatcher iterations that actually polled/stepped — stays flat
    /// while the registry is idle (the busy-wake regression signal).
    dispatch_wakeups: AtomicU64,
    /// Change events the dispatcher has fully applied.
    processed: AtomicU64,
    /// Shared view of the change channel's published-event counter and
    /// missed flag; `quiesce` compares it against `processed`.
    progress: ChangeObserver,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl SubRegistry {
    /// Subscribe to engine changes and start the dispatcher thread.
    pub fn start(
        store: Arc<TsKv>,
        stats: Arc<ServerStats>,
        settings: SubSettings,
    ) -> Arc<SubRegistry> {
        let rx = store.subscribe_changes(settings.change_queue_depth.max(1));
        let progress = rx.observer();
        let reg = Arc::new(SubRegistry {
            store,
            stats,
            settings,
            inner: Mutex::new(Inner::default()),
            shutting_down: AtomicBool::new(false),
            wake: StdMutex::new(false),
            wake_cv: Condvar::new(),
            dispatch_wakeups: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            progress,
            dispatcher: Mutex::new(None),
        });
        let loop_reg = Arc::clone(&reg);
        let handle = thread::Builder::new()
            .name("tsnet-subdispatch".to_string())
            .spawn(move || dispatch_loop(&loop_reg, &rx));
        if let Ok(handle) = handle {
            let mut slot = reg.dispatcher.lock();
            *slot = Some(handle);
        }
        reg
    }

    /// Stop the dispatcher and forget all connections. Connection
    /// queues themselves are closed by their owning workers.
    pub fn stop(&self) {
        self.shutting_down.store(true, Ordering::Release);
        // A dispatcher parked on the idle latch must see the shutdown.
        self.wake_dispatcher();
        let handle = {
            let mut slot = self.dispatcher.lock();
            slot.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
        let mut inner = self.inner.lock();
        inner.dashboards.clear();
        inner.subs.clear();
        inner.conns.clear();
    }

    /// Number of live shared computations (distinct dashboards).
    pub fn active_dashboards(&self) -> usize {
        self.inner.lock().dashboards.len()
    }

    /// Number of live subscriptions.
    pub fn active_subscriptions(&self) -> usize {
        self.inner.lock().subs.len()
    }

    /// Dispatcher iterations that polled the change channel. A registry
    /// with no dashboards parks instead of polling, so this stays flat
    /// while idle.
    pub fn dispatch_wakeups(&self) -> u64 {
        self.dispatch_wakeups.load(Ordering::Acquire)
    }

    /// Register a subscription for `conn_id` and queue its `SubAck`.
    ///
    /// The ack is enqueued under the registry lock, *before* any delta
    /// for the new id can be broadcast, so the subscriber's baseline
    /// plus its delta stream always composes to the dashboard state.
    pub fn subscribe(
        &self,
        conn_id: u64,
        queue: &Arc<OutboundQueue>,
        request_id: u64,
        spec: SubSpec<'_>,
    ) -> std::result::Result<u64, (ErrorCode, String)> {
        let SubSpec {
            series,
            t_qs,
            t_qe,
            w,
        } = spec;
        let query = M4Query::new(t_qs, t_qe, w as usize)
            .map_err(|e| (ErrorCode::InvalidRequest, e.to_string()))?;
        // Resolve the name to its interned id exactly once, here at the
        // wire boundary; the series must exist up front, and later
        // engine failures surface as SubError pushes.
        let sid = self.store.series_id(series).ok_or_else(|| {
            (
                ErrorCode::SeriesNotFound,
                format!("series {series:?} not found"),
            )
        })?;
        let mut inner = self.inner.lock();
        if inner.subs.len() >= self.settings.max_subscriptions.max(1) {
            return Err((
                ErrorCode::Subscription,
                format!(
                    "subscription limit of {} reached",
                    self.settings.max_subscriptions
                ),
            ));
        }
        let key = DashKey {
            series: sid,
            t_qs,
            t_qe,
            w: w as usize,
        };
        let sub_id = inner.next_sub_id;
        inner.next_sub_id = inner.next_sub_id.wrapping_add(1);
        let baseline = match inner.dashboards.get_mut(&key) {
            Some(d) => {
                // Attaching to an existing shared computation: this is
                // the dedup the whole module exists for.
                d.subs.push(sub_id);
                self.stats.record_sub_deduped();
                d.last.clone()
            }
            None => {
                // A fresh dashboard starts all-dirty with an all-empty
                // baseline: the initial fill rides the normal
                // repair-and-broadcast path, no special seeding.
                let mut stream = StreamingM4::new(query);
                stream.invalidate_all();
                let last = vec![None; w as usize];
                inner.dashboards.insert(
                    key,
                    Dashboard {
                        stream,
                        last: last.clone(),
                        subs: vec![sub_id],
                    },
                );
                last
            }
        };
        inner.subs.insert(sub_id, SubMeta { key, conn_id });
        inner
            .conns
            .entry(conn_id)
            .or_insert_with(|| Arc::clone(queue));
        let ack = ResponseEnvelope {
            request_id,
            body: Response::SubAck {
                sub_id,
                spans: baseline,
            },
        };
        let frame = wire::encode_response(&ack)
            .map_err(|e| (ErrorCode::Engine, format!("encode SubAck: {e}")))?;
        queue.push_response(frame);
        self.stats.record_sub_attached();
        drop(inner);
        // Outside the registry lock (the parked dispatcher re-checks
        // dashboard counts, which takes it): hand the dispatcher its
        // wake-up so the initial fill starts promptly.
        self.wake_dispatcher();
        Ok(sub_id)
    }

    /// Wake a dispatcher parked on the idle latch. Sets the flag under
    /// the latch mutex so the park predicate can never miss it.
    fn wake_dispatcher(&self) {
        let mut wake = self.wake.lock().unwrap_or_else(PoisonError::into_inner);
        *wake = true;
        self.wake_cv.notify_all();
    }

    /// Detach one subscription owned by `conn_id`.
    pub fn unsubscribe(
        &self,
        conn_id: u64,
        sub_id: u64,
    ) -> std::result::Result<(), (ErrorCode, String)> {
        let mut inner = self.inner.lock();
        match inner.subs.get(&sub_id) {
            Some(meta) if meta.conn_id == conn_id => {}
            _ => {
                return Err((
                    ErrorCode::Subscription,
                    format!("subscription {sub_id} is not active on this connection"),
                ));
            }
        }
        self.detach(&mut inner, sub_id, true);
        Ok(())
    }

    /// Drop every subscription of a disconnecting connection.
    pub fn drop_connection(&self, conn_id: u64) {
        let mut inner = self.inner.lock();
        let subs: Vec<u64> = inner
            .subs
            .iter()
            .filter(|(_, m)| m.conn_id == conn_id)
            .map(|(id, _)| *id)
            .collect();
        for sub_id in subs {
            self.detach(&mut inner, sub_id, false);
        }
        inner.conns.remove(&conn_id);
    }

    /// Remove one subscription: dashboard membership, metadata, and
    /// (when the connection is staying) its queued pending deltas. The
    /// last detach tears the shared dashboard down.
    fn detach(&self, inner: &mut Inner, sub_id: u64, clear_queue: bool) {
        let Some(meta) = inner.subs.remove(&sub_id) else {
            return;
        };
        if let Some(d) = inner.dashboards.get_mut(&meta.key) {
            d.subs.retain(|s| *s != sub_id);
            if d.subs.is_empty() {
                inner.dashboards.remove(&meta.key);
            }
        }
        if clear_queue {
            if let Some(queue) = inner.conns.get(&meta.conn_id) {
                let mut q = queue.lock_state();
                q.pending.remove(&sub_id);
                q.seqs.remove(&sub_id);
            }
        }
        self.stats.record_sub_detached();
    }

    /// One dispatcher step: fold a batch of change events into every
    /// affected dashboard, repair dirty spans from an authoritative
    /// recompute, then broadcast the diffs.
    fn step(&self, events: &[ChangeEvent], lost: bool) {
        // Phase 1 (registry lock, no I/O): apply events, list repairs.
        let repairs: Vec<(DashKey, M4Query)> = {
            let mut inner = self.inner.lock();
            if lost {
                // The channel dropped events; nothing incremental can
                // be trusted any more.
                for d in inner.dashboards.values_mut() {
                    d.stream.invalidate_all();
                }
            }
            for ev in events {
                let series = ev.series();
                match ev {
                    ChangeEvent::Write { points, .. } => {
                        for (key, d) in inner.dashboards.iter_mut() {
                            if key.series == series {
                                d.stream.ingest_all(points);
                            }
                        }
                    }
                    ChangeEvent::Delete { start, end, .. } => {
                        for (key, d) in inner.dashboards.iter_mut() {
                            if key.series == series {
                                d.stream.invalidate_range(*start, *end);
                            }
                        }
                    }
                    // Flushes move data between tiers without changing
                    // logical content; the representation is unaffected.
                    ChangeEvent::Flush { .. } => {}
                }
            }
            inner
                .dashboards
                .iter()
                .filter(|(_, d)| !d.stream.is_exact())
                .map(|(k, d)| (*k, *d.stream.query()))
                .collect()
        };
        // Nothing to repair AND nothing ingested: no state can have
        // changed, skip the broadcast. (In-order ingest keeps a stream
        // exact without any repair — it still must broadcast.)
        if repairs.is_empty() && events.is_empty() && !lost {
            return;
        }
        // Phase 2 (no locks): authoritative recompute per dirty
        // dashboard. The snapshot is taken after the events above were
        // applied, so it covers everything they described.
        let mut outcomes = Vec::with_capacity(repairs.len());
        for (key, query) in repairs {
            let result = self
                .store
                .snapshot_by_id(key.series)
                .map_err(|e| e.to_string())
                .and_then(|snap| {
                    m4::M4Lsm::new()
                        .execute(&snap, &query)
                        .map_err(|e| e.to_string())
                });
            outcomes.push((key, result));
        }
        // Phase 3 (registry lock, no I/O): install repairs, broadcast.
        let mut inner = self.inner.lock();
        for (key, outcome) in outcomes {
            match outcome {
                Ok(result) => {
                    if let Some(d) = inner.dashboards.get_mut(&key) {
                        for i in d.stream.dirty_spans() {
                            d.stream.repair(i, result.spans.get(i).copied().flatten());
                        }
                        // The snapshot covered everything up to the
                        // largest timestamp it returned; replayed
                        // notifications at or below it must take the
                        // dirty path, not the in-order fast path.
                        let covered = result.spans.iter().flatten().map(|s| s.last.t).max();
                        if let Some(t) = covered {
                            d.stream.observe_watermark(t);
                        }
                    }
                }
                Err(detail) => self.fail_dashboard(&mut inner, &key, &detail),
            }
        }
        self.broadcast_delta(&mut inner);
    }

    /// The computation behind a dashboard failed: push a `SubError` to
    /// every attached subscriber and tear the dashboard down.
    fn fail_dashboard(&self, inner: &mut Inner, key: &DashKey, detail: &str) {
        let Some(d) = inner.dashboards.remove(key) else {
            return;
        };
        for sub_id in d.subs {
            let Some(meta) = inner.subs.remove(&sub_id) else {
                continue;
            };
            if let Some(queue) = inner.conns.get(&meta.conn_id) {
                let mut q = queue.lock_state();
                if !q.closed {
                    q.pending.remove(&sub_id);
                    q.urgent.push(Push::SubError {
                        sub_id,
                        code: ErrorCode::Subscription,
                        detail: detail.to_string(),
                    });
                    queue.cv.notify_one();
                }
            }
            self.stats.record_sub_detached();
        }
    }

    /// Diff every exact dashboard against its last broadcast state and
    /// enqueue the changed spans to each attached subscriber.
    ///
    /// On the L5 no-blocking path: only lock acquisition, map updates
    /// and condvar notifies happen here — socket writes belong to the
    /// writer threads.
    fn broadcast_delta(&self, inner: &mut Inner) {
        let Inner {
            dashboards,
            subs,
            conns,
            ..
        } = inner;
        for d in dashboards.values_mut() {
            if !d.stream.is_exact() {
                continue;
            }
            let current = d.stream.current().spans;
            let mut deltas: Vec<(u32, Option<SpanRepr>)> = Vec::new();
            for (i, span) in current.iter().enumerate() {
                let changed = match d.last.get(i) {
                    Some(old) => !same_span(span, old),
                    None => true,
                };
                if changed {
                    deltas.push((i as u32, *span));
                }
            }
            if deltas.is_empty() {
                continue;
            }
            d.last = current;
            for sub_id in &d.subs {
                let Some(meta) = subs.get(sub_id) else {
                    continue;
                };
                let Some(queue) = conns.get(&meta.conn_id) else {
                    continue;
                };
                self.enqueue_push(queue, *sub_id, &deltas, &d.last);
            }
        }
    }

    /// Merge `deltas` into one subscription's pending set on its
    /// connection queue. Lossless coalescing (state-carrying deltas);
    /// past the queue budget the subscription is lagged into a
    /// full-state resync. Never blocks: lock, map updates, notify.
    fn enqueue_push(
        &self,
        queue: &OutboundQueue,
        sub_id: u64,
        deltas: &[(u32, Option<SpanRepr>)],
        full: &[Option<SpanRepr>],
    ) {
        let mut q = queue.lock_state();
        if q.closed || q.dead {
            return;
        }
        let already_resync = match q.pending.get_mut(&sub_id) {
            Some(p) if p.resync => {
                // Already resyncing: fold the newest full state in.
                p.deltas.clear();
                for (i, s) in full.iter().enumerate() {
                    p.deltas.insert(i as u32, *s);
                }
                true
            }
            _ => false,
        };
        if !already_resync {
            let entry = q.pending.entry(sub_id).or_default();
            for (i, s) in deltas {
                if entry.deltas.insert(*i, *s).is_some() {
                    self.stats.record_delta_coalesced();
                }
            }
            let total: usize = q.pending.values().map(|p| p.deltas.len()).sum();
            if total > queue.max_spans {
                if let Some(p) = q.pending.get_mut(&sub_id) {
                    self.stats.record_resync();
                    p.resync = true;
                    p.lagged = true;
                    p.deltas.clear();
                    for (i, s) in full.iter().enumerate() {
                        p.deltas.insert(i as u32, *s);
                    }
                }
            }
        }
        queue.cv.notify_one();
    }

    /// Block until the subscription plane is fully settled: every
    /// published change event processed, every dashboard exact, every
    /// queue drained and off the socket. At that point each
    /// subscriber's replayed state equals a fresh recompute,
    /// byte-for-byte. Returns `false` on timeout.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let pause = Duration::from_millis(self.settings.dispatch_interval_ms.max(1));
        let mut stable = 0u32;
        loop {
            // `sent` is bumped by publishers *before* the event is
            // enqueued, so sent == processed really means "nothing in
            // flight" (a transient overcount is merely conservative).
            let caught_up = self.progress.sent() == self.processed.load(Ordering::Acquire)
                && !self.progress.missed();
            let settled = {
                let inner = self.inner.lock();
                // With zero dashboards the dispatcher is parked and
                // events stay queued on purpose — there is no
                // subscriber state to settle, so only the outbound
                // queues matter.
                inner.conns.values().all(|q| q.idle_for_quiesce())
                    && (inner.dashboards.is_empty()
                        || (caught_up && inner.dashboards.values().all(|d| d.stream.is_exact())))
            };
            if settled {
                stable += 1;
                if stable >= 3 {
                    return true;
                }
            } else {
                stable = 0;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(pause);
        }
    }
}

/// Dispatcher thread body: batch change events, advance the shared
/// dashboards, track the caught-up flag quiesce relies on.
///
/// With zero dashboards there is nothing any event could update, so
/// the thread parks on the registry's idle latch instead of waking
/// every `dispatch_interval_ms` — an idle server burns no dispatcher
/// CPU no matter how small the interval. Events published while parked
/// stay queued; if the bounded channel overflows meanwhile, the missed
/// flag invalidates every dashboard on resume, which is a no-op for
/// the freshly created (all-dirty) dashboards that triggered the wake.
fn dispatch_loop(reg: &Arc<SubRegistry>, rx: &ChangeRx) {
    let poll = Duration::from_millis(reg.settings.dispatch_interval_ms.max(1));
    while !reg.shutting_down.load(Ordering::Acquire) {
        if reg.active_dashboards() == 0 {
            let mut wake = reg.wake.lock().unwrap_or_else(PoisonError::into_inner);
            while !*wake && !reg.shutting_down.load(Ordering::Acquire) {
                // The timeout is only a safety net; real wakes come
                // from the subscribe/stop notifies.
                wake = reg
                    .wake_cv
                    .wait_timeout(wake, Duration::from_secs(1))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            *wake = false;
            continue;
        }
        reg.dispatch_wakeups.fetch_add(1, Ordering::AcqRel);
        let mut events = Vec::new();
        match rx.recv_timeout(poll) {
            Ok(Some(ev)) => events.push(ev),
            Ok(None) => {}
            Err(_) => {
                // Engine gone (channel closed): no more events will
                // ever arrive, but newly created dashboards still need
                // their initial repair pass. Do not busy-spin.
                thread::sleep(poll);
            }
        }
        while events.len() < MAX_EVENT_BATCH {
            match rx.try_recv() {
                Some(ev) => events.push(ev),
                None => break,
            }
        }
        let lost = rx.take_missed();
        reg.step(&events, lost);
        reg.processed
            .fetch_add(events.len() as u64, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use std::path::PathBuf;
    use tsfile::types::Point;

    fn spec(series: &str, t_qs: i64, t_qe: i64, w: u32) -> SubSpec<'_> {
        SubSpec {
            series,
            t_qs,
            t_qe,
            w,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "tsnet-sub-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ))
    }

    fn open_store(tag: &str) -> Arc<TsKv> {
        Arc::new(TsKv::open(scratch(tag), tskv::config::EngineConfig::default()).unwrap())
    }

    fn span(seed: i64) -> SpanRepr {
        SpanRepr {
            first: Point::new(seed, 1.0),
            last: Point::new(seed + 1, 2.0),
            bottom: Point::new(seed + 2, -3.0),
            top: Point::new(seed + 3, 4.0),
        }
    }

    #[test]
    fn same_span_is_bit_exact() {
        assert!(same_span(&None, &None));
        assert!(same_span(&Some(span(1)), &Some(span(1))));
        assert!(!same_span(&Some(span(1)), &Some(span(2))));
        assert!(!same_span(&Some(span(1)), &None));
        // -0.0 vs 0.0 differ by bits, so they count as a change.
        let a = SpanRepr {
            first: Point::new(0, 0.0),
            last: Point::new(0, 0.0),
            bottom: Point::new(0, 0.0),
            top: Point::new(0, 0.0),
        };
        let mut b = a;
        b.top = Point::new(0, -0.0);
        assert!(!same_span(&Some(a), &Some(b)));
    }

    #[test]
    fn queue_coalesces_and_resyncs_past_budget() {
        let stats = Arc::new(ServerStats::default());
        let store = open_store("coalesce");
        let reg = SubRegistry::start(
            Arc::clone(&store),
            Arc::clone(&stats),
            SubSettings {
                max_subscriptions: 16,
                push_queue_spans: 3,
                change_queue_depth: 16,
                dispatch_interval_ms: 5,
            },
        );
        let queue = Arc::new(OutboundQueue::new(3));
        let full = vec![Some(span(0)), Some(span(10)), None, Some(span(30))];
        // Two updates to the same span coalesce to one pending entry.
        reg.enqueue_push(&queue, 7, &[(1, Some(span(10)))], &full);
        reg.enqueue_push(&queue, 7, &[(1, Some(span(11)))], &full);
        {
            let q = queue.lock_state();
            let p = q.pending.get(&7).unwrap();
            assert_eq!(p.deltas.len(), 1);
            assert!(!p.resync);
        }
        assert_eq!(stats.snapshot(0).deltas_coalesced, 1);
        // Pushing past the 3-span budget converts to a lagged resync
        // carrying the full state.
        reg.enqueue_push(
            &queue,
            7,
            &[(0, Some(span(0))), (2, None), (3, Some(span(30)))],
            &full,
        );
        {
            let q = queue.lock_state();
            let p = q.pending.get(&7).unwrap();
            assert!(p.resync && p.lagged);
            assert_eq!(p.deltas.len(), full.len());
        }
        assert_eq!(stats.snapshot(0).resyncs, 1);
        reg.stop();
    }

    #[test]
    fn subscribe_dedups_and_unsubscribe_tears_down() {
        let stats = Arc::new(ServerStats::default());
        let store = open_store("dedup");
        store
            .insert_batch("s", &[Point::new(1, 1.0), Point::new(2, 2.0)])
            .unwrap();
        let reg = SubRegistry::start(
            Arc::clone(&store),
            Arc::clone(&stats),
            SubSettings {
                max_subscriptions: 16,
                push_queue_spans: 64,
                change_queue_depth: 16,
                dispatch_interval_ms: 5,
            },
        );
        let queue = Arc::new(OutboundQueue::new(64));
        let a = reg.subscribe(1, &queue, 10, spec("s", 0, 100, 4)).unwrap();
        let b = reg.subscribe(1, &queue, 11, spec("s", 0, 100, 4)).unwrap();
        let c = reg.subscribe(1, &queue, 12, spec("s", 0, 200, 4)).unwrap();
        assert_eq!(reg.active_dashboards(), 2);
        assert_eq!(reg.active_subscriptions(), 3);
        assert_eq!(stats.snapshot(0).subs_deduped, 1);
        assert_eq!(stats.snapshot(0).subs_active, 3);
        // Acks were queued for all three.
        assert_eq!(queue.lock_state().responses.len(), 3);

        // Unknown id / wrong connection are typed failures.
        assert!(reg.unsubscribe(1, 999).is_err());
        assert!(reg.unsubscribe(2, a).is_err());

        reg.unsubscribe(1, a).unwrap();
        assert_eq!(reg.active_dashboards(), 2, "b still shares a's dashboard");
        reg.unsubscribe(1, b).unwrap();
        assert_eq!(
            reg.active_dashboards(),
            1,
            "last detach drops the dashboard"
        );
        reg.drop_connection(1);
        let _ = c;
        assert_eq!(reg.active_subscriptions(), 0);
        assert_eq!(reg.active_dashboards(), 0);
        assert_eq!(stats.snapshot(0).subs_active, 0);
        reg.stop();
    }

    #[test]
    fn subscribe_validates_query_and_series() {
        let stats = Arc::new(ServerStats::default());
        let store = open_store("validate");
        store.insert_batch("s", &[Point::new(1, 1.0)]).unwrap();
        let reg = SubRegistry::start(
            store,
            stats,
            SubSettings {
                max_subscriptions: 1,
                push_queue_spans: 64,
                change_queue_depth: 16,
                dispatch_interval_ms: 5,
            },
        );
        let queue = Arc::new(OutboundQueue::new(64));
        // Inverted range.
        let e = reg
            .subscribe(1, &queue, 0, spec("s", 100, 0, 4))
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::InvalidRequest);
        // Unknown series.
        let e = reg
            .subscribe(1, &queue, 0, spec("nope", 0, 100, 4))
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::SeriesNotFound);
        // Limit enforcement.
        reg.subscribe(1, &queue, 0, spec("s", 0, 100, 4)).unwrap();
        let e = reg
            .subscribe(1, &queue, 0, spec("s", 0, 100, 4))
            .unwrap_err();
        assert_eq!(e.0, ErrorCode::Subscription);
        reg.stop();
    }

    #[test]
    fn idle_dispatcher_parks_until_first_subscription() {
        let stats = Arc::new(ServerStats::default());
        let store = open_store("idlepark");
        store.insert_batch("s", &[Point::new(10, 1.0)]).unwrap();
        let reg = SubRegistry::start(
            Arc::clone(&store),
            stats,
            SubSettings {
                max_subscriptions: 16,
                push_queue_spans: 1024,
                change_queue_depth: 4,
                dispatch_interval_ms: 1,
            },
        );
        // No dashboards: at a 1ms poll interval an unparked dispatcher
        // would rack up ~hundreds of wakeups here. Parked, it takes
        // none (the latch's safety-net timeout is a full second).
        thread::sleep(Duration::from_millis(250));
        assert_eq!(reg.dispatch_wakeups(), 0, "dispatcher busy-woke while idle");
        // Ingest while parked must not wake it either — even past the
        // tiny channel depth (overflow just sets the missed flag).
        for t in 0..16 {
            store.insert_batch("s", &[Point::new(20 + t, 2.0)]).unwrap();
        }
        thread::sleep(Duration::from_millis(50));
        assert_eq!(reg.dispatch_wakeups(), 0, "ingest woke an idle dispatcher");
        // A quiesce with no subscribers settles immediately.
        assert!(reg.quiesce(Duration::from_secs(1)), "idle quiesce");
        // The first subscription wakes it and the dashboard fills to
        // the authoritative answer despite the overflowed channel.
        let queue = Arc::new(OutboundQueue::new(1024));
        let stop = Arc::new(AtomicBool::new(false));
        let drain_queue = Arc::clone(&queue);
        let drain_stop = Arc::clone(&stop);
        let drainer = thread::spawn(move || {
            while !drain_stop.load(Ordering::Acquire) {
                {
                    let mut q = drain_queue.lock_state();
                    q.responses.clear();
                    q.urgent.clear();
                    q.pending.clear();
                }
                thread::sleep(Duration::from_millis(1));
            }
        });
        reg.subscribe(1, &queue, 0, spec("s", 0, 100, 4)).unwrap();
        assert!(reg.quiesce(Duration::from_secs(5)), "fill after wake");
        assert!(reg.dispatch_wakeups() > 0, "subscription failed to wake");
        {
            let inner = reg.inner.lock();
            let d = inner.dashboards.values().next().unwrap();
            assert!(d.stream.is_exact());
            let expected = m4::M4Lsm::new()
                .execute(
                    &store.snapshot("s").unwrap(),
                    &M4Query::new(0, 100, 4).unwrap(),
                )
                .unwrap();
            for (i, (got, want)) in d.last.iter().zip(expected.spans.iter()).enumerate() {
                assert!(same_span(got, want), "span {i} diverged");
            }
        }
        stop.store(true, Ordering::Release);
        drainer.join().unwrap();
        reg.stop();
    }

    #[test]
    fn dispatcher_fills_and_streams_a_dashboard() {
        let stats = Arc::new(ServerStats::default());
        let store = open_store("dispatch");
        store
            .insert_batch("s", &[Point::new(10, 1.0), Point::new(20, 2.0)])
            .unwrap();
        let reg = SubRegistry::start(
            Arc::clone(&store),
            Arc::clone(&stats),
            SubSettings {
                max_subscriptions: 16,
                push_queue_spans: 1024,
                change_queue_depth: 64,
                dispatch_interval_ms: 2,
            },
        );
        let queue = Arc::new(OutboundQueue::new(1024));
        // Quiesce requires every queue to drain onto its socket; there
        // is no socket in this unit test, so stand in for the writer
        // thread with a drainer that discards frames.
        let stop = Arc::new(AtomicBool::new(false));
        let drain_queue = Arc::clone(&queue);
        let drain_stop = Arc::clone(&stop);
        let drainer = thread::spawn(move || {
            while !drain_stop.load(Ordering::Acquire) {
                {
                    let mut q = drain_queue.lock_state();
                    q.responses.clear();
                    q.urgent.clear();
                    q.pending.clear();
                }
                thread::sleep(Duration::from_millis(1));
            }
        });
        let sub_id = reg.subscribe(1, &queue, 0, spec("s", 0, 100, 4)).unwrap();
        assert!(reg.quiesce(Duration::from_secs(5)), "initial fill quiesce");
        {
            let inner = reg.inner.lock();
            let d = inner.dashboards.values().next().unwrap();
            assert!(d.stream.is_exact());
            let expected = m4::M4Lsm::new()
                .execute(
                    &store.snapshot("s").unwrap(),
                    &M4Query::new(0, 100, 4).unwrap(),
                )
                .unwrap();
            for (i, (got, want)) in d.last.iter().zip(expected.spans.iter()).enumerate() {
                assert!(same_span(got, want), "span {i} diverged");
            }
        }
        let _ = sub_id;
        // Live ingest advances the shared stream and broadcasts again.
        store.insert_batch("s", &[Point::new(30, 9.0)]).unwrap();
        assert!(reg.quiesce(Duration::from_secs(5)), "ingest quiesce");
        {
            let inner = reg.inner.lock();
            let d = inner.dashboards.values().next().unwrap();
            let expected = m4::M4Lsm::new()
                .execute(
                    &store.snapshot("s").unwrap(),
                    &M4Query::new(0, 100, 4).unwrap(),
                )
                .unwrap();
            for (i, (got, want)) in d.last.iter().zip(expected.spans.iter()).enumerate() {
                assert!(same_span(got, want), "span {i} diverged after ingest");
            }
        }
        stop.store(true, Ordering::Release);
        drainer.join().unwrap();
        reg.stop();
    }
}
