//! Property test: the storage engine + MergeReader must agree with a
//! naive in-memory model (a `BTreeMap` replay of the same operations)
//! for every interleaving of inserts, flushes and deletes.
//!
//! This is the ground-truth oracle for Definition 2.7's merge function:
//! if this holds, any operator equivalent to `MergeReader` output is
//! correct with respect to the paper's semantics.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::collections::BTreeMap;

use proptest::prelude::*;
use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::readers::MergeReader;
use tskv::TsKv;

/// One step of a workload script.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of points (possibly out of order / overwriting).
    Insert(Vec<(i16, i8)>),
    /// Flush the memtable.
    Flush,
    /// Delete an inclusive range.
    Delete(i16, i16),
    /// Fully compact the sealed files.
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec((any::<i16>(), any::<i8>()), 1..40).prop_map(Op::Insert),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        2 => (any::<i16>(), 0i16..200).prop_map(|(s, len)| {
            let start = s;
            let end = s.saturating_add(len);
            Op::Delete(start, end)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_reader_matches_naive_model(
        ops in prop::collection::vec(op_strategy(), 1..25),
        chunk_size in 1usize..20,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tskv-prop-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: chunk_size,
                memtable_threshold: chunk_size * 3,
                ..Default::default()
            },
        )
        .unwrap();
        kv.create_series("s").unwrap();

        let mut model: BTreeMap<i64, f64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(batch) => {
                    let pts: Vec<Point> = batch
                        .iter()
                        .map(|&(t, v)| Point::new(i64::from(t), f64::from(v)))
                        .collect();
                    kv.insert_batch("s", &pts).unwrap();
                    for p in &pts {
                        model.insert(p.t, p.v);
                    }
                }
                Op::Flush => kv.flush("s").unwrap(),
                Op::Compact => {
                    kv.compact("s").unwrap();
                }
                Op::Delete(start, end) => {
                    kv.delete("s", i64::from(*start), i64::from(*end)).unwrap();
                    let doomed: Vec<i64> = model
                        .range(i64::from(*start)..=i64::from(*end))
                        .map(|(&t, _)| t)
                        .collect();
                    for t in doomed {
                        model.remove(&t);
                    }
                }
            }
        }

        let snap = kv.snapshot("s").unwrap();
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        let expected: Vec<Point> =
            model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
        prop_assert_eq!(&merged, &expected);

        // Crash-recovery path: reopen WITHOUT flushing — the WAL must
        // restore the memtable exactly.
        drop(kv);
        let kv2 = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: chunk_size,
                memtable_threshold: chunk_size * 3,
                ..Default::default()
            },
        )
        .unwrap();
        let snap2 = kv2.snapshot("s").unwrap();
        let merged2 = MergeReader::new(&snap2).collect_merged().unwrap();
        prop_assert_eq!(&merged2, &expected);

        // And again after a full flush + reopen (sealed-only recovery).
        kv2.flush_all().unwrap();
        drop(kv2);
        let kv3 = TsKv::open(
            &dir,
            EngineConfig { points_per_chunk: chunk_size, ..Default::default() },
        )
        .unwrap();
        let snap3 = kv3.snapshot("s").unwrap();
        let merged3 = MergeReader::new(&snap3).collect_merged().unwrap();
        prop_assert_eq!(&merged3, &expected);

        std::fs::remove_dir_all(&dir).ok();
    }
}
