//! v1 → v2 upgrade-on-compact: compacting a store that holds a
//! format-v1 file (monolithic single-page chunks) must produce a
//! format-v2 paged output with identical merged contents, and the
//! clean-page raw-copy fast path must never be attempted on v1 inputs
//! (they carry no page index to classify against, so every v1 chunk is
//! decoded and re-encoded).
//!
//! The fixture is the tsfile crate's `tests/fixtures/v1.tsfile`: 500
//! points `(t = i*100, v = (i % 17) as f64)` in two chunks of 250
//! (versions 1 and 2), produced by the v1 writer.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::indexing_slicing,
    clippy::panic
)]

use std::path::PathBuf;

use tsfile::format::{FORMAT_V1, FORMAT_V2};
use tsfile::types::Point;
use tsfile::TsFileReader;
use tskv::config::EngineConfig;
use tskv::readers::MergeReader;
use tskv::TsKv;

fn v1_fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../tsfile/tests/fixtures/v1.tsfile")
}

fn fixture_points() -> Vec<Point> {
    (0..500i64)
        .map(|i| Point::new(i * 100, (i % 17) as f64))
        .collect()
}

/// Lay out a store directory whose series `s` starts from the v1
/// fixture as its only sealed file. This deliberately uses the legacy
/// one-directory-per-series layout, so opening it exercises the
/// sharded-layout migration on top of the format upgrade.
fn seed_v1_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tskv-upgrade-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("s")).unwrap();
    std::fs::copy(v1_fixture(), dir.join("s").join("00000000.tsfile")).unwrap();
    dir
}

/// Every sealed data file across all storage shard directories.
fn sealed_paths(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let shard = entry.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for f in std::fs::read_dir(&shard).unwrap() {
            let p = f.unwrap().path();
            if p.extension().and_then(|e| e.to_str()) == Some("tsfile") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn compacting_a_v1_file_upgrades_it_to_paged_v2() -> Result<(), Box<dyn std::error::Error>> {
    let dir = seed_v1_store("pure");
    let kv = TsKv::open(&dir, EngineConfig::default())?;

    // Sanity: the store recovered the v1 file as-is.
    let before = sealed_paths(&dir);
    assert_eq!(before.len(), 1);
    assert_eq!(TsFileReader::open(&before[0])?.format_version(), FORMAT_V1);

    let report = kv.compact("s")?;

    // Regression pin: the raw-copy fast path must not fire on v1
    // inputs — no page index means no page can be proven clean.
    assert_eq!(report.pages_copied, 0, "v1 chunks must never be raw-copied");
    assert!(report.pages_recoded >= 2, "both v1 chunks re-encode");
    assert!(report.bytes_rewritten > 0);
    assert_eq!(report.files_removed, 1);

    // The replacement file is format v2 with a page index on every chunk.
    let after = sealed_paths(&dir);
    assert_eq!(after.len(), 1);
    let out = TsFileReader::open(&after[0])?;
    assert_eq!(out.format_version(), FORMAT_V2);
    assert!(out.chunk_metas().iter().all(|m| m.paged.is_some()));

    // Oracle equivalence: merged view unchanged by the upgrade.
    let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
    assert_eq!(merged, fixture_points());

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

#[test]
fn mixed_v1_v2_compaction_recodes_old_and_copies_clean_new(
) -> Result<(), Box<dyn std::error::Error>> {
    let dir = seed_v1_store("mixed");
    let config = EngineConfig {
        memtable_threshold: 100_000,
        points_per_chunk: 250,
        page_points: 50,
        ..EngineConfig::default()
    };
    let kv = TsKv::open(&dir, config)?;

    // Append a disjoint v2 file strictly after the fixture's range
    // (fixture ends at t = 49_900), so its pages classify clean.
    let newer: Vec<Point> = (0..500i64)
        .map(|i| Point::new(60_000 + i * 10, i as f64))
        .collect();
    kv.insert_batch("s", &newer)?;
    kv.flush("s")?;

    let report = kv.compact("s")?;
    assert_eq!(report.files_removed, 2);
    assert!(report.pages_recoded >= 2, "the v1 chunks must re-encode");
    assert!(
        report.pages_copied > 0,
        "the disjoint v2 pages must copy raw"
    );

    let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
    let mut expect = fixture_points();
    expect.extend_from_slice(&newer);
    assert_eq!(merged, expect);

    // Restart: the upgraded store recovers cleanly and reads the same.
    drop(kv);
    let kv = TsKv::open(&dir, EngineConfig::default())?;
    let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
    assert_eq!(merged, expect);

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
