//! Recovery round-trips for the sharded, id-keyed storage layout.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Property: crash recovery is exact at any shard count.** A
//!    random multi-series workload (inserts, flushes, deletes spread
//!    over several series) followed by a crash (drop without flush)
//!    and a reopen must restore every series bit-for-bit — the
//!    per-record series tags in the shared shard WALs, the catalog
//!    log, and the `s<id>-` file naming all have to cooperate. The
//!    reopen deliberately configures a *different* shard count: the
//!    `SHARDS` meta file pinned at first open must win.
//!
//! 2. **Fixture: the legacy layout migrates in place.** A committed
//!    pre-sharding store (one directory per series, per-series
//!    `series.wal`) opens under the current engine; contents, deletes
//!    and registered-but-empty series all survive, the legacy
//!    directories are gone afterwards, and a second open does not
//!    re-migrate.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::readers::MergeReader;
use tskv::TsKv;

/// Series names of the workload; index = popularity rank.
const SERIES: [&str; 5] = ["a.one", "a.two", "b.one", "b.two", "c.cold"];

/// One step of a multi-series workload script.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch into series `0`: points as (t, v) pairs.
    Insert(usize, Vec<(i16, i8)>),
    /// Flush one series' memtable.
    Flush(usize),
    /// Delete an inclusive range from one series.
    Delete(usize, i16, i16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let sid = 0usize..SERIES.len();
    prop_oneof![
        4 => (sid.clone(), prop::collection::vec((any::<i16>(), any::<i8>()), 1..30))
            .prop_map(|(s, b)| Op::Insert(s, b)),
        1 => sid.clone().prop_map(Op::Flush),
        2 => (sid, any::<i16>(), 0i16..200).prop_map(|(s, lo, len)| {
            Op::Delete(s, lo, lo.saturating_add(len))
        }),
    ]
}

fn config(shards: usize) -> EngineConfig {
    EngineConfig {
        points_per_chunk: 7,
        memtable_threshold: 20,
        storage_shards: shards,
        ..Default::default()
    }
}

fn merged(kv: &TsKv, name: &str) -> Vec<Point> {
    let snap = kv.snapshot(name).unwrap();
    MergeReader::new(&snap).collect_merged().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_recovery_is_exact(
        ops in prop::collection::vec(op_strategy(), 1..30),
        shards in 1usize..5,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tskv-shrec-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(&dir, config(shards)).unwrap();
        let ids: Vec<_> = SERIES
            .iter()
            .map(|n| kv.create_series(n).unwrap())
            .collect();

        let mut model: Vec<BTreeMap<i64, f64>> = vec![BTreeMap::new(); SERIES.len()];
        for op in &ops {
            match op {
                Op::Insert(s, batch) => {
                    let pts: Vec<Point> = batch
                        .iter()
                        .map(|&(t, v)| Point::new(i64::from(t), f64::from(v)))
                        .collect();
                    kv.insert_batch_by_id(ids[*s], &pts).unwrap();
                    for p in &pts {
                        model[*s].insert(p.t, p.v);
                    }
                }
                Op::Flush(s) => kv.flush(SERIES[*s]).unwrap(),
                Op::Delete(s, lo, hi) => {
                    kv.delete(SERIES[*s], i64::from(*lo), i64::from(*hi)).unwrap();
                    let doomed: Vec<i64> = model[*s]
                        .range(i64::from(*lo)..=i64::from(*hi))
                        .map(|(&t, _)| t)
                        .collect();
                    for t in doomed {
                        model[*s].remove(&t);
                    }
                }
            }
        }
        let expected: Vec<Vec<Point>> = model
            .iter()
            .map(|m| m.iter().map(|(&t, &v)| Point::new(t, v)).collect())
            .collect();
        for (s, name) in SERIES.iter().enumerate() {
            prop_assert_eq!(&merged(&kv, name), &expected[s]);
        }

        // Crash: no flush, no clean shutdown. The reopen asks for a
        // different shard count — the SHARDS meta pin must override it.
        drop(kv);
        let kv2 = TsKv::open(&dir, config(shards + 2)).unwrap();
        prop_assert_eq!(kv2.series_count(), SERIES.len());
        for (s, name) in SERIES.iter().enumerate() {
            // Interned ids survive recovery verbatim.
            prop_assert_eq!(kv2.series_id(name), Some(ids[s]));
            prop_assert_eq!(&merged(&kv2, name), &expected[s]);
        }

        // Sealed-only recovery: flush everything, reopen, re-compare.
        kv2.flush_all().unwrap();
        drop(kv2);
        let kv3 = TsKv::open(&dir, config(shards)).unwrap();
        for (s, name) in SERIES.iter().enumerate() {
            prop_assert_eq!(&merged(&kv3, name), &expected[s]);
        }
        drop(kv3);
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// The committed fixture: a store written by the pre-sharding engine.
///
/// * `empty.sensor_1/` — registered series, empty WAL, no data.
/// * `hum/` — five unflushed points (t = 0,10,…,40, v = −t/10) living
///   only in the legacy per-series WAL.
/// * `temp/` — eight flushed points in `00000000.tsfile`, a delete of
///   \[2, 3\] in `00000000.mods`, and four unflushed WAL points;
///   merged: t ∈ 0..12 \ {2, 3} with v = 1.5·t.
fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/legacy-v1")
}

fn expected_temp() -> Vec<Point> {
    (0..12i64)
        .filter(|t| *t != 2 && *t != 3)
        .map(|t| Point::new(t, 1.5 * t as f64))
        .collect()
}

fn expected_hum() -> Vec<Point> {
    (0..5i64).map(|i| Point::new(i * 10, -(i as f64))).collect()
}

#[test]
fn legacy_fixture_migrates_in_place() {
    let dir = std::env::temp_dir().join(format!("tskv-legacy-fix-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    copy_dir(&fixture_dir(), &dir);
    assert!(
        !dir.join("SHARDS").exists(),
        "fixture must be pre-migration"
    );
    assert!(dir.join("temp/series.wal").exists());

    let kv = TsKv::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(kv.series_count(), 3);
    // Sorted interning: ids are deterministic.
    let empty_id = kv.series_id("empty.sensor_1").unwrap();
    let hum_id = kv.series_id("hum").unwrap();
    let temp_id = kv.series_id("temp").unwrap();
    assert!(empty_id < hum_id && hum_id < temp_id);
    assert_eq!(merged(&kv, "empty.sensor_1"), Vec::new());
    assert_eq!(merged(&kv, "hum"), expected_hum());
    assert_eq!(merged(&kv, "temp"), expected_temp());
    let snap = kv.snapshot("temp").unwrap();
    assert_eq!(snap.deletes().len(), 1, "the mods entry survives migration");

    // The legacy directories are gone; the sharded layout replaced them.
    assert!(dir.join("SHARDS").exists());
    for legacy in ["empty.sensor_1", "hum", "temp"] {
        assert!(!dir.join(legacy).exists(), "{legacy}/ must be removed");
    }

    // Second open: no re-migration, same ids, same data.
    drop(kv);
    let before = std::fs::read_to_string(dir.join("SHARDS")).unwrap();
    let kv = TsKv::open(&dir, EngineConfig::default()).unwrap();
    assert_eq!(std::fs::read_to_string(dir.join("SHARDS")).unwrap(), before);
    assert_eq!(kv.series_id("hum"), Some(hum_id));
    assert_eq!(merged(&kv, "hum"), expected_hum());
    assert_eq!(merged(&kv, "temp"), expected_temp());

    // The recovered store is live, not read-only archaeology: new
    // writes land in the sharded layout next to migrated data.
    kv.insert_batch("temp", &[Point::new(100, 5.0)]).unwrap();
    kv.flush("temp").unwrap();
    let mut want = expected_temp();
    want.push(Point::new(100, 5.0));
    assert_eq!(merged(&kv, "temp"), want);

    drop(kv);
    std::fs::remove_dir_all(&dir).ok();
}
