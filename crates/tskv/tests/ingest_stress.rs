//! Write-path stress: racing batched writers against the sequential
//! oracle, and the background compaction scheduler against manual
//! compaction.
//!
//! The sharded write path (lock-striped shards, `write_batch` group
//! commit, WAL batching) must be invisible to readers: N threads
//! draining a shared job queue of per-series batches must leave the
//! store byte-for-byte identical to one thread applying the same
//! batches in sequence — across flushes, reopen (WAL replay), and the
//! background compaction scheduler.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::readers::MergeReader;
use tskv::{TsKv, WriteBatch};

const SERIES: usize = 16;
const WRITERS: usize = 4;
const BATCHES_PER_SERIES: usize = 12;
const BATCH_POINTS: usize = 37;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "tskv-ingest-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Deterministic per-series batch: unique timestamps within a series,
/// values encoding (series, index) so any misrouted point is caught.
fn batch(series: usize, batch_idx: usize) -> Vec<Point> {
    (0..BATCH_POINTS)
        .map(|i| {
            let t = (batch_idx * BATCH_POINTS + i) as i64 * 10 + series as i64;
            Point::new(t, (series * 1_000_000 + batch_idx * 1_000 + i) as f64)
        })
        .collect()
}

fn small_store_config() -> EngineConfig {
    EngineConfig {
        points_per_chunk: 16,
        memtable_threshold: 64,
        enable_read_cache: false,
        read_threads: 1,
        write_shards: 8,
        ..Default::default()
    }
}

fn merged(kv: &TsKv, name: &str) -> Vec<Point> {
    let snap = kv.snapshot(name).unwrap();
    MergeReader::new(&snap).collect_merged().unwrap()
}

#[test]
fn racing_writers_match_sequential_oracle() {
    // Shared job queue: (series, batch) pairs interleaved round-robin,
    // claimed by atomic cursor — the same discipline the bench ingest
    // experiment and m4::pool use.
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for b in 0..BATCHES_PER_SERIES {
        for s in 0..SERIES {
            jobs.push((s, b));
        }
    }
    let names: Vec<String> = (0..SERIES).map(|s| format!("s{s}")).collect();

    let racy_dir = scratch("racy");
    let kv = TsKv::open(&racy_dir, small_store_config()).unwrap();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(s, b)) = jobs.get(i) else { break };
                let mut wb = WriteBatch::new();
                wb.insert_many(&names[s], &batch(s, b));
                kv.write_batch(&wb).unwrap();
            });
        }
    });

    // Oracle: one thread, same batches, in sequence.
    let oracle_dir = scratch("oracle");
    let oracle = TsKv::open(&oracle_dir, small_store_config()).unwrap();
    for &(s, b) in &jobs {
        oracle.insert_batch(&names[s], &batch(s, b)).unwrap();
    }

    for name in &names {
        assert_eq!(
            merged(&kv, name),
            merged(&oracle, name),
            "series {name} diverged"
        );
        assert_eq!(merged(&kv, name).len(), BATCHES_PER_SERIES * BATCH_POINTS);
    }

    // Reopen: group-committed WAL frames must replay to the same state.
    drop(kv);
    let kv = TsKv::open(&racy_dir, small_store_config()).unwrap();
    for name in &names {
        assert_eq!(
            merged(&kv, name),
            merged(&oracle, name),
            "series {name} lost on replay"
        );
    }

    drop(kv);
    drop(oracle);
    std::fs::remove_dir_all(&racy_dir).ok();
    std::fs::remove_dir_all(&oracle_dir).ok();
}

#[test]
fn background_compaction_bounds_sealed_files_without_changing_results() {
    let dir = scratch("sched");
    let threshold = 3usize;
    let config = EngineConfig {
        points_per_chunk: 8,
        memtable_threshold: 16,
        enable_read_cache: false,
        read_threads: 1,
        compaction_auto: true,
        compaction_threshold: threshold,
        compaction_interval_ms: 5,
        ..Default::default()
    };
    let kv = TsKv::open(&dir, config.clone()).unwrap();
    assert!(kv.compaction_scheduler_running());

    // Interleave inserts, explicit flushes and deletes while the
    // scheduler compacts underneath; reads must always equal the model.
    let mut model: BTreeMap<i64, f64> = BTreeMap::new();
    for round in 0..30i64 {
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(round * 20 + i, (round * 100 + i) as f64))
            .collect();
        kv.insert_batch("s", &pts).unwrap();
        for p in &pts {
            model.insert(p.t, p.v);
        }
        kv.flush("s").unwrap();
        if round % 7 == 3 {
            let (start, end) = (round * 20 - 15, round * 20 - 5);
            kv.delete("s", start, end).unwrap();
            let doomed: Vec<i64> = model.range(start..=end).map(|(&t, _)| t).collect();
            for t in doomed {
                model.remove(&t);
            }
        }
        let expected: Vec<Point> = model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
        assert_eq!(
            merged(&kv, "s"),
            expected,
            "round {round} diverged mid-compaction"
        );
    }

    // The scheduler must drive the sealed-file count down to the
    // threshold (30 flushes happened; without it the count sits at 30
    // minus whatever raced through).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let sealed = kv.sealed_file_count("s").unwrap();
        if sealed <= threshold {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "scheduler failed to bound sealed files: {sealed} > {threshold}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let snap = kv.io().snapshot();
    assert!(
        snap.compactions_scheduled > 0,
        "scheduler never ran: {snap:?}"
    );
    assert!(
        snap.compactions_completed > 0,
        "scheduler never completed: {snap:?}"
    );

    // Zero divergence after the dust settles, and again after reopen.
    let expected: Vec<Point> = model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
    assert_eq!(merged(&kv, "s"), expected);
    drop(kv);
    let kv = TsKv::open(&dir, config).unwrap();
    assert_eq!(merged(&kv, "s"), expected, "state diverged across reopen");

    drop(kv);
    std::fs::remove_dir_all(&dir).ok();
}
