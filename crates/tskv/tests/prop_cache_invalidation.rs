//! Property test for the cross-query decoded-chunk LRU: under any
//! interleaving of inserts, flushes, deletes and compactions,
//!
//! 1. reads served through the cache always equal the naive in-memory
//!    model (the cache never serves stale or wrong bytes),
//! 2. after a compaction, the cache holds no entry keyed by a retired
//!    file's handle id (invalidation is complete — checked with no
//!    concurrent readers, so there are no benign stragglers), and
//! 3. the cache never exceeds its configured byte capacity.
//!
//! Handle ids are process-unique and never reused, so (2) is a memory
//! hygiene property; (1) is the correctness property.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use proptest::prelude::*;
use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::readers::MergeReader;
use tskv::TsKv;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<(i16, i8)>),
    Flush,
    Delete(i16, i16),
    Compact,
    /// Full-range read through the cache (populates + bumps recency).
    Read,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec((any::<i16>(), any::<i8>()), 1..40).prop_map(Op::Insert),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        2 => Just(Op::Read),
        2 => (any::<i16>(), 0i16..200).prop_map(|(s, len)| {
            Op::Delete(s, s.saturating_add(len))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lru_never_serves_retired_files(
        ops in prop::collection::vec(op_strategy(), 1..25),
        chunk_size in 1usize..20,
        // Small capacities force evictions mid-script.
        capacity_kib in 1u64..64,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tskv-cacheprop-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: chunk_size,
                memtable_threshold: chunk_size * 3,
                cache_capacity_bytes: capacity_kib * 1024,
                read_threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        kv.create_series("s").unwrap();
        let cache = kv.cache().expect("cache enabled by default").clone();

        let mut model: BTreeMap<i64, f64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(batch) => {
                    let pts: Vec<Point> = batch
                        .iter()
                        .map(|&(t, v)| Point::new(i64::from(t), f64::from(v)))
                        .collect();
                    kv.insert_batch("s", &pts).unwrap();
                    for p in &pts {
                        model.insert(p.t, p.v);
                    }
                }
                Op::Flush => kv.flush("s").unwrap(),
                Op::Compact => {
                    kv.compact("s").unwrap();
                    // No snapshot is outstanding here, so invalidation
                    // must be complete: every cached file id belongs to
                    // a file the post-compaction snapshot still serves.
                    let live: BTreeSet<u64> =
                        kv.snapshot("s").unwrap().file_handle_ids().into_iter().collect();
                    for id in cache.file_ids() {
                        prop_assert!(
                            live.contains(&id),
                            "cache holds retired file id {id}; live = {live:?}"
                        );
                    }
                }
                Op::Delete(start, end) => {
                    kv.delete("s", i64::from(*start), i64::from(*end)).unwrap();
                    let doomed: Vec<i64> = model
                        .range(i64::from(*start)..=i64::from(*end))
                        .map(|(&t, _)| t)
                        .collect();
                    for t in doomed {
                        model.remove(&t);
                    }
                }
                Op::Read => {
                    let snap = kv.snapshot("s").unwrap();
                    let merged = MergeReader::new(&snap).collect_merged().unwrap();
                    let expected: Vec<Point> =
                        model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
                    prop_assert_eq!(&merged, &expected, "cached read diverges from model");
                }
            }
            prop_assert!(
                cache.bytes() <= cache.capacity_bytes(),
                "cache over capacity: {} > {}",
                cache.bytes(),
                cache.capacity_bytes()
            );
        }

        // Final read: warm or cold, the answer must match the model.
        let snap = kv.snapshot("s").unwrap();
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        let expected: Vec<Point> = model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
        prop_assert_eq!(&merged, &expected);

        std::fs::remove_dir_all(&dir).ok();
    }
}
