//! Property test for the background compaction scheduler: under any
//! interleaving of inserts, flushes and deletes, a store whose
//! compactions are driven by the background scheduler answers every
//! read identically to (a) the naive in-memory model and (b) a twin
//! store running the same script with *manual* `kv.compact` calls —
//! scheduling is pure mechanism, never policy over query results.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::collections::BTreeMap;

use proptest::prelude::*;
use tsfile::types::Point;
use tskv::config::EngineConfig;
use tskv::readers::MergeReader;
use tskv::{CompactionPolicyKind, TsKv};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<(i16, i8)>),
    Flush,
    Delete(i16, i16),
    /// Full-range read, compared on both stores against the model.
    Read,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => prop::collection::vec((any::<i16>(), any::<i8>()), 1..40).prop_map(Op::Insert),
        2 => Just(Op::Flush),
        2 => Just(Op::Read),
        2 => (any::<i16>(), 0i16..200).prop_map(|(s, len)| {
            Op::Delete(s, s.saturating_add(len))
        }),
    ]
}

fn merged(kv: &TsKv) -> Vec<Point> {
    let snap = kv.snapshot("s").unwrap();
    MergeReader::new(&snap).collect_merged().unwrap()
}

/// The scheduler consults the configured policy, so the property runs
/// under every selection policy — the merge run a policy elects (or
/// declines) must never show through query results.
fn policy_strategy() -> impl Strategy<Value = CompactionPolicyKind> {
    prop_oneof![
        Just(CompactionPolicyKind::Full),
        Just(CompactionPolicyKind::SizeTiered),
        Just(CompactionPolicyKind::Leveled),
        Just(CompactionPolicyKind::Overlap),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn background_compaction_never_changes_query_results(
        ops in prop::collection::vec(op_strategy(), 1..25),
        chunk_size in 1usize..16,
        policy in policy_strategy(),
        clean_copy in any::<bool>(),
    ) {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let auto_dir = std::env::temp_dir().join(format!(
            "tskv-schedprop-auto-{}-{stamp:x}",
            std::process::id()
        ));
        let manual_dir = std::env::temp_dir().join(format!(
            "tskv-schedprop-man-{}-{stamp:x}",
            std::process::id()
        ));
        let base = EngineConfig {
            points_per_chunk: chunk_size,
            memtable_threshold: chunk_size * 2,
            enable_read_cache: false,
            read_threads: 1,
            ..Default::default()
        };
        // Twin A: scheduler on, aggressive cadence so compactions land
        // mid-script. Twin B: scheduler off, compacted by hand after
        // every flush.
        let auto = TsKv::open(
            &auto_dir,
            EngineConfig {
                compaction_auto: true,
                compaction_threshold: 2,
                compaction_interval_ms: 1,
                compaction_policy: policy,
                compaction_clean_page_copy: clean_copy,
                ..base.clone()
            },
        )
        .unwrap();
        let manual = TsKv::open(&manual_dir, base).unwrap();
        prop_assert!(auto.compaction_scheduler_running());
        prop_assert!(!manual.compaction_scheduler_running());
        auto.create_series("s").unwrap();
        manual.create_series("s").unwrap();

        let mut model: BTreeMap<i64, f64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(batch) => {
                    let pts: Vec<Point> = batch
                        .iter()
                        .map(|&(t, v)| Point::new(i64::from(t), f64::from(v)))
                        .collect();
                    auto.insert_batch("s", &pts).unwrap();
                    manual.insert_batch("s", &pts).unwrap();
                    for p in &pts {
                        model.insert(p.t, p.v);
                    }
                }
                Op::Flush => {
                    auto.flush("s").unwrap();
                    manual.flush("s").unwrap();
                    manual.compact("s").unwrap();
                }
                Op::Delete(start, end) => {
                    auto.delete("s", i64::from(*start), i64::from(*end)).unwrap();
                    manual.delete("s", i64::from(*start), i64::from(*end)).unwrap();
                    let doomed: Vec<i64> = model
                        .range(i64::from(*start)..=i64::from(*end))
                        .map(|(&t, _)| t)
                        .collect();
                    for t in doomed {
                        model.remove(&t);
                    }
                }
                Op::Read => {
                    let expected: Vec<Point> =
                        model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
                    prop_assert_eq!(&merged(&auto), &expected, "scheduled store diverged");
                    prop_assert_eq!(&merged(&manual), &expected, "manual store diverged");
                }
            }
        }

        // Final read on both twins, whatever the scheduler got to.
        let expected: Vec<Point> = model.iter().map(|(&t, &v)| Point::new(t, v)).collect();
        prop_assert_eq!(&merged(&auto), &expected);
        prop_assert_eq!(&merged(&manual), &expected);

        drop(auto);
        drop(manual);
        std::fs::remove_dir_all(&auto_dir).ok();
        std::fs::remove_dir_all(&manual_dir).ok();
    }
}
