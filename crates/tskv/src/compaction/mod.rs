//! Page-aware, policy-driven compaction.
//!
//! The paper measures with compaction *disabled* (Table 4:
//! `NO_COMPACTION`) because overlapping chunks and pending deletes are
//! exactly the hard cases M4-LSM handles; a production store still
//! needs compaction to bound read amplification. This subsystem keeps
//! the write amplification of doing so low, in two layers:
//!
//! * **Selection** ([`policy`]) — a pluggable [`CompactionPolicy`]
//!   picks *which* contiguous (in version order) run of a series'
//!   sealed files to merge: everything ([`policy::FullPolicy`], the
//!   default and the seed behavior), a tier of similar-sized files
//!   ([`policy::SizeTieredPolicy`]), a bounded fold of the oldest
//!   files ([`policy::LeveledPolicy`]), or only runs whose time ranges
//!   actually overlap ([`policy::OverlapPolicy`]). Manual
//!   [`crate::TsKv::compact`] keeps full-range semantics; the
//!   background scheduler and [`crate::TsKv::compact_policy`] consult
//!   the configured policy.
//! * **Rewrite avoidance** ([`plan`] + [`execute`]) — footer metadata
//!   classifies each input page as *clean* (overlapping no other input
//!   chunk and no newer delete) or *dirty*. Clean pages are copied
//!   byte-for-byte — CRC-revalidated, never decoded, their statistics
//!   carried into the new footer — while only dirty pages flow through
//!   decode → k-way merge → re-encode. On append-mostly workloads most
//!   bytes take the copy path, which is the write-amplification win
//!   the `repro --exp compaction` grid quantifies.
//!
//! Every output chunk carries the **maximum input chunk version**
//! (inputs are contiguous in version order, so the subset-max version
//! preserves ordering against everything outside the run), and the
//! engine keeps each series' file list version-ordered across partial
//! merges — recovery re-sorts by minimum chunk version, not file id.
//! After a *full* compaction with no concurrent writes the store holds
//! only latest points: chunk overlap is zero and no delete entries
//! remain.
//!
//! [`CompactionPolicy`]: policy::CompactionPolicy

pub mod execute;
pub mod plan;
pub mod policy;

pub use policy::{CompactionPolicy, CompactionPolicyKind, FileView};

/// Outcome of one compaction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Old sealed files unlinked (the input generation).
    pub files_removed: usize,
    /// Chunks read during the merge.
    pub chunks_merged: usize,
    /// Live points written to the new file (0 ⇒ everything was deleted
    /// and no output file exists). Counts copied and re-encoded points
    /// alike.
    pub points_written: usize,
    /// Delete entries applied and dropped.
    pub deletes_applied: usize,
    /// Clean input pages copied byte-for-byte, never decoded.
    pub pages_copied: u64,
    /// Input pages decoded and re-encoded (a v1 monolithic chunk
    /// counts as one page).
    pub pages_recoded: u64,
    /// Input chunk-body bytes read.
    pub bytes_read: u64,
    /// Output bytes produced by the re-encode path. Copied bytes are
    /// excluded: they are precisely the write amplification avoided.
    pub bytes_rewritten: u64,
}

impl CompactionReport {
    pub(crate) fn empty() -> Self {
        CompactionReport {
            files_removed: 0,
            chunks_merged: 0,
            points_written: 0,
            deletes_applied: 0,
            pages_copied: 0,
            pages_recoded: 0,
            bytes_read: 0,
            bytes_rewritten: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::readers::MergeReader;
    use crate::TsKv;
    use tsfile::types::Point;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn fresh(name: &str) -> crate::Result<(std::path::PathBuf, TsKv)> {
        let dir = std::env::temp_dir().join(format!("tskv-compact-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 50,
                memtable_threshold: 200,
                ..Default::default()
            },
        )?;
        Ok((dir, kv))
    }

    #[test]
    fn compaction_preserves_merged_series() -> TestResult {
        let (dir, kv) = fresh("preserve")?;
        for t in 0..1_000i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        for t in 300..700i64 {
            kv.insert("s", Point::new(t, 2.0))?; // overwrites
        }
        kv.flush_all()?;
        kv.delete("s", 100, 149)?;
        kv.delete("s", 650, 800)?;

        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        let snap = kv.snapshot("s")?;
        let after = MergeReader::new(&snap).collect_merged()?;

        assert_eq!(
            before, after,
            "compaction must not change the logical series"
        );
        assert!(report.files_removed >= 2);
        assert_eq!(report.points_written, before.len());
        assert_eq!(report.deletes_applied, 2);
        assert!(report.bytes_read > 0);
        assert!(snap.deletes().is_empty(), "tombstones are gone");
        // No chunk may overlap another.
        let chunks = snap.chunks();
        for (i, a) in chunks.iter().enumerate() {
            for b in chunks.iter().skip(i + 1) {
                assert!(!a.time_range().overlaps(&b.time_range()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compaction_keeps_memtable_untouched() -> TestResult {
        let (dir, kv) = fresh("memtable")?;
        for t in 0..400i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // Buffered-only points.
        for t in 400..450i64 {
            kv.insert("s", Point::new(t, 5.0))?;
        }
        kv.compact("s")?;
        assert_eq!(kv.unflushed_points("s")?, 50);
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 450);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compacting_fully_deleted_series_removes_files() -> TestResult {
        let (dir, kv) = fresh("wipe")?;
        for t in 0..300i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", -10, 10_000)?;
        let report = kv.compact("s")?;
        assert_eq!(report.points_written, 0);
        assert_eq!(
            report.pages_copied, 0,
            "a delete over everything leaves nothing clean"
        );
        let snap = kv.snapshot("s")?;
        assert!(snap.chunks().is_empty());
        assert!(MergeReader::new(&snap).collect_merged()?.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compacting_empty_series_is_noop() -> TestResult {
        let (dir, kv) = fresh("noop")?;
        kv.create_series("s")?;
        let report = kv.compact("s")?;
        assert_eq!(report, CompactionReport::empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn old_snapshot_survives_compaction() -> TestResult {
        let (dir, kv) = fresh("snapshot")?;
        for t in 0..500i64 {
            kv.insert("s", Point::new(t, 3.0))?;
        }
        kv.flush_all()?;
        let old_snap = kv.snapshot("s")?;
        kv.delete("s", 0, 100)?;
        kv.compact("s")?;
        // The pre-compaction snapshot still reads its (unlinked) files.
        let merged = MergeReader::new(&old_snap).collect_merged()?;
        assert_eq!(merged.len(), 500);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn recovery_after_compaction() -> TestResult {
        let (dir, kv) = fresh("recover")?;
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 0, 99)?;
        kv.compact("s")?;
        drop(kv);
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 50,
                memtable_threshold: 200,
                ..Default::default()
            },
        )?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 500);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    /// Disjoint flushed files: every page is clean, so the whole merge
    /// is byte copies — zero bytes re-encoded — yet the logical series
    /// is untouched.
    #[test]
    fn append_only_compaction_copies_every_page() -> TestResult {
        let (dir, kv) = fresh("cleancopy")?;
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, t as f64))?;
        }
        kv.flush_all()?; // files at 200-point boundaries, disjoint
        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        assert_eq!(report.files_removed, 3);
        assert!(report.pages_copied > 0, "{report:?}");
        assert_eq!(report.pages_recoded, 0, "{report:?}");
        assert_eq!(report.bytes_rewritten, 0, "{report:?}");
        assert_eq!(report.points_written, 600);
        let snap = kv.snapshot("s")?;
        assert_eq!(MergeReader::new(&snap).collect_merged()?, before);
        // Copied chunks keep their paged structure in the new file.
        assert!(snap.chunks().iter().all(|c| c.paged().is_some()));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    /// The full-rewrite twin (`compaction_clean_page_copy: false`)
    /// recodes everything and still produces the same logical series.
    #[test]
    fn clean_copy_off_is_a_full_rewrite() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-compact-twin-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 50,
                memtable_threshold: 200,
                compaction_clean_page_copy: false,
                ..Default::default()
            },
        )?;
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, t as f64))?;
        }
        kv.flush_all()?;
        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        assert_eq!(report.pages_copied, 0, "{report:?}");
        assert!(report.pages_recoded > 0, "{report:?}");
        assert!(report.bytes_rewritten > 0, "{report:?}");
        assert_eq!(
            MergeReader::new(&kv.snapshot("s")?).collect_merged()?,
            before
        );
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    /// Mixed workload: overwritten ranges recode, untouched ranges
    /// copy, and both end up in one correct file.
    #[test]
    fn partial_overlap_mixes_copy_and_recode() -> TestResult {
        let (dir, kv) = fresh("mixed")?;
        for t in 0..1_000i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // Overwrite a narrow window: only pages overlapping [400, 480)
        // (plus the overwriting file's own pages) should recode.
        for t in 400..480i64 {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        kv.flush_all()?;
        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        assert!(report.pages_copied > 0, "{report:?}");
        assert!(report.pages_recoded > 0, "{report:?}");
        assert!(
            report.bytes_rewritten > 0 && report.bytes_rewritten < report.bytes_read,
            "{report:?}"
        );
        let snap = kv.snapshot("s")?;
        let after = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(before, after);
        let chunks = snap.chunks();
        for (i, a) in chunks.iter().enumerate() {
            for b in chunks.iter().skip(i + 1) {
                assert!(!a.time_range().overlaps(&b.time_range()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    /// A chunk sitting wholly inside the time gap between two clean
    /// pages of another chunk ("gap dweller") must split the raw run —
    /// otherwise the copied chunk and the recoded one would overlap.
    #[test]
    fn gap_dweller_splits_the_raw_run() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-compact-gap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 1000,
                page_points: 10,
                memtable_threshold: 100_000,
                ..Default::default()
            },
        )?;
        // File 1: two 10-point pages with a hole at t in 100..200.
        for t in (0..100i64).chain(200..300i64).step_by(10) {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush("s")?;
        // File 2: lives entirely inside the hole — overlaps neither page.
        for t in (110..190i64).step_by(10) {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        kv.flush("s")?;
        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        assert!(report.pages_copied > 0, "{report:?}");
        let snap = kv.snapshot("s")?;
        assert_eq!(MergeReader::new(&snap).collect_merged()?, before);
        let chunks = snap.chunks();
        assert!(chunks.len() >= 2, "the gap must split the output");
        for (i, a) in chunks.iter().enumerate() {
            for b in chunks.iter().skip(i + 1) {
                assert!(
                    !a.time_range().overlaps(&b.time_range()),
                    "{:?} overlaps {:?}",
                    a.time_range(),
                    b.time_range()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    /// Deletes dirty exactly the pages they overlap; untouched pages
    /// still copy.
    #[test]
    fn delete_dirties_only_overlapped_pages() -> TestResult {
        let (dir, kv) = fresh("deldirty")?;
        for t in 0..1_000i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 440, 460)?;
        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        assert!(report.pages_copied > 0, "{report:?}");
        assert!(report.pages_recoded > 0, "{report:?}");
        let snap = kv.snapshot("s")?;
        assert!(snap.deletes().is_empty());
        assert_eq!(MergeReader::new(&snap).collect_merged()?, before);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
