//! Clean/dirty page classification for page-aware compaction.
//!
//! Given the metadata of a merge's input chunks (footer statistics
//! only — no chunk body is touched), classify every page as **clean**
//! (its bytes can move to the output file verbatim) or **dirty** (its
//! points must flow through decode → k-way merge → re-encode). A page
//! is clean iff:
//!
//! 1. its backing chunk is paged (format v2 — a v1 monolithic chunk
//!    has no per-page CRCs or statistics to carry, so it is always
//!    fully dirty),
//! 2. its time range overlaps **no other input chunk** (nothing to
//!    merge against: within its own chunk, pages are disjoint by
//!    format invariant), and
//! 3. no captured delete with a version newer than the chunk overlaps
//!    it (deletes at or below the chunk's version never apply to it).
//!
//! The classification is pure metadata arithmetic over what the shard
//! lock already holds in memory, so planning costs no I/O. Clean pages
//! are reported as **maximal runs of consecutive page indices** per
//! chunk — each run is one candidate raw output chunk, though the
//! execute layer may split a run further if merged dirty points land
//! in the time gap between two of its pages.

use std::ops::Range;

use tsfile::types::TimeRange;
use tsfile::ModEntry;

/// Metadata view of one input page.
#[derive(Debug, Clone, Copy)]
pub struct PageView {
    /// The page's `[FP.t, LP.t]` interval.
    pub range: TimeRange,
    /// Points in the page.
    pub count: u64,
}

/// Metadata view of one input chunk, in capture (= version) order.
#[derive(Debug, Clone)]
pub struct ChunkView {
    /// The chunk's version `κ`.
    pub version: u64,
    /// The chunk's `[FP.t, LP.t]` interval.
    pub range: TimeRange,
    /// Per-page views for a paged (v2) chunk; `None` for a v1
    /// monolithic chunk, which always recodes whole.
    pub pages: Option<Vec<PageView>>,
}

/// The classification outcome for one compaction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPlan {
    /// Per input chunk (parallel to the input slice): maximal runs of
    /// consecutive clean page indices, in page order.
    pub clean_runs: Vec<Vec<Range<usize>>>,
    /// Total clean pages across all chunks.
    pub pages_clean: u64,
    /// Total dirty pages across all chunks (an unpaged chunk counts as
    /// one dirty page).
    pub pages_dirty: u64,
}

impl CompactionPlan {
    /// A plan that recodes everything (the full-rewrite baseline).
    fn all_dirty(chunks: &[ChunkView]) -> Self {
        let pages_dirty = chunks
            .iter()
            .map(|c| c.pages.as_ref().map_or(1, Vec::len) as u64)
            .sum();
        CompactionPlan {
            clean_runs: vec![Vec::new(); chunks.len()],
            pages_clean: 0,
            pages_dirty,
        }
    }
}

/// Whether any delete newer than `version` overlaps `range`.
fn deleted_after(deletes: &[ModEntry], version: u64, range: TimeRange) -> bool {
    deletes
        .iter()
        .any(|d| d.version.0 > version && d.range.overlaps(&range))
}

/// Classify every page of every input chunk. `clean_copy` off yields
/// the all-dirty plan (`compaction_clean_page_copy = false`, the
/// benchmark's full-rewrite twin).
pub fn classify(chunks: &[ChunkView], deletes: &[ModEntry], clean_copy: bool) -> CompactionPlan {
    if !clean_copy {
        return CompactionPlan::all_dirty(chunks);
    }
    let mut clean_runs: Vec<Vec<Range<usize>>> = Vec::with_capacity(chunks.len());
    let mut pages_clean = 0u64;
    let mut pages_dirty = 0u64;
    for (i, chunk) in chunks.iter().enumerate() {
        let Some(pages) = &chunk.pages else {
            pages_dirty += 1;
            clean_runs.push(Vec::new());
            continue;
        };
        let mut runs: Vec<Range<usize>> = Vec::new();
        for (j, page) in pages.iter().enumerate() {
            let overlapped = chunks
                .iter()
                .enumerate()
                .any(|(k, other)| k != i && other.range.overlaps(&page.range));
            let clean = !overlapped && !deleted_after(deletes, chunk.version, page.range);
            if clean {
                pages_clean += 1;
                match runs.last_mut() {
                    Some(run) if run.end == j => run.end = j + 1,
                    _ => runs.push(j..j + 1),
                }
            } else {
                pages_dirty += 1;
            }
        }
        clean_runs.push(runs);
    }
    CompactionPlan {
        clean_runs,
        pages_clean,
        pages_dirty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsfile::types::Version;

    fn page(a: i64, b: i64) -> PageView {
        PageView {
            range: TimeRange::new(a, b),
            count: (b - a + 1) as u64,
        }
    }

    fn chunk(version: u64, pages: &[(i64, i64)]) -> ChunkView {
        let views: Vec<PageView> = pages.iter().map(|&(a, b)| page(a, b)).collect();
        let range = TimeRange::new(
            views.first().map_or(0, |p| p.range.start),
            views.last().map_or(0, |p| p.range.end),
        );
        ChunkView {
            version,
            range,
            pages: Some(views),
        }
    }

    fn v1_chunk(version: u64, a: i64, b: i64) -> ChunkView {
        ChunkView {
            version,
            range: TimeRange::new(a, b),
            pages: None,
        }
    }

    fn del(version: u64, a: i64, b: i64) -> ModEntry {
        ModEntry::new(Version(version), a, b)
    }

    #[test]
    fn disjoint_chunks_are_fully_clean() {
        let chunks = vec![
            chunk(1, &[(0, 9), (10, 19)]),
            chunk(2, &[(20, 29), (30, 39)]),
        ];
        let plan = classify(&chunks, &[], true);
        assert_eq!(plan.clean_runs, vec![vec![0..2], vec![0..2]]);
        assert_eq!(plan.pages_clean, 4);
        assert_eq!(plan.pages_dirty, 0);
    }

    #[test]
    fn overlap_dirties_only_touched_pages() {
        // Chunk 2 overlaps the tail of chunk 1: pages overlapping the
        // other chunk's range recode, the rest copy.
        let chunks = vec![
            chunk(1, &[(0, 9), (10, 19), (20, 29)]),
            chunk(2, &[(25, 34), (35, 44)]),
        ];
        let plan = classify(&chunks, &[], true);
        // Page (20,29) of chunk 1 overlaps chunk 2's [25,44]; both
        // pages of chunk 2... only (25,34) overlaps chunk 1's [0,29].
        assert_eq!(plan.clean_runs, vec![vec![0..2], vec![1..2]]);
        assert_eq!(plan.pages_clean, 3);
        assert_eq!(plan.pages_dirty, 2);
    }

    #[test]
    fn newer_delete_dirties_page_older_delete_does_not() {
        let chunks = vec![chunk(5, &[(0, 9), (10, 19), (20, 29)])];
        // Version 3 < 5: never applies to this chunk.
        let stale = [del(3, 10, 19)];
        assert_eq!(classify(&chunks, &stale, true).pages_clean, 3);
        // Version 7 > 5: the overlapped page recodes.
        let live = [del(7, 10, 19)];
        let plan = classify(&chunks, &live, true);
        assert_eq!(plan.clean_runs, vec![vec![0..1, 2..3]]);
        assert_eq!(plan.pages_clean, 2);
        assert_eq!(plan.pages_dirty, 1);
    }

    #[test]
    fn v1_chunks_never_copy() {
        let chunks = vec![v1_chunk(1, 0, 99), chunk(2, &[(100, 199)])];
        let plan = classify(&chunks, &[], true);
        assert_eq!(plan.clean_runs, vec![vec![], vec![0..1]]);
        assert_eq!(plan.pages_clean, 1);
        assert_eq!(plan.pages_dirty, 1);
    }

    #[test]
    fn clean_copy_off_recodes_everything() {
        let chunks = vec![chunk(1, &[(0, 9), (10, 19)]), v1_chunk(2, 100, 199)];
        let plan = classify(&chunks, &[], false);
        assert_eq!(plan.clean_runs, vec![Vec::new(), Vec::new()]);
        assert_eq!(plan.pages_clean, 0);
        assert_eq!(plan.pages_dirty, 3);
    }

    #[test]
    fn runs_are_maximal_and_split_at_dirty_pages() {
        let chunks = vec![
            chunk(1, &[(0, 9), (10, 19), (20, 29), (30, 39), (40, 49)]),
            chunk(2, &[(20, 24)]), // dirties the middle page of chunk 1
        ];
        let plan = classify(&chunks, &[], true);
        assert_eq!(plan.clean_runs[0], vec![0..2, 3..5]);
        assert_eq!(plan.clean_runs[1], Vec::<Range<usize>>::new());
    }
}
