//! The unlocked merge-and-write phase of a compaction run.
//!
//! Consumes the input captured under the shard lock (readers, chunk
//! handles, deletes) plus the [`classification
//! plan`](crate::compaction::plan) and produces the output TsFile:
//!
//! * **Clean pages** move byte-for-byte: one pooled pread per
//!   contiguous page window
//!   ([`TsFileReader::read_page_window_raw`]), per-page CRC
//!   revalidation, and a raw append that carries the page statistics
//!   straight into the new footer
//!   ([`tsfile::TsFileWriter::write_chunk_raw`]) — no decode, no
//!   re-encode.
//! * **Dirty pages** decode (one pooled pread per contiguous dirty
//!   window), k-way merge through the same [`MergeReader`] the read
//!   path uses — latest version wins, later-versioned deletes drop
//!   points — and re-encode chunked by `points_per_chunk`.
//!
//! Clean pages and merged dirty points interleave on the time axis;
//! [`merge_to_file`] walks both in time order so output chunks are
//! emitted time-sorted and mutually disjoint. A clean page is an atomic
//! unit: no merged dirty point can fall strictly inside its time range
//! (that would imply an overlapping input chunk or an applicable
//! delete, contradicting cleanliness), so the walk only ever splits a
//! *run* of clean pages, never a page. Consecutive clean pages of the
//! same chunk coalesce back into one raw output chunk unless a dirty
//! point lands in the gap between them — the "gap dweller" case, where
//! a whole other chunk sits between two pages without overlapping
//! either.
//!
//! Every output chunk — copied or re-encoded — carries the **maximum
//! input chunk version**. Inputs are a contiguous run in version
//! order, so anything that outranked an input still outranks the
//! output, and raising a clean page's version only sheds deletes that
//! classification already proved don't touch it. The internal dirty
//! merge reads through a detached [`IoStats`] and no cache: compaction
//! I/O is reported through the explicit `compaction_*` counters, not
//! smeared into the read-path ones.

use std::path::Path;
use std::sync::Arc;

use tsfile::types::{Point, TimeRange};
use tsfile::{ModEntry, RawPage, TsFileReader, TsFileWriter};

use crate::chunk::{ChunkData, ChunkHandle};
use crate::compaction::plan::CompactionPlan;
use crate::config::EngineConfig;
use crate::readers::MergeReader;
use crate::snapshot::SeriesSnapshot;
use crate::stats::IoStats;
use crate::Result;

/// What the unlocked phase produced, for the report and the counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MergeOutcome {
    /// Live points in the output file (copied + re-encoded).
    pub points_written: usize,
    /// Clean pages copied byte-for-byte.
    pub pages_copied: u64,
    /// Input pages decoded and re-encoded (a v1 chunk counts as one).
    pub pages_recoded: u64,
    /// Input chunk-body bytes read.
    pub bytes_read: u64,
    /// Output bytes produced by the re-encode path (copied bytes are
    /// *not* rewritten — that is the whole point).
    pub bytes_rewritten: u64,
    /// Whether an output file exists at `path` (false when every input
    /// point was deleted/overwritten away).
    pub wrote_file: bool,
}

/// One clean page, flattened out of the plan's per-chunk runs so the
/// interleave walk can treat pages as atomic time-ordered units.
#[derive(Debug, Clone, Copy)]
struct CleanUnit {
    chunk: usize,
    page: usize,
    start: i64,
}

fn corrupt(msg: &str) -> crate::TsKvError {
    tsfile::TsFileError::Corrupt(msg.into()).into()
}

/// Output side of the merge walk: the lazily created writer plus the
/// knobs it is created from and the counters it feeds.
struct Output<'a> {
    slot: Option<TsFileWriter>,
    config: &'a EngineConfig,
    path: &'a Path,
    out: MergeOutcome,
}

impl<'a> Output<'a> {
    fn new(config: &'a EngineConfig, path: &'a Path, out: MergeOutcome) -> Self {
        Self {
            slot: None,
            config,
            path,
            out,
        }
    }

    /// Lazily create the output writer: a compaction whose merge comes
    /// up empty (fully deleted series) must not leave an empty file
    /// behind.
    fn writer_mut(&mut self) -> Result<&mut TsFileWriter> {
        match &mut self.slot {
            Some(w) => Ok(w),
            slot @ None => {
                let mut w = TsFileWriter::create_with_encodings(
                    self.path,
                    self.config.ts_encoding,
                    self.config.val_encoding,
                )?;
                w.set_build_index(self.config.build_step_index);
                w.set_page_points(self.config.page_points);
                Ok(slot.insert(w))
            }
        }
    }

    /// Re-encode a run of merged dirty points, chunked by
    /// `points_per_chunk`, all under the output version.
    fn flush_points(&mut self, points: &[Point], version: u64) -> Result<()> {
        for slice in points.chunks(self.config.points_per_chunk.max(1)) {
            let meta = self.writer_mut()?.write_chunk(slice, version)?;
            self.out.bytes_rewritten += meta.byte_len;
            self.out.points_written += slice.len();
        }
        Ok(())
    }

    /// Copy one contiguous window of clean pages as a single raw chunk:
    /// one pooled pread, per-page CRC revalidation, statistics carried
    /// into the new footer unchanged.
    fn flush_raw_run(
        &mut self,
        files: &[Arc<TsFileReader>],
        chunks: &[ChunkHandle],
        run: (usize, std::ops::Range<usize>),
        version: u64,
    ) -> Result<()> {
        let (ci, window) = run;
        let handle = chunks
            .get(ci)
            .ok_or_else(|| corrupt("clean run chunk out of range"))?;
        let ChunkData::File { file_idx, meta } = &handle.data else {
            return Err(corrupt("clean run on in-memory chunk"));
        };
        let reader = files
            .get(*file_idx)
            .ok_or_else(|| corrupt("clean run file out of range"))?;
        let info = meta
            .paged
            .as_ref()
            .ok_or_else(|| corrupt("clean run on unpaged chunk"))?;
        let (buf, base) = reader.read_page_window_raw(meta, window.clone())?;
        let metas = info
            .pages
            .get(window.clone())
            .ok_or_else(|| corrupt("clean run window out of range"))?;
        let mut raws = Vec::with_capacity(metas.len());
        for pm in metas {
            raws.push(RawPage {
                bytes: tsfile::reader::page_body_slice(&buf, pm, base)?,
                stats: pm.stats,
            });
            self.out.points_written += pm.stats.count as usize;
        }
        self.writer_mut()?
            .write_chunk_raw(&raws, info.ts_encoding, info.val_encoding, version)?;
        self.out.pages_copied += window.len() as u64;
        Ok(())
    }
}

/// Merge the captured inputs into one TsFile at `path` per `plan`,
/// emitting every output chunk under `out_version` (the maximum input
/// chunk version). No engine lock may be held.
pub(crate) fn merge_to_file(
    config: &EngineConfig,
    path: &Path,
    files: &[Arc<TsFileReader>],
    chunks: &[ChunkHandle],
    deletes: Vec<ModEntry>,
    plan: &CompactionPlan,
    out_version: u64,
) -> Result<MergeOutcome> {
    let mut out = MergeOutcome {
        pages_recoded: plan.pages_dirty,
        ..MergeOutcome::default()
    };

    // 1. Load the dirty pages (as in-memory runs carrying their source
    // chunk's version) and flatten the clean pages into time-ordered
    // atomic units. Every input page is read exactly once — clean ones
    // later, raw, per window — so bytes_read is the input body total.
    let mut units: Vec<CleanUnit> = Vec::new();
    let mut dirty: Vec<ChunkHandle> = Vec::new();
    for (ci, handle) in chunks.iter().enumerate() {
        let runs = plan
            .clean_runs
            .get(ci)
            .ok_or_else(|| corrupt("plan shorter than chunk list"))?;
        match &handle.data {
            ChunkData::File { file_idx, meta } => {
                out.bytes_read += meta.byte_len;
                let reader = files
                    .get(*file_idx)
                    .ok_or_else(|| corrupt("chunk file out of range"))?;
                let Some(info) = &meta.paged else {
                    // v1 monolithic chunk: always fully dirty.
                    let pts = reader.read_chunk(meta)?;
                    dirty.extend(ChunkHandle::from_mem(Arc::new(pts), handle.version));
                    continue;
                };
                let mut clean = vec![false; info.pages.len()];
                for r in runs {
                    for j in r.clone() {
                        if let Some(c) = clean.get_mut(j) {
                            *c = true;
                        }
                        let Some(pm) = info.pages.get(j) else {
                            return Err(corrupt("clean run page out of range"));
                        };
                        units.push(CleanUnit {
                            chunk: ci,
                            page: j,
                            start: pm.stats.first.t,
                        });
                    }
                }
                // Decode each maximal window of dirty pages with one
                // pooled pread (the window's exact time range selects
                // exactly those pages — pages are disjoint and ordered).
                let mut j = 0;
                while j < info.pages.len() {
                    if clean.get(j).copied().unwrap_or(true) {
                        j += 1;
                        continue;
                    }
                    let a = j;
                    while j < info.pages.len() && !clean.get(j).copied().unwrap_or(true) {
                        j += 1;
                    }
                    let (first, last) = match (info.pages.get(a), info.pages.get(j - 1)) {
                        (Some(f), Some(l)) => (f, l),
                        _ => return Err(corrupt("dirty window out of range")),
                    };
                    let range = TimeRange::new(first.stats.first.t, last.stats.last.t);
                    let mut pts = Vec::new();
                    for (_, page_pts) in reader.read_pages_overlapping(meta, range)? {
                        pts.extend(page_pts);
                    }
                    dirty.extend(ChunkHandle::from_mem(Arc::new(pts), handle.version));
                }
            }
            // Compaction inputs are sealed chunks; tolerate a mem chunk
            // defensively by recoding it whole.
            ChunkData::Mem { points } => {
                dirty.extend(ChunkHandle::from_mem(Arc::clone(points), handle.version));
            }
        }
    }
    units.sort_by_key(|u| u.start);

    // 2. K-way merge the dirty runs — latest version wins, deletes
    // apply version-aware — through a detached snapshot so none of
    // this I/O lands in the read-path counters.
    let detached = Arc::new(IoStats::default());
    let snapshot = SeriesSnapshot::new(Vec::new(), dirty, deletes, detached, None, 1);
    let merged = MergeReader::new(&snapshot).collect_merged()?;

    // 3. Interleave: walk clean pages in time order, spilling merged
    // dirty points that precede each page, re-coalescing consecutive
    // same-chunk pages into single raw chunks when nothing intervened.
    let mut output = Output::new(config, path, out);
    let mut merged_iter = merged.into_iter().peekable();
    let mut pending: Vec<Point> = Vec::new();
    let mut open: Option<(usize, std::ops::Range<usize>)> = None;
    for unit in units {
        let mut consumed = false;
        while merged_iter.peek().is_some_and(|p| p.t < unit.start) {
            pending.extend(merged_iter.next());
            consumed = true;
        }
        let coalesce = !consumed
            && open
                .as_ref()
                .is_some_and(|(c, w)| *c == unit.chunk && w.end == unit.page);
        if coalesce {
            if let Some((_, w)) = &mut open {
                w.end = unit.page + 1;
            }
            continue;
        }
        if let Some(run) = open.take() {
            output.flush_raw_run(files, chunks, run, out_version)?;
        }
        if !pending.is_empty() {
            output.flush_points(&pending, out_version)?;
            pending.clear();
        }
        open = Some((unit.chunk, unit.page..unit.page + 1));
    }
    if let Some(run) = open.take() {
        output.flush_raw_run(files, chunks, run, out_version)?;
    }
    pending.extend(merged_iter);
    if !pending.is_empty() {
        output.flush_points(&pending, out_version)?;
        pending.clear();
    }

    let Output { slot, mut out, .. } = output;
    if let Some(mut w) = slot {
        w.finish()?;
        out.wrote_file = true;
    }
    Ok(out)
}
