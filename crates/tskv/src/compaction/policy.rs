//! Compaction candidate selection policies.
//!
//! A [`CompactionPolicy`] decides *which* contiguous run of a series'
//! sealed files to merge; the plan/execute layers decide *how*. The
//! engine consults the configured policy under the shard lock — the
//! decision is pure metadata arithmetic over [`FileView`]s, so holding
//! the short guard avoids any select/capture race without violating
//! the no-I/O-under-lock discipline.
//!
//! Every policy returns a run that is **contiguous in version order**
//! (the files vec is kept version-ordered). Contiguity is a
//! correctness requirement, not a style choice: output chunks carry
//! the maximum input version, so a merged subset must not skip over a
//! file whose versions fall inside the merged version interval —
//! otherwise a point overwritten by that skipped file could resurface.

use std::ops::Range;

use tsfile::types::TimeRange;

/// Metadata summary of one sealed file, in files-vec (= version)
/// order. Built under the shard lock from in-memory footers only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FileView {
    /// Total bytes of chunk bodies in the file.
    pub bytes: u64,
    /// Number of chunks.
    pub chunks: usize,
    /// Time interval spanned by the file's chunks (`None` only for a
    /// degenerate chunkless file).
    pub time_range: Option<TimeRange>,
    /// Whether the file has delete (mods) entries attached.
    pub has_mods: bool,
}

impl FileView {
    fn overlaps(&self, other: Option<TimeRange>) -> bool {
        match (self.time_range, other) {
            (Some(a), Some(b)) => a.overlaps(&b),
            _ => false,
        }
    }
}

/// A pluggable merge-candidate selector.
///
/// `select` sees the series' sealed files in version order and returns
/// the contiguous run to merge, or `None` to leave the series alone
/// this round. Implementations must be pure metadata math — they run
/// under a shard lock.
pub trait CompactionPolicy: std::fmt::Debug + Send + Sync {
    /// Stable lowercase policy name (benchmark metadata, logs).
    fn name(&self) -> &'static str;
    /// The contiguous run of `files` to merge, if any. `threshold` is
    /// [`crate::config::EngineConfig::compaction_threshold`].
    fn select(&self, files: &[FileView], threshold: usize) -> Option<Range<usize>>;
}

/// The seed strategy: merge *everything* once the file count reaches
/// the threshold. Maximal read-amplification relief, maximal write
/// amplification.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullPolicy;

impl CompactionPolicy for FullPolicy {
    fn name(&self) -> &'static str {
        "full"
    }

    fn select(&self, files: &[FileView], threshold: usize) -> Option<Range<usize>> {
        (files.len() >= threshold.max(1)).then_some(0..files.len())
    }
}

/// Size-tiered selection: merge the longest run of consecutive files
/// of similar size (every member within 4× of the run's smallest),
/// once that run reaches the threshold. Newly flushed files are all
/// roughly memtable-sized, so this merges "one tier" at a time and
/// leaves already-compacted large files untouched — the classic
/// write-amp/space trade of size-tiered LSM trees.
#[derive(Debug, Clone, Copy, Default)]
pub struct SizeTieredPolicy;

impl CompactionPolicy for SizeTieredPolicy {
    fn name(&self) -> &'static str {
        "size_tiered"
    }

    fn select(&self, files: &[FileView], threshold: usize) -> Option<Range<usize>> {
        let threshold = threshold.max(2);
        let mut best: Option<Range<usize>> = None;
        let mut start = 0usize;
        while start < files.len() {
            let Some(first) = files.get(start) else { break };
            let mut min_bytes = first.bytes.max(1);
            let mut end = start + 1;
            while let Some(f) = files.get(end) {
                let lo = min_bytes.min(f.bytes.max(1));
                let hi = min_bytes.max(f.bytes.max(1));
                if hi > lo.saturating_mul(4) {
                    break;
                }
                min_bytes = lo;
                end += 1;
            }
            if end - start > best.as_ref().map_or(0, Range::len) {
                best = Some(start..end);
            }
            start = end.max(start + 1);
        }
        best.filter(|r| r.len() >= threshold)
    }
}

/// Leveled selection: merge a bounded run of the *oldest* files (the
/// base of the tree) once the series crosses the threshold. Each round
/// folds at most `threshold` files into one, keeping per-round work —
/// and the read path's lower levels — bounded instead of rewriting the
/// whole series at once.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeveledPolicy;

impl CompactionPolicy for LeveledPolicy {
    fn name(&self) -> &'static str {
        "leveled"
    }

    fn select(&self, files: &[FileView], threshold: usize) -> Option<Range<usize>> {
        let threshold = threshold.max(2);
        (files.len() >= threshold).then_some(0..threshold.min(files.len()))
    }
}

/// Overlap-driven selection: merge the longest run of consecutive
/// files whose time ranges chain-overlap (each file overlapping the
/// union of the run before it). Overlap is exactly what forces readers
/// to k-way merge, so this policy spends write bandwidth only where
/// reads pay for it; a purely append-ordered series is never
/// rewritten. Fires once the series has at least `threshold` files
/// and some overlap exists (a delete-carrying file counts — tombstone
/// reclamation needs a rewrite too).
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapPolicy;

impl CompactionPolicy for OverlapPolicy {
    fn name(&self) -> &'static str {
        "overlap"
    }

    fn select(&self, files: &[FileView], threshold: usize) -> Option<Range<usize>> {
        if files.len() < threshold.max(2) {
            return None;
        }
        let mut best: Option<Range<usize>> = None;
        let mut start = 0usize;
        while start < files.len() {
            let Some(first) = files.get(start) else { break };
            let mut union = first.time_range;
            let mut interesting = first.has_mods;
            let mut end = start + 1;
            while let Some(f) = files.get(end) {
                if !f.overlaps(union) && !f.has_mods {
                    break;
                }
                interesting = true;
                union = match (union, f.time_range) {
                    (Some(a), Some(b)) => {
                        Some(TimeRange::new(a.start.min(b.start), a.end.max(b.end)))
                    }
                    (a, b) => a.or(b),
                };
                end += 1;
            }
            let len = end - start;
            if interesting && len >= 2 && len > best.as_ref().map_or(0, Range::len) {
                best = Some(start..end);
            }
            start = if end > start + 1 { end } else { start + 1 };
        }
        best
    }
}

/// Config-level selector for the policy implementations above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPolicyKind {
    /// [`FullPolicy`] — the seed behavior and the default.
    #[default]
    Full,
    /// [`SizeTieredPolicy`].
    SizeTiered,
    /// [`LeveledPolicy`].
    Leveled,
    /// [`OverlapPolicy`].
    Overlap,
}

impl CompactionPolicyKind {
    /// All kinds, for benchmark grids.
    pub const ALL: [CompactionPolicyKind; 4] = [
        CompactionPolicyKind::Full,
        CompactionPolicyKind::SizeTiered,
        CompactionPolicyKind::Leveled,
        CompactionPolicyKind::Overlap,
    ];

    /// Stable lowercase name (benchmark metadata headers).
    pub fn as_str(self) -> &'static str {
        match self {
            CompactionPolicyKind::Full => "full",
            CompactionPolicyKind::SizeTiered => "size_tiered",
            CompactionPolicyKind::Leveled => "leveled",
            CompactionPolicyKind::Overlap => "overlap",
        }
    }

    /// Parse the name produced by [`as_str`].
    ///
    /// [`as_str`]: CompactionPolicyKind::as_str
    pub fn parse(s: &str) -> Option<Self> {
        CompactionPolicyKind::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
    }

    /// Instantiate the policy implementation.
    pub fn build(self) -> Box<dyn CompactionPolicy> {
        match self {
            CompactionPolicyKind::Full => Box::new(FullPolicy),
            CompactionPolicyKind::SizeTiered => Box::new(SizeTieredPolicy),
            CompactionPolicyKind::Leveled => Box::new(LeveledPolicy),
            CompactionPolicyKind::Overlap => Box::new(OverlapPolicy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(bytes: u64, range: Option<(i64, i64)>, has_mods: bool) -> FileView {
        FileView {
            bytes,
            chunks: 1,
            time_range: range.map(|(a, b)| TimeRange::new(a, b)),
            has_mods,
        }
    }

    #[test]
    fn full_policy_wants_everything_past_threshold() {
        let files: Vec<FileView> = (0..4)
            .map(|i| view(100, Some((i * 10, i * 10 + 5)), false))
            .collect();
        assert_eq!(FullPolicy.select(&files, 4), Some(0..4));
        assert_eq!(FullPolicy.select(&files, 5), None);
        assert_eq!(FullPolicy.select(&[], 2), None);
    }

    #[test]
    fn size_tiered_picks_similar_sized_run() {
        // One big compacted file followed by a tier of small flushes.
        let mut files = vec![view(100_000, Some((0, 99)), false)];
        for i in 0..4i64 {
            files.push(view(
                1_000 + i as u64 * 100,
                Some((100 + i * 10, 105 + i * 10)),
                false,
            ));
        }
        assert_eq!(SizeTieredPolicy.select(&files, 4), Some(1..5));
        // Below the threshold the tier is left to grow.
        assert_eq!(SizeTieredPolicy.select(&files, 5), None);
        // Uniform sizes: the whole series is one tier.
        let uniform: Vec<FileView> = (0..6).map(|_| view(500, Some((0, 1)), false)).collect();
        assert_eq!(SizeTieredPolicy.select(&uniform, 4), Some(0..6));
    }

    #[test]
    fn size_tiered_never_bridges_a_4x_jump() {
        let files = vec![
            view(10_000, None, false),
            view(100, None, false),
            view(120, None, false),
        ];
        assert_eq!(SizeTieredPolicy.select(&files, 2), Some(1..3));
    }

    #[test]
    fn leveled_folds_oldest_bounded_run() {
        let files: Vec<FileView> = (0..10).map(|_| view(100, Some((0, 1)), false)).collect();
        assert_eq!(LeveledPolicy.select(&files, 4), Some(0..4));
        assert_eq!(LeveledPolicy.select(&files[..3], 4), None);
    }

    #[test]
    fn overlap_policy_targets_overlapping_run_only() {
        // Files 0-1 append-ordered; 2-3 overlap each other.
        let files = vec![
            view(100, Some((0, 9)), false),
            view(100, Some((10, 19)), false),
            view(100, Some((20, 39)), false),
            view(100, Some((30, 49)), false),
        ];
        assert_eq!(OverlapPolicy.select(&files, 3), Some(2..4));
        // Append-only series: nothing to fix, never fires.
        let appendy = vec![
            view(100, Some((0, 9)), false),
            view(100, Some((10, 19)), false),
            view(100, Some((20, 29)), false),
        ];
        assert_eq!(OverlapPolicy.select(&appendy, 2), None);
        // ... unless a file carries tombstones worth reclaiming.
        let with_mods = vec![
            view(100, Some((0, 9)), false),
            view(100, Some((10, 19)), true),
            view(100, Some((20, 29)), false),
        ];
        assert!(OverlapPolicy.select(&with_mods, 2).is_some());
        // Below the series threshold the policy stays quiet.
        assert_eq!(OverlapPolicy.select(&files, 5), None);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in CompactionPolicyKind::ALL {
            assert_eq!(CompactionPolicyKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.build().name(), kind.as_str());
        }
        assert_eq!(CompactionPolicyKind::parse("nope"), None);
        assert_eq!(CompactionPolicyKind::default(), CompactionPolicyKind::Full);
    }
}
