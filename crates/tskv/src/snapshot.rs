//! Point-in-time read view of one series.
//!
//! A [`SeriesSnapshot`] captures the set of chunks ℂ (sealed + the
//! memtable image) and the set of deletes 𝔻 at snapshot time, plus the
//! file handles needed to load chunk bodies. It is the input both the
//! M4-UDF baseline (via `MergeReader`) and the M4-LSM operator consume;
//! all chunk-body reads go through it so the [`crate::IoStats`]
//! counters see every load.

use std::sync::Arc;

use tsfile::types::{Point, TimeRange, Timestamp};
use tsfile::{ModEntry, TsFileReader};

use crate::cache::{CacheKey, DecodedChunkCache};
use crate::chunk::{ChunkData, ChunkHandle};
use crate::stats::IoStats;
use crate::Result;

/// Immutable read view of one series.
///
/// Holds one shared immutable [`TsFileReader`] handle per TsFile for
/// its whole lifetime — chunk loads never reopen files, and because
/// the handles do positional reads, any number of threads may load
/// chunks through one snapshot concurrently.
#[derive(Debug)]
pub struct SeriesSnapshot {
    files: Vec<Arc<TsFileReader>>,
    chunks: Vec<ChunkHandle>,
    deletes: Vec<ModEntry>,
    io: Arc<IoStats>,
    /// Engine-wide decoded-chunk LRU; `None` when disabled by config.
    cache: Option<Arc<DecodedChunkCache>>,
    /// Engine-configured fan-out for parallel chunk loads.
    read_threads: usize,
}

impl SeriesSnapshot {
    /// Assemble a snapshot. `chunks` must reference `files` by index;
    /// `deletes` must be deduplicated by version.
    pub(crate) fn new(
        files: Vec<Arc<TsFileReader>>,
        chunks: Vec<ChunkHandle>,
        deletes: Vec<ModEntry>,
        io: Arc<IoStats>,
        cache: Option<Arc<DecodedChunkCache>>,
        read_threads: usize,
    ) -> Self {
        SeriesSnapshot {
            files,
            chunks,
            deletes,
            io,
            cache,
            read_threads: read_threads.max(1),
        }
    }

    /// All chunks visible to this snapshot, in version order.
    pub fn chunks(&self) -> &[ChunkHandle] {
        &self.chunks
    }

    /// All deletes visible to this snapshot, in version order.
    pub fn deletes(&self) -> &[ModEntry] {
        &self.deletes
    }

    /// Shared I/O counters for this snapshot.
    pub fn io(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// The engine's decoded-chunk cache, if enabled.
    pub fn cache(&self) -> Option<&Arc<DecodedChunkCache>> {
        self.cache.as_ref()
    }

    /// Engine-configured worker-thread count for parallel chunk loads
    /// (always at least 1).
    pub fn pool_threads(&self) -> usize {
        self.read_threads
    }

    /// Process-unique reader handle ids of the sealed files backing
    /// this snapshot. Decoded-chunk cache keys are scoped by these ids,
    /// so after a compaction the engine cache must only hold ids that
    /// some live snapshot can still produce.
    pub fn file_handle_ids(&self) -> Vec<u64> {
        self.files.iter().map(|f| f.handle_id()).collect()
    }

    /// Chunks whose time interval overlaps `range`.
    pub fn chunks_overlapping(&self, range: TimeRange) -> Vec<&ChunkHandle> {
        self.chunks
            .iter()
            .filter(|c| c.time_range().overlaps(&range))
            .collect()
    }

    /// Total points across all chunks (before merge/deletes).
    pub fn raw_point_count(&self) -> u64 {
        self.chunks.iter().map(|c| c.count()).sum()
    }

    /// Load a chunk's full points (timestamp + value), in time order.
    ///
    /// Sealed chunks are served from the engine's decoded-chunk cache
    /// when possible; a miss reads and decodes outside any lock, then
    /// publishes the result. The returned `Arc` is shared with the
    /// cache — callers must not mutate through it.
    pub fn read_points(&self, chunk: &ChunkHandle) -> Result<Arc<Vec<Point>>> {
        match &chunk.data {
            ChunkData::Mem { points } => {
                self.io.record_mem_read(points.len() as u64);
                Ok(Arc::clone(points))
            }
            ChunkData::File { file_idx, meta } => {
                let file = &self.files[*file_idx];
                let key = CacheKey {
                    file_id: file.handle_id(),
                    offset: meta.offset,
                    page_no: CacheKey::WHOLE_CHUNK,
                    version: meta.version.0,
                };
                if let Some(cache) = &self.cache {
                    if let Some(points) = cache.get(key) {
                        return Ok(points);
                    }
                }
                let pts = Arc::new(file.read_chunk(meta)?);
                self.io.record_chunk_load(meta.byte_len, pts.len() as u64);
                self.io.record_pages_decoded(meta.page_count() as u64);
                if let Some(cache) = &self.cache {
                    cache.insert(key, Arc::clone(&pts));
                }
                Ok(pts)
            }
        }
    }

    /// Load the points of one page of a sealed, paged chunk, going
    /// through the decoded-page cache. Fails on in-memory chunks and on
    /// v1 (unpaged) chunks — callers only hold page numbers for chunks
    /// whose handle exposes a page index ([`ChunkHandle::paged`]).
    pub fn read_page_points(&self, chunk: &ChunkHandle, page_no: u32) -> Result<Arc<Vec<Point>>> {
        match &chunk.data {
            ChunkData::Mem { .. } => Err(tsfile::TsFileError::Corrupt(
                "page read on in-memory chunk".into(),
            ))?,
            ChunkData::File { file_idx, meta } => {
                self.load_page(&self.files[*file_idx], meta, page_no)
            }
        }
    }

    /// Load only the pages of `chunk` overlapping `range`, as
    /// `(page_no, points)` runs in page order. Each page is a sorted,
    /// time-disjoint slice of the chunk, so the runs can be merged
    /// independently. Non-overlapping pages of the visited chunk are
    /// counted as skipped; in-memory, v1 and single-page chunks
    /// degenerate to one whole-chunk run numbered 0.
    pub fn read_points_in(
        &self,
        chunk: &ChunkHandle,
        range: TimeRange,
    ) -> Result<Vec<(u32, Arc<Vec<Point>>)>> {
        let ChunkData::File { file_idx, meta } = &chunk.data else {
            return Ok(vec![(0, self.read_points(chunk)?)]);
        };
        let Some(info) = &meta.paged else {
            return Ok(vec![(0, self.read_points(chunk)?)]);
        };
        if info.pages.len() <= 1 {
            return Ok(vec![(0, self.read_points(chunk)?)]);
        }
        let window = info.pages_overlapping(range);
        self.io
            .record_pages_skipped((info.pages.len() - window.len()) as u64);
        let file = &self.files[*file_idx];
        let mut out = Vec::with_capacity(window.len());
        for page_no in window {
            let page_no = u32::try_from(page_no)
                .map_err(|_| tsfile::TsFileError::Corrupt("page index exceeds u32 range".into()))?;
            out.push((page_no, self.load_page(file, meta, page_no)?));
        }
        Ok(out)
    }

    fn load_page(
        &self,
        file: &Arc<TsFileReader>,
        meta: &tsfile::format::ChunkMeta,
        page_no: u32,
    ) -> Result<Arc<Vec<Point>>> {
        let key = CacheKey {
            file_id: file.handle_id(),
            offset: meta.offset,
            page_no,
            version: meta.version.0,
        };
        if let Some(cache) = &self.cache {
            if let Some(points) = cache.get(key) {
                return Ok(points);
            }
        }
        let pts = Arc::new(file.read_page(meta, page_no)?);
        let bytes = meta
            .paged
            .as_ref()
            .and_then(|i| i.pages.get(page_no as usize))
            .map_or(0, |p| p.byte_len);
        self.io.record_chunk_load(bytes, pts.len() as u64);
        self.io.record_pages_decoded(1);
        if let Some(cache) = &self.cache {
            cache.insert(key, Arc::clone(&pts));
        }
        Ok(pts)
    }

    /// Load only a chunk's timestamp column, optionally stopping early
    /// once past `until` (the paper's partial scan).
    pub fn read_timestamps(
        &self,
        chunk: &ChunkHandle,
        until: Option<Timestamp>,
    ) -> Result<Vec<Timestamp>> {
        match &chunk.data {
            ChunkData::Mem { points } => {
                let ts: Vec<Timestamp> = match until {
                    Some(limit) => {
                        let mut out = Vec::new();
                        for p in points.iter() {
                            out.push(p.t);
                            if p.t > limit {
                                break;
                            }
                        }
                        out
                    }
                    None => points.iter().map(|p| p.t).collect(),
                };
                self.io.record_mem_read(ts.len() as u64);
                Ok(ts)
            }
            ChunkData::File { file_idx, meta } => {
                let ts = self.files[*file_idx].read_chunk_timestamps(meta, until)?;
                self.io
                    .record_timestamp_load(meta.byte_len, ts.len() as u64);
                Ok(ts)
            }
        }
    }

    /// Load the timestamp column of one page of a sealed, paged chunk,
    /// optionally stopping once past `until`. The page-targeted variant
    /// of [`SeriesSnapshot::read_timestamps`]: a point-existence probe
    /// that already knows which page could hold the timestamp decodes
    /// just that page's prefix.
    pub fn read_page_timestamps(
        &self,
        chunk: &ChunkHandle,
        page_no: u32,
        until: Option<Timestamp>,
    ) -> Result<Vec<Timestamp>> {
        match &chunk.data {
            ChunkData::Mem { .. } => Err(tsfile::TsFileError::Corrupt(
                "page timestamp read on in-memory chunk".into(),
            ))?,
            ChunkData::File { file_idx, meta } => {
                let ts = self.files[*file_idx].read_page_timestamps(meta, page_no, until)?;
                let bytes = meta
                    .paged
                    .as_ref()
                    .and_then(|i| i.pages.get(page_no as usize))
                    .map_or(0, |p| p.byte_len);
                self.io.record_timestamp_load(bytes, ts.len() as u64);
                Ok(ts)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::EngineConfig;
    use crate::engine::TsKv;
    use tsfile::types::{Point, TimeRange};

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn fresh(name: &str) -> crate::Result<(std::path::PathBuf, TsKv)> {
        let dir = std::env::temp_dir().join(format!("tskv-snap-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 100,
                memtable_threshold: 400,
                ..Default::default()
            },
        )?;
        Ok((dir, kv))
    }

    #[test]
    fn mem_chunk_included_and_versioned_last() -> TestResult {
        let (dir, kv) = fresh("mem")?;
        for t in 0..400i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        for t in 400..450i64 {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        let snap = kv.snapshot("s")?;
        let chunks = snap.chunks();
        assert_eq!(chunks.len(), 5); // 4 sealed + 1 mem
        let mem = chunks.last().ok_or("no chunks")?;
        assert!(mem.is_mem());
        assert!(chunks[..4].iter().all(|c| c.version < mem.version));
        assert_eq!(mem.count(), 50);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn read_timestamps_until_on_mem_chunk_stops_early() -> TestResult {
        let (dir, kv) = fresh("mem-until")?;
        for t in 0..50i64 {
            kv.insert("s", Point::new(t * 10, 0.0))?;
        }
        let snap = kv.snapshot("s")?;
        let mem = snap.chunks().last().ok_or("no mem chunk")?;
        assert!(mem.is_mem());
        let ts = snap.read_timestamps(mem, Some(105))?;
        assert_eq!(ts.last().copied(), Some(110)); // first value past the limit
        assert_eq!(ts.len(), 12);
        let all = snap.read_timestamps(mem, None)?;
        assert_eq!(all.len(), 50);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn chunks_overlapping_respects_boundaries() -> TestResult {
        let (dir, kv) = fresh("overlap")?;
        for t in 0..400i64 {
            kv.insert("s", Point::new(t, 0.0))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        // Chunks: [0,99] [100,199] [200,299] [300,399].
        assert_eq!(snap.chunks_overlapping(TimeRange::new(99, 100)).len(), 2);
        assert_eq!(snap.chunks_overlapping(TimeRange::new(150, 160)).len(), 1);
        assert_eq!(snap.chunks_overlapping(TimeRange::new(-50, -1)).len(), 0);
        assert_eq!(snap.chunks_overlapping(TimeRange::new(0, 399)).len(), 4);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn raw_point_count_sums_all_chunks() -> TestResult {
        let (dir, kv) = fresh("count")?;
        for t in 0..250i64 {
            kv.insert("s", Point::new(t, 0.0))?;
        }
        // Overwrite 50 points → extra chunk with 50 points after flush.
        kv.flush_all()?;
        for t in 0..50i64 {
            kv.insert("s", Point::new(t, 9.0))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 300); // raw, not deduplicated
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
