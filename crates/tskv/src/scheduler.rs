//! Background compaction scheduler.
//!
//! When `EngineConfig::compaction_auto` is on, [`crate::TsKv::open`]
//! spawns one `tskv-compactor` thread that keeps every series'
//! sealed-file count at or below `compaction_threshold` without any
//! caller involvement:
//!
//! 1. **Scan (short read guards)** — ask the engine for
//!    [`compaction candidates`]: series whose sealed-file count reached
//!    the threshold and that no compaction currently owns. Each shard's
//!    read lock is held only for the map walk, never across I/O (xtask
//!    lint L2 pins this phasing).
//! 2. **Compact (no locks held here)** — run the engine's phased
//!    *policy-driven* compaction for each candidate: the configured
//!    [`crate::compaction::policy`] picks the contiguous file run to
//!    merge (or declines). The compaction itself re-takes the shard
//!    lock only for its short capture/install phases; the merge and
//!    file writes run unlocked, so ingest and queries proceed
//!    concurrently.
//! 3. **Sleep** — park for `compaction_interval_ms` (interruptibly, so
//!    drop/shutdown never waits out the interval).
//!
//! Every decision is observable through `IoStats`: each candidate
//! bumps `compactions_scheduled`; a run that actually merged files
//! bumps `compactions_completed`; a run that found nothing to do (lost
//! a race with a manual `compact` or an in-flight one) or failed bumps
//! `compactions_skipped`. Scheduler errors are recorded, never
//! propagated — a failed compaction leaves the old generation in
//! place, which is always a correct (just less compact) state, and the
//! next tick retries.
//!
//! [`compaction candidates`]: crate::engine::EngineInner::compaction_candidates

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::EngineInner;
use crate::Result;

/// Handle to the background compaction thread. Dropping it stops the
/// loop and joins the thread (any in-flight compaction finishes its
/// current phase sequence first).
#[derive(Debug)]
pub(crate) struct CompactionScheduler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CompactionScheduler {
    /// Spawn the scheduler thread over the shared engine state.
    pub(crate) fn spawn(inner: Arc<EngineInner>) -> Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tskv-compactor".to_string())
            .spawn(move || run_loop(&inner, &thread_stop))?;
        Ok(CompactionScheduler {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for CompactionScheduler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            // A panic in the scheduler thread is impossible by the
            // workspace's no-panic discipline; if it ever happened,
            // surfacing it from drop would abort, so swallow the join
            // error instead.
            let _ = handle.join();
        }
    }
}

/// The scheduler loop: scan → compact each candidate → park.
fn run_loop(inner: &EngineInner, stop: &AtomicBool) {
    let interval = Duration::from_millis(inner.compaction_interval_ms());
    while !stop.load(Ordering::Relaxed) {
        // Phase 1: candidates are collected under short per-shard read
        // guards inside the engine; no guard survives the call. The
        // list is interned ids — a sweep over a million series never
        // clones a name.
        let candidates = inner.compaction_candidates();
        // Phase 2: compact off-lock, one series at a time.
        for id in candidates {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            inner.io().record_compaction_scheduled();
            match inner.compact_policy(id) {
                Ok(report) if report.files_removed > 0 => {
                    inner.io().record_compaction_completed();
                }
                Ok(_) | Err(_) => inner.io().record_compaction_skipped(),
            }
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // Phase 3: interruptible sleep (drop unparks).
        std::thread::park_timeout(interval);
    }
}
