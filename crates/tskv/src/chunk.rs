//! Query-time chunk handles.
//!
//! A [`ChunkHandle`] is the unit the readers and the M4 operators work
//! with: the chunk's version, statistics and (optional) step index —
//! everything knowable without I/O — plus enough location information
//! to load the body on demand.

use std::sync::Arc;

use tsfile::format::ChunkMeta;
use tsfile::statistics::ChunkStatistics;
use tsfile::types::{Point, TimeRange, Version};
use tsfile::StepIndex;

/// Where a chunk's data lives.
#[derive(Debug, Clone)]
pub enum ChunkData {
    /// A sealed chunk inside a TsFile; `file_idx` indexes the
    /// snapshot's file list.
    File { file_idx: usize, meta: ChunkMeta },
    /// The memtable, exposed as an ephemeral in-memory chunk so reads
    /// observe unflushed points. Its version is greater than any sealed
    /// chunk or delete in the snapshot (memtable points are always
    /// latest: in-memory updates overwrite in place and deletes are
    /// applied to the memtable eagerly).
    Mem { points: Arc<Vec<Point>> },
}

/// One chunk visible to a query.
#[derive(Debug, Clone)]
pub struct ChunkHandle {
    /// The chunk's version `κ`.
    pub version: Version,
    /// FP/LP/BP/TP/count — the paper's chunk metadata.
    pub stats: ChunkStatistics,
    /// Step-regression index, if learned at flush time.
    pub index: Option<StepIndex>,
    /// Data location.
    pub data: ChunkData,
}

impl ChunkHandle {
    /// Build a handle for a sealed chunk.
    pub fn from_file(file_idx: usize, meta: ChunkMeta) -> Self {
        ChunkHandle {
            version: meta.version,
            stats: meta.stats,
            index: meta.index.clone(),
            data: ChunkData::File { file_idx, meta },
        }
    }

    /// Build a handle for the memtable's contents (must be time-sorted).
    /// `version` must exceed every sealed version. Returns `None` for an
    /// empty point set, which has no statistics to expose.
    pub fn from_mem(points: Arc<Vec<Point>>, version: Version) -> Option<Self> {
        let stats = ChunkStatistics::from_points(&points).ok()?;
        Some(ChunkHandle {
            version,
            stats,
            index: None,
            data: ChunkData::Mem { points },
        })
    }

    /// The chunk's (unclipped) time interval `[FP(C).t, LP(C).t]`.
    #[inline]
    pub fn time_range(&self) -> TimeRange {
        self.stats.time_range()
    }

    /// Number of points in the chunk.
    #[inline]
    pub fn count(&self) -> u64 {
        self.stats.count
    }

    /// Whether the chunk body lives in memory (no I/O to read).
    pub fn is_mem(&self) -> bool {
        matches!(self.data, ChunkData::Mem { .. })
    }

    /// The chunk's on-disk page index, when the backing file stores the
    /// body paged (format v2). `None` for memtable chunks and for v1
    /// monolithic chunks — those read as a single whole-chunk page.
    pub fn paged(&self) -> Option<&tsfile::PagedChunkInfo> {
        match &self.data {
            ChunkData::File { meta, .. } => meta.paged.as_ref(),
            ChunkData::Mem { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_handle_stats() -> std::result::Result<(), &'static str> {
        let pts = Arc::new(vec![
            Point::new(1, 5.0),
            Point::new(2, -1.0),
            Point::new(3, 2.0),
        ]);
        let h = ChunkHandle::from_mem(pts, Version(9)).ok_or("non-empty points")?;
        assert_eq!(h.version, Version(9));
        assert_eq!(h.count(), 3);
        assert_eq!(h.time_range(), TimeRange::new(1, 3));
        assert_eq!(h.stats.bottom, Point::new(2, -1.0));
        assert!(h.is_mem());
        assert!(h.index.is_none());
        Ok(())
    }

    #[test]
    fn mem_handle_rejects_empty() {
        assert!(ChunkHandle::from_mem(Arc::new(Vec::new()), Version(1)).is_none());
    }
}
