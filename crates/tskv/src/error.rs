//! Error type for the tskv engine.

use std::fmt;
use std::io;

use tsfile::TsFileError;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum TsKvError {
    /// Error from the underlying TsFile layer.
    TsFile(TsFileError),
    /// Filesystem-level failure outside a TsFile operation.
    Io(io::Error),
    /// The named series does not exist.
    SeriesNotFound(String),
    /// A delete range had `start > end`.
    InvalidDeleteRange { start: i64, end: i64 },
    /// A series name contained characters unusable as a directory name.
    InvalidSeriesName(String),
    /// A configuration knob held a zero/absurd value.
    InvalidConfig {
        /// Name of the offending `EngineConfig` field.
        field: &'static str,
        /// The rejected value.
        value: u64,
        /// Why the value is unusable.
        reason: &'static str,
    },
    /// The series catalog reached its configured capacity.
    CatalogFull {
        /// The configured `catalog_max_series` ceiling.
        limit: u64,
    },
    /// On-disk state is internally inconsistent (e.g. a data file tagged
    /// with a series id the catalog never allocated).
    Corrupt(String),
}

impl fmt::Display for TsKvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsKvError::TsFile(e) => write!(f, "tsfile error: {e}"),
            TsKvError::Io(e) => write!(f, "i/o error: {e}"),
            TsKvError::SeriesNotFound(name) => write!(f, "series not found: {name:?}"),
            TsKvError::InvalidDeleteRange { start, end } => {
                write!(f, "invalid delete range: start {start} > end {end}")
            }
            TsKvError::InvalidSeriesName(name) => {
                write!(f, "invalid series name: {name:?}")
            }
            TsKvError::InvalidConfig {
                field,
                value,
                reason,
            } => {
                write!(f, "invalid config: {field} = {value}: {reason}")
            }
            TsKvError::CatalogFull { limit } => {
                write!(f, "series catalog full: {limit} series registered")
            }
            TsKvError::Corrupt(reason) => write!(f, "corrupt store: {reason}"),
        }
    }
}

impl std::error::Error for TsKvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsKvError::TsFile(e) => Some(e),
            TsKvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TsFileError> for TsKvError {
    fn from(e: TsFileError) -> Self {
        TsKvError::TsFile(e)
    }
}

impl From<io::Error> for TsKvError {
    fn from(e: io::Error) -> Self {
        TsKvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TsKvError::SeriesNotFound("a.b".into());
        assert!(e.to_string().contains("a.b"));
        let e: TsKvError = TsFileError::EmptyChunk.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = TsKvError::InvalidDeleteRange { start: 5, end: 1 };
        assert!(e.to_string().contains('5'));
    }
}
