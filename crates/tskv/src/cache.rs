//! Cross-query LRU cache of decoded chunk bodies.
//!
//! The paper's latency model is I/O + decompression over many chunks;
//! once the on-disk layout is fixed, not re-decoding the same immutable
//! chunk on every query is the dominant read-path lever. This module
//! caches *decoded* points (the expensive artifact) keyed by
//!
//! > (file handle id, chunk byte offset, page number, chunk version)
//!
//! Page granularity (format v2) means a narrow query that touches a
//! few hundred points caches — and later evicts — only those pages,
//! instead of a multi-megabyte whole-chunk body. Whole-chunk entries
//! (v1 files, full scans) use the reserved page number
//! [`CacheKey::WHOLE_CHUNK`].
//!
//! The file handle id is a process-unique id minted by
//! [`tsfile::TsFileReader::open`] and never reused, so entries for a
//! retired file can never alias a newer file that happens to land at
//! the same path: invalidation on compaction is memory hygiene, not a
//! correctness requirement. Chunks inside one file are immutable, hence
//! the cached bytes are valid for as long as the key can be formed at
//! all.
//!
//! ## Sharding
//!
//! The map is lock-striped by key hash: one mutex (and one LRU list)
//! per shard, with the byte capacity split evenly across shards, so
//! concurrent readers hashing to different stripes never contend. The
//! stripe count scales with capacity (roughly one per MiB, capped at
//! 16); caches of ≤ 1 MiB stay single-shard, which keeps the LRU
//! globally exact for small configurations. With more shards the LRU
//! is exact *per shard* — a hot key can only evict entries in its own
//! stripe, which bounds the approximation error to one stripe's
//! capacity. Hit/miss/eviction/invalidation counters still aggregate
//! in the engine-wide [`IoStats`].
//!
//! ## Lock discipline (xtask L2)
//!
//! The cache is shared by every concurrent query, so its internal
//! mutexes are contention points. All methods hold a guard only for
//! map bookkeeping — never across file I/O or chunk decode. Callers
//! follow the same rule: [`DecodedChunkCache::get`] clones the `Arc`
//! out under the guard and returns; on a miss the caller decodes
//! *outside* any guard and then calls [`DecodedChunkCache::insert`].
//! Two racing misses on the same key both decode and one insert wins —
//! wasted work under contention, never wrong data.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use tsfile::types::Point;

use crate::stats::IoStats;

/// Identity of one decoded page (or whole chunk body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Process-unique id of the owning [`tsfile::TsFileReader`].
    pub file_id: u64,
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Page number within the chunk, or [`Self::WHOLE_CHUNK`] for a
    /// monolithic whole-chunk entry.
    pub page_no: u32,
    /// The chunk's version `κ`.
    pub version: u64,
}

impl CacheKey {
    /// Sentinel page number marking an entry that holds the entire
    /// decoded chunk body (v1 files; full-chunk reads).
    pub const WHOLE_CHUNK: u32 = u32::MAX;
}

/// One cached decoded chunk.
#[derive(Debug)]
struct Entry {
    points: Arc<Vec<Point>>,
    bytes: u64,
    /// LRU recency stamp; also the key into [`Inner::by_tick`].
    tick: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency order: oldest tick first. Ticks are unique (monotone
    /// counter), so this is a faithful LRU list with O(log n) updates.
    by_tick: BTreeMap<u64, CacheKey>,
    next_tick: u64,
    bytes: u64,
}

impl Inner {
    fn touch(&mut self, key: CacheKey) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.by_tick.remove(&e.tick);
            e.tick = tick;
            self.by_tick.insert(tick, key);
        }
    }

    fn remove(&mut self, key: &CacheKey) -> Option<Entry> {
        let e = self.map.remove(key)?;
        self.by_tick.remove(&e.tick);
        self.bytes -= e.bytes;
        Some(e)
    }

    /// Evict least-recently-used entries until `bytes <= capacity`.
    /// Returns how many entries were evicted.
    fn evict_to(&mut self, capacity: u64) -> u64 {
        let mut evicted = 0;
        while self.bytes > capacity {
            let Some((_, key)) = self.by_tick.pop_first() else {
                break;
            };
            if let Some(e) = self.map.remove(&key) {
                self.bytes -= e.bytes;
                evicted += 1;
            }
        }
        evicted
    }
}

/// Capacity-bounded, cross-query LRU of decoded chunk bodies,
/// lock-striped by key hash.
///
/// Shared by all of an engine's snapshots (and, transitively, every
/// query operator). Hit/miss/eviction/invalidation counts surface
/// through the engine's [`IoStats`].
#[derive(Debug)]
pub struct DecodedChunkCache {
    shards: Vec<Mutex<Inner>>,
    /// Byte budget of one stripe (`capacity_bytes / shards.len()`).
    shard_capacity: u64,
    capacity_bytes: u64,
    io: Arc<IoStats>,
}

/// Approximate heap footprint of one cached chunk: the point payload
/// plus a fixed per-entry overhead for the two map nodes.
fn entry_bytes(points: &[Point]) -> u64 {
    const ENTRY_OVERHEAD: u64 = 128;
    (points.len() as u64) * (std::mem::size_of::<Point>() as u64) + ENTRY_OVERHEAD
}

/// Stripe count for a given capacity: one shard per MiB, clamped to
/// [1, 16]. Small caches stay single-shard so their LRU is globally
/// exact (several tests and tiny configs depend on that).
fn shard_count(capacity_bytes: u64) -> usize {
    ((capacity_bytes >> 20) as usize).clamp(1, 16)
}

impl DecodedChunkCache {
    /// Create a cache bounded to roughly `capacity_bytes` of decoded
    /// points. Counters are recorded into `io`.
    pub fn new(capacity_bytes: u64, io: Arc<IoStats>) -> Self {
        let n = shard_count(capacity_bytes);
        let shards = (0..n).map(|_| Mutex::new(Inner::default())).collect();
        let shard_capacity = capacity_bytes / n as u64;
        DecodedChunkCache {
            shards,
            shard_capacity,
            capacity_bytes,
            io,
        }
    }

    /// The stripe owning `key`. `shards` is never empty, so the modulo
    /// index is always in bounds.
    fn shard(&self, key: &CacheKey) -> &Mutex<Inner> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a decoded chunk. A hit bumps the entry's recency and
    /// clones the `Arc` out — the guard is released before the caller
    /// touches the points.
    pub fn get(&self, key: CacheKey) -> Option<Arc<Vec<Point>>> {
        let mut inner = self.shard(&key).lock();
        if inner.map.contains_key(&key) {
            inner.touch(key);
            let points = inner.map.get(&key).map(|e| Arc::clone(&e.points));
            drop(inner);
            self.io.record_cache_hit();
            points
        } else {
            drop(inner);
            self.io.record_cache_miss();
            None
        }
    }

    /// Install a decoded chunk (decoded by the caller, outside any
    /// guard). A chunk larger than its stripe's share of the capacity
    /// is not cached. Racing inserts for the same key keep the newest
    /// `Arc`.
    pub fn insert(&self, key: CacheKey, points: Arc<Vec<Point>>) {
        let bytes = entry_bytes(&points);
        if bytes > self.shard_capacity {
            return;
        }
        let evicted = {
            let mut inner = self.shard(&key).lock();
            inner.remove(&key);
            let tick = inner.next_tick;
            inner.next_tick += 1;
            inner.bytes += bytes;
            inner.map.insert(
                key,
                Entry {
                    points,
                    bytes,
                    tick,
                },
            );
            inner.by_tick.insert(tick, key);
            inner.evict_to(self.shard_capacity)
        };
        if evicted > 0 {
            self.io.record_cache_evictions(evicted);
        }
    }

    /// Drop every entry belonging to `file_id` (the file was retired by
    /// compaction), across all stripes. Returns how many entries were
    /// dropped.
    pub fn invalidate_file(&self, file_id: u64) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut inner = shard.lock();
            let doomed: Vec<CacheKey> = inner
                .map
                .keys()
                .filter(|k| k.file_id == file_id)
                .copied()
                .collect();
            for key in &doomed {
                inner.remove(key);
            }
            dropped += doomed.len() as u64;
        }
        if dropped > 0 {
            self.io.record_cache_invalidations(dropped);
        }
        dropped
    }

    /// Distinct file ids currently holding entries (test/diagnostic).
    pub fn file_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.lock().map.keys().map(|k| k.file_id));
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of cached chunks across all stripes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current decoded bytes held (approximate, across all stripes).
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of lock stripes (test/diagnostic).
    pub fn shard_len(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn key(file: u64, off: u64) -> CacheKey {
        CacheKey {
            file_id: file,
            offset: off,
            page_no: CacheKey::WHOLE_CHUNK,
            version: off,
        }
    }

    fn pts(n: usize) -> Arc<Vec<Point>> {
        Arc::new((0..n as i64).map(|t| Point::new(t, t as f64)).collect())
    }

    fn cache(capacity: u64) -> (DecodedChunkCache, Arc<IoStats>) {
        let io = Arc::new(IoStats::default());
        (DecodedChunkCache::new(capacity, Arc::clone(&io)), io)
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let (c, io) = cache(1 << 20);
        let p = pts(10);
        assert!(c.get(key(1, 0)).is_none());
        c.insert(key(1, 0), Arc::clone(&p));
        let got = c.get(key(1, 0)).unwrap();
        assert!(Arc::ptr_eq(&got, &p));
        let s = io.snapshot();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
    }

    #[test]
    fn page_keys_are_distinct_entries() {
        let (c, _io) = cache(1 << 20);
        let base = CacheKey {
            file_id: 1,
            offset: 0,
            page_no: 0,
            version: 9,
        };
        c.insert(base, pts(10));
        c.insert(CacheKey { page_no: 1, ..base }, pts(20));
        c.insert(
            CacheKey {
                page_no: CacheKey::WHOLE_CHUNK,
                ..base
            },
            pts(30),
        );
        assert_eq!(c.len(), 3, "pages of one chunk cache independently");
        assert_eq!(c.get(CacheKey { page_no: 1, ..base }).unwrap().len(), 20);
        // Retiring the file drops every page entry.
        assert_eq!(c.invalidate_file(1), 3);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        // Room for ~2 entries of 100 points each (1600 B + overhead).
        let (c, io) = cache(2 * (100 * 16 + 128));
        c.insert(key(1, 0), pts(100));
        c.insert(key(1, 1), pts(100));
        // Touch the first so the second is now LRU.
        assert!(c.get(key(1, 0)).is_some());
        c.insert(key(1, 2), pts(100));
        assert!(c.get(key(1, 1)).is_none(), "LRU entry must be evicted");
        assert!(c.get(key(1, 0)).is_some());
        assert!(c.get(key(1, 2)).is_some());
        assert_eq!(io.snapshot().cache_evictions, 1);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let (c, _io) = cache(64);
        c.insert(key(1, 0), pts(1000));
        assert_eq!(c.len(), 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let (c, io) = cache(1 << 20);
        c.insert(key(1, 0), pts(5));
        c.insert(key(1, 8), pts(5));
        c.insert(key(2, 0), pts(5));
        assert_eq!(c.invalidate_file(1), 2);
        assert_eq!(c.file_ids(), vec![2]);
        assert!(c.get(key(1, 0)).is_none());
        assert!(c.get(key(2, 0)).is_some());
        assert_eq!(io.snapshot().cache_invalidations, 2);
    }

    #[test]
    fn reinsert_same_key_replaces_without_leaking_bytes() {
        let (c, _io) = cache(1 << 20);
        c.insert(key(1, 0), pts(10));
        let b1 = c.bytes();
        c.insert(key(1, 0), pts(10));
        assert_eq!(
            c.bytes(),
            b1,
            "replacing an entry must not double-count bytes"
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        let (tiny, _) = cache(64 * 1024);
        assert_eq!(tiny.shard_len(), 1, "sub-MiB caches stay single-shard");
        let (mid, _) = cache(8 << 20);
        assert_eq!(mid.shard_len(), 8);
        let (big, _) = cache(1 << 30);
        assert_eq!(big.shard_len(), 16, "stripe count is capped");
    }

    #[test]
    fn sharded_cache_roundtrips_and_invalidates_across_stripes() {
        let (c, io) = cache(8 << 20);
        assert!(c.shard_len() > 1);
        // Keys spread over stripes; every one must round-trip.
        for off in 0..200u64 {
            c.insert(key(off % 3, off), pts(64));
        }
        for off in 0..200u64 {
            assert!(c.get(key(off % 3, off)).is_some(), "off={off}");
        }
        assert!(c.bytes() <= c.capacity_bytes());
        // Invalidation must reach every stripe.
        let dropped = c.invalidate_file(0);
        assert_eq!(dropped, 67); // off % 3 == 0 for 0..200
        assert!(c.file_ids() == vec![1, 2]);
        assert_eq!(io.snapshot().cache_invalidations, 67);
    }

    #[test]
    fn concurrent_mixed_workload_stays_bounded() {
        let (c, _io) = cache(50 * (64 * 16 + 128));
        std::thread::scope(|s| {
            for thread in 0..4u64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = key(thread % 2, i % 100);
                        match c.get(k) {
                            Some(p) => assert_eq!(p.len(), 64),
                            None => c.insert(k, pts(64)),
                        }
                        if i % 97 == 0 {
                            c.invalidate_file(thread % 2);
                        }
                    }
                });
            }
        });
        assert!(c.bytes() <= c.capacity_bytes());
        assert!(c.len() <= 50);
    }
}
