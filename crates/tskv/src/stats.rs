//! Engine observability counters.
//!
//! The paper's claims are about *avoided work* — chunks not loaded,
//! points not merged. These counters let tests and the benchmark
//! harness assert that M4-LSM actually touched fewer chunks, instead of
//! inferring it from wall-clock time alone. The write side mirrors
//! that philosophy: WAL group-commit counters expose how many syscalls
//! and fsyncs a batch actually paid, and the compaction scheduler's
//! scheduled/completed/skipped counts make its hands-free behavior
//! assertable.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one snapshot's read activity.
#[derive(Debug, Default)]
pub struct IoStats {
    chunks_loaded: AtomicU64,
    bytes_read: AtomicU64,
    points_decoded: AtomicU64,
    timestamps_decoded: AtomicU64,
    mem_chunks_read: AtomicU64,
    pages_decoded: AtomicU64,
    pages_skipped: AtomicU64,
    pages_stat_answered: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_invalidations: AtomicU64,
    points_written: AtomicU64,
    wal_batches: AtomicU64,
    wal_bytes: AtomicU64,
    wal_syncs: AtomicU64,
    compactions_scheduled: AtomicU64,
    compactions_completed: AtomicU64,
    compactions_skipped: AtomicU64,
    compaction_bytes_read: AtomicU64,
    compaction_bytes_rewritten: AtomicU64,
    compaction_pages_copied: AtomicU64,
    compaction_pages_recoded: AtomicU64,
    catalog_hits: AtomicU64,
    catalog_misses: AtomicU64,
    stores_instantiated: AtomicU64,
}

/// Plain-value snapshot of [`IoStats`], subtractable for deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Chunk bodies read from disk.
    pub chunks_loaded: u64,
    /// Bytes of chunk bodies read from disk.
    pub bytes_read: u64,
    /// Points fully decoded (timestamp + value).
    pub points_decoded: u64,
    /// Timestamps decoded in timestamp-only (partial) reads.
    pub timestamps_decoded: u64,
    /// In-memory (memtable) chunk reads, which cost no I/O.
    pub mem_chunks_read: u64,
    /// On-disk pages actually decoded (a v1 monolithic chunk counts as
    /// one page).
    pub pages_decoded: u64,
    /// Pages of visited chunks that overlapped no queried range and
    /// were skipped without decode.
    pub pages_skipped: u64,
    /// Probes answered from page statistics alone — the page body was
    /// never read or decoded.
    pub pages_stat_answered: u64,
    /// Chunk-body reads served from the decoded-chunk cache (no I/O,
    /// no decode).
    pub cache_hits: u64,
    /// Chunk-body reads that missed the cache and went to disk.
    pub cache_misses: u64,
    /// Decoded chunks evicted to stay within the cache capacity.
    pub cache_evictions: u64,
    /// Decoded chunks dropped because their file was retired
    /// (compaction).
    pub cache_invalidations: u64,
    /// Points accepted into a memtable (insert or write_batch).
    pub points_written: u64,
    /// WAL group-commit batches written through to a log file (each is
    /// one `write_all` syscall covering every frame of the batch).
    pub wal_batches: u64,
    /// Bytes appended to WAL files across all group commits.
    pub wal_bytes: u64,
    /// Explicit WAL fsyncs (`fdatasync`) issued by the commit path.
    pub wal_syncs: u64,
    /// Compactions queued by the background scheduler.
    pub compactions_scheduled: u64,
    /// Scheduled compactions that merged at least one file.
    pub compactions_completed: u64,
    /// Scheduled compactions that found nothing to do (lost a race
    /// with a manual compact or an in-flight one) or failed.
    pub compactions_skipped: u64,
    /// Input chunk-body bytes read by compaction merges (kept out of
    /// `bytes_read`, which meters the query read path).
    pub compaction_bytes_read: u64,
    /// Output bytes produced by compaction's re-encode path. Clean
    /// pages copied byte-for-byte are *excluded*: the gap between this
    /// and `compaction_bytes_read` is the write amplification avoided.
    pub compaction_bytes_rewritten: u64,
    /// Clean pages compaction copied raw (CRC-revalidated, never
    /// decoded).
    pub compaction_pages_copied: u64,
    /// Input pages compaction decoded and re-encoded (a v1 monolithic
    /// chunk counts as one page).
    pub compaction_pages_recoded: u64,
    /// Pooled read-buffer takes served from a thread freelist
    /// (process-wide: the pool in `tsfile::bufpool` is shared by every
    /// store in the process, so deltas — not absolutes — are the
    /// meaningful per-workload reading).
    pub pool_hits: u64,
    /// Pooled read-buffer takes that had to allocate (process-wide,
    /// see `pool_hits`).
    pub pool_misses: u64,
    /// Series-catalog lookups that found an existing id (one striped
    /// read-lock probe, no allocation).
    pub catalog_hits: u64,
    /// Series-catalog lookups for a name with no interned id (first
    /// touch of a series, or a probe for an unknown name).
    pub catalog_misses: u64,
    /// Lazy `SeriesStore` instantiations: registered series that were
    /// first *touched* (written, deleted, or recovered with data).
    /// `registered − instantiated` series cost no memtable, no file
    /// handle, and no directory entry.
    pub stores_instantiated: u64,
}

impl IoStats {
    pub(crate) fn record_chunk_load(&self, bytes: u64, points: u64) {
        self.chunks_loaded.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.points_decoded.fetch_add(points, Ordering::Relaxed);
    }

    pub(crate) fn record_timestamp_load(&self, bytes: u64, timestamps: u64) {
        self.chunks_loaded.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.timestamps_decoded
            .fetch_add(timestamps, Ordering::Relaxed);
    }

    pub(crate) fn record_mem_read(&self, points: u64) {
        self.mem_chunks_read.fetch_add(1, Ordering::Relaxed);
        self.points_decoded.fetch_add(points, Ordering::Relaxed);
    }

    /// Record `n` on-disk pages decoded. Public: the query layer (m4)
    /// drives page-granular loads and reports what it decoded.
    pub fn record_pages_decoded(&self, n: u64) {
        self.pages_decoded.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` pages skipped without decode (no overlap with the
    /// queried range).
    pub fn record_pages_skipped(&self, n: u64) {
        self.pages_skipped.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a probe answered purely from page statistics.
    pub fn record_page_stat_answered(&self) {
        self.pages_stat_answered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_invalidations(&self, n: u64) {
        self.cache_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_points_written(&self, n: u64) {
        self.points_written.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_batch(&self, bytes: u64) {
        self.wal_batches.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_wal_sync(&self) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compaction_scheduled(&self) {
        self.compactions_scheduled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compaction_completed(&self) {
        self.compactions_completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compaction_skipped(&self) {
        self.compactions_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one compaction run's write-amplification tallies: input
    /// bytes read, bytes re-encoded (copied bytes excluded), and the
    /// clean/dirty page split.
    pub(crate) fn record_compaction_io(
        &self,
        bytes_read: u64,
        bytes_rewritten: u64,
        pages_copied: u64,
        pages_recoded: u64,
    ) {
        self.compaction_bytes_read
            .fetch_add(bytes_read, Ordering::Relaxed);
        self.compaction_bytes_rewritten
            .fetch_add(bytes_rewritten, Ordering::Relaxed);
        self.compaction_pages_copied
            .fetch_add(pages_copied, Ordering::Relaxed);
        self.compaction_pages_recoded
            .fetch_add(pages_recoded, Ordering::Relaxed);
    }

    pub(crate) fn record_catalog_hit(&self) {
        self.catalog_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_catalog_miss(&self) {
        self.catalog_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_store_instantiated(&self) {
        self.stores_instantiated.fetch_add(1, Ordering::Relaxed);
    }

    /// Capture current counter values. The buffer-pool counters come
    /// from the process-wide pool in `tsfile::bufpool` rather than
    /// per-engine atomics, so every snapshot carries them without the
    /// read path having to thread a stats handle into `tsfile`.
    pub fn snapshot(&self) -> IoSnapshot {
        let (pool_hits, pool_misses) = tsfile::bufpool::pool_counters();
        IoSnapshot {
            chunks_loaded: self.chunks_loaded.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            points_decoded: self.points_decoded.load(Ordering::Relaxed),
            timestamps_decoded: self.timestamps_decoded.load(Ordering::Relaxed),
            mem_chunks_read: self.mem_chunks_read.load(Ordering::Relaxed),
            pages_decoded: self.pages_decoded.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
            pages_stat_answered: self.pages_stat_answered.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            points_written: self.points_written.load(Ordering::Relaxed),
            wal_batches: self.wal_batches.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            compactions_scheduled: self.compactions_scheduled.load(Ordering::Relaxed),
            compactions_completed: self.compactions_completed.load(Ordering::Relaxed),
            compactions_skipped: self.compactions_skipped.load(Ordering::Relaxed),
            compaction_bytes_read: self.compaction_bytes_read.load(Ordering::Relaxed),
            compaction_bytes_rewritten: self.compaction_bytes_rewritten.load(Ordering::Relaxed),
            compaction_pages_copied: self.compaction_pages_copied.load(Ordering::Relaxed),
            compaction_pages_recoded: self.compaction_pages_recoded.load(Ordering::Relaxed),
            pool_hits,
            pool_misses,
            catalog_hits: self.catalog_hits.load(Ordering::Relaxed),
            catalog_misses: self.catalog_misses.load(Ordering::Relaxed),
            stores_instantiated: self.stores_instantiated.load(Ordering::Relaxed),
        }
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            chunks_loaded: self.chunks_loaded - rhs.chunks_loaded,
            bytes_read: self.bytes_read - rhs.bytes_read,
            points_decoded: self.points_decoded - rhs.points_decoded,
            timestamps_decoded: self.timestamps_decoded - rhs.timestamps_decoded,
            mem_chunks_read: self.mem_chunks_read - rhs.mem_chunks_read,
            pages_decoded: self.pages_decoded - rhs.pages_decoded,
            pages_skipped: self.pages_skipped - rhs.pages_skipped,
            pages_stat_answered: self.pages_stat_answered - rhs.pages_stat_answered,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            cache_evictions: self.cache_evictions - rhs.cache_evictions,
            cache_invalidations: self.cache_invalidations - rhs.cache_invalidations,
            points_written: self.points_written - rhs.points_written,
            wal_batches: self.wal_batches - rhs.wal_batches,
            wal_bytes: self.wal_bytes - rhs.wal_bytes,
            wal_syncs: self.wal_syncs - rhs.wal_syncs,
            compactions_scheduled: self.compactions_scheduled - rhs.compactions_scheduled,
            compactions_completed: self.compactions_completed - rhs.compactions_completed,
            compactions_skipped: self.compactions_skipped - rhs.compactions_skipped,
            compaction_bytes_read: self.compaction_bytes_read - rhs.compaction_bytes_read,
            compaction_bytes_rewritten: self.compaction_bytes_rewritten
                - rhs.compaction_bytes_rewritten,
            compaction_pages_copied: self.compaction_pages_copied - rhs.compaction_pages_copied,
            compaction_pages_recoded: self.compaction_pages_recoded - rhs.compaction_pages_recoded,
            pool_hits: self.pool_hits - rhs.pool_hits,
            pool_misses: self.pool_misses - rhs.pool_misses,
            catalog_hits: self.catalog_hits - rhs.catalog_hits,
            catalog_misses: self.catalog_misses - rhs.catalog_misses,
            stores_instantiated: self.stores_instantiated - rhs.stores_instantiated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_chunk_load(100, 10);
        s.record_chunk_load(50, 5);
        s.record_timestamp_load(30, 7);
        s.record_mem_read(3);
        s.record_pages_decoded(4);
        s.record_pages_skipped(6);
        s.record_page_stat_answered();
        let snap = s.snapshot();
        assert_eq!(snap.chunks_loaded, 3);
        assert_eq!(snap.bytes_read, 180);
        assert_eq!(snap.points_decoded, 18);
        assert_eq!(snap.timestamps_decoded, 7);
        assert_eq!(snap.mem_chunks_read, 1);
        assert_eq!(snap.pages_decoded, 4);
        assert_eq!(snap.pages_skipped, 6);
        assert_eq!(snap.pages_stat_answered, 1);
    }

    #[test]
    fn write_side_counters_accumulate() {
        let s = IoStats::default();
        s.record_points_written(100);
        s.record_wal_batch(4096);
        s.record_wal_batch(1024);
        s.record_wal_sync();
        s.record_compaction_scheduled();
        s.record_compaction_completed();
        s.record_compaction_skipped();
        s.record_compaction_io(1000, 200, 7, 3);
        s.record_compaction_io(500, 0, 2, 0);
        let snap = s.snapshot();
        assert_eq!(snap.points_written, 100);
        assert_eq!(snap.wal_batches, 2);
        assert_eq!(snap.wal_bytes, 5120);
        assert_eq!(snap.wal_syncs, 1);
        assert_eq!(snap.compactions_scheduled, 1);
        assert_eq!(snap.compactions_completed, 1);
        assert_eq!(snap.compactions_skipped, 1);
        assert_eq!(snap.compaction_bytes_read, 1500);
        assert_eq!(snap.compaction_bytes_rewritten, 200);
        assert_eq!(snap.compaction_pages_copied, 9);
        assert_eq!(snap.compaction_pages_recoded, 3);
    }

    #[test]
    fn catalog_counters_accumulate() {
        let s = IoStats::default();
        s.record_catalog_hit();
        s.record_catalog_hit();
        s.record_catalog_miss();
        s.record_store_instantiated();
        let snap = s.snapshot();
        assert_eq!(snap.catalog_hits, 2);
        assert_eq!(snap.catalog_misses, 1);
        assert_eq!(snap.stores_instantiated, 1);
    }

    #[test]
    fn snapshot_carries_pool_counters() {
        // Exercise the pool, then check the process-wide counters flow
        // into the snapshot.
        drop(tsfile::bufpool::take(64));
        let _warm = tsfile::bufpool::take(64);
        let snap = IoStats::default().snapshot();
        assert!(snap.pool_hits + snap.pool_misses > 0);
    }

    #[test]
    fn snapshot_diff() {
        let s = IoStats::default();
        s.record_chunk_load(10, 1);
        let before = s.snapshot();
        s.record_chunk_load(20, 2);
        let delta = s.snapshot() - before;
        assert_eq!(delta.chunks_loaded, 1);
        assert_eq!(delta.bytes_read, 20);
        assert_eq!(delta.points_decoded, 2);
    }
}
