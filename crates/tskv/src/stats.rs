//! Read-path observability counters.
//!
//! The paper's claims are about *avoided work* — chunks not loaded,
//! points not merged. These counters let tests and the benchmark
//! harness assert that M4-LSM actually touched fewer chunks, instead of
//! inferring it from wall-clock time alone.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one snapshot's read activity.
#[derive(Debug, Default)]
pub struct IoStats {
    chunks_loaded: AtomicU64,
    bytes_read: AtomicU64,
    points_decoded: AtomicU64,
    timestamps_decoded: AtomicU64,
    mem_chunks_read: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_invalidations: AtomicU64,
}

/// Plain-value snapshot of [`IoStats`], subtractable for deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Chunk bodies read from disk.
    pub chunks_loaded: u64,
    /// Bytes of chunk bodies read from disk.
    pub bytes_read: u64,
    /// Points fully decoded (timestamp + value).
    pub points_decoded: u64,
    /// Timestamps decoded in timestamp-only (partial) reads.
    pub timestamps_decoded: u64,
    /// In-memory (memtable) chunk reads, which cost no I/O.
    pub mem_chunks_read: u64,
    /// Chunk-body reads served from the decoded-chunk cache (no I/O,
    /// no decode).
    pub cache_hits: u64,
    /// Chunk-body reads that missed the cache and went to disk.
    pub cache_misses: u64,
    /// Decoded chunks evicted to stay within the cache capacity.
    pub cache_evictions: u64,
    /// Decoded chunks dropped because their file was retired
    /// (compaction).
    pub cache_invalidations: u64,
}

impl IoStats {
    pub(crate) fn record_chunk_load(&self, bytes: u64, points: u64) {
        self.chunks_loaded.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.points_decoded.fetch_add(points, Ordering::Relaxed);
    }

    pub(crate) fn record_timestamp_load(&self, bytes: u64, timestamps: u64) {
        self.chunks_loaded.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.timestamps_decoded.fetch_add(timestamps, Ordering::Relaxed);
    }

    pub(crate) fn record_mem_read(&self, points: u64) {
        self.mem_chunks_read.fetch_add(1, Ordering::Relaxed);
        self.points_decoded.fetch_add(points, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_cache_invalidations(&self, n: u64) {
        self.cache_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            chunks_loaded: self.chunks_loaded.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            points_decoded: self.points_decoded.load(Ordering::Relaxed),
            timestamps_decoded: self.timestamps_decoded.load(Ordering::Relaxed),
            mem_chunks_read: self.mem_chunks_read.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
        }
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            chunks_loaded: self.chunks_loaded - rhs.chunks_loaded,
            bytes_read: self.bytes_read - rhs.bytes_read,
            points_decoded: self.points_decoded - rhs.points_decoded,
            timestamps_decoded: self.timestamps_decoded - rhs.timestamps_decoded,
            mem_chunks_read: self.mem_chunks_read - rhs.mem_chunks_read,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            cache_evictions: self.cache_evictions - rhs.cache_evictions,
            cache_invalidations: self.cache_invalidations - rhs.cache_invalidations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_chunk_load(100, 10);
        s.record_chunk_load(50, 5);
        s.record_timestamp_load(30, 7);
        s.record_mem_read(3);
        let snap = s.snapshot();
        assert_eq!(snap.chunks_loaded, 3);
        assert_eq!(snap.bytes_read, 180);
        assert_eq!(snap.points_decoded, 18);
        assert_eq!(snap.timestamps_decoded, 7);
        assert_eq!(snap.mem_chunks_read, 1);
    }

    #[test]
    fn snapshot_diff() {
        let s = IoStats::default();
        s.record_chunk_load(10, 1);
        let before = s.snapshot();
        s.record_chunk_load(20, 2);
        let delta = s.snapshot() - before;
        assert_eq!(delta.chunks_loaded, 1);
        assert_eq!(delta.bytes_read, 20);
        assert_eq!(delta.points_decoded, 2);
    }
}
