//! Engine change notifications: a bounded, lossy-but-honest channel
//! telling downstream consumers (the tsnet subscription registry) that
//! a series' logical contents changed.
//!
//! Design constraints, in priority order:
//!
//! 1. **The write path never blocks on a consumer.** Publishing uses
//!    `try_send` on a bounded queue; a full queue drops the event and
//!    raises the listener's *missed* flag instead of stalling ingest.
//! 2. **Loss is observable, never silent.** A consumer that sees the
//!    missed flag knows its incremental state may have gaps and must
//!    resynchronize from an authoritative [`crate::TsKv::snapshot`].
//! 3. **Events carry enough to maintain state incrementally.** Write
//!    events include the written points (shared via `Arc`, one clone
//!    per listener is a pointer bump); delete events carry the range.
//!
//! Flush and compaction do **not** change a series' logical contents
//! (they move points between the memtable and sealed files), so only
//! an informational [`ChangeEvent::Flush`] is published for them —
//! consumers tracking logical state may ignore it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use tsfile::types::Point;

use crate::catalog::SeriesId;

/// One logical mutation of a series, as observed by the write path.
///
/// Events carry the interned [`SeriesId`], not the name: publishing is
/// on the hot write path and must not clone a string per listener.
/// Consumers that need the name resolve it once via
/// [`crate::TsKv::series_name`].
#[derive(Debug, Clone)]
pub enum ChangeEvent {
    /// Points were inserted (any time order; duplicates overwrite).
    /// The slice is exactly what the producing call wrote, in call
    /// order — replaying these in event order against a state that was
    /// authoritative beforehand reproduces the engine's contents.
    Write {
        /// Interned series id.
        series: SeriesId,
        /// The written points, shared across listeners.
        points: Arc<Vec<Point>>,
    },
    /// A range tombstone `[start, end]` (inclusive) was recorded.
    Delete {
        /// Interned series id.
        series: SeriesId,
        /// First deleted timestamp (inclusive).
        start: i64,
        /// Last deleted timestamp (inclusive).
        end: i64,
    },
    /// A memtable flush sealed a file. Informational: logical series
    /// contents are unchanged.
    Flush {
        /// Interned series id.
        series: SeriesId,
    },
}

impl ChangeEvent {
    /// The series this event concerns.
    pub fn series(&self) -> SeriesId {
        match self {
            ChangeEvent::Write { series, .. }
            | ChangeEvent::Delete { series, .. }
            | ChangeEvent::Flush { series } => *series,
        }
    }
}

/// One registered listener: its bounded queue plus the shared
/// bookkeeping the receiving half observes.
struct Listener {
    tx: SyncSender<ChangeEvent>,
    sent: Arc<AtomicU64>,
    missed: Arc<AtomicBool>,
}

/// The engine-held publishing side. Cheap when nobody listens: one
/// relaxed atomic load per mutation.
#[derive(Default)]
pub(crate) struct ChangeSink {
    listeners: Mutex<Vec<Listener>>,
    has_listeners: AtomicBool,
}

impl std::fmt::Debug for ChangeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChangeSink")
            .field("has_listeners", &self.has_listeners.load(Ordering::Relaxed))
            .finish()
    }
}

impl ChangeSink {
    /// Whether any listener is registered (fast path for the write
    /// path: skip event construction entirely when nobody cares).
    pub(crate) fn active(&self) -> bool {
        self.has_listeners.load(Ordering::Acquire)
    }

    /// Register a new listener with a queue of `depth` events.
    pub(crate) fn register(&self, depth: usize) -> ChangeRx {
        let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
        let sent = Arc::new(AtomicU64::new(0));
        let missed = Arc::new(AtomicBool::new(false));
        let mut listeners = self.listeners.lock();
        listeners.push(Listener {
            tx,
            sent: Arc::clone(&sent),
            missed: Arc::clone(&missed),
        });
        self.has_listeners.store(true, Ordering::Release);
        ChangeRx { rx, sent, missed }
    }

    /// Deliver `event` to every live listener without blocking. A full
    /// queue raises that listener's missed flag; a disconnected
    /// receiver is dropped from the list.
    pub(crate) fn publish(&self, event: &ChangeEvent) {
        if !self.active() {
            return;
        }
        let mut listeners = self.listeners.lock();
        listeners.retain(|l| {
            // Count before sending so a racing quiesce poll never sees
            // a delivered-but-uncounted event; undo on failure (the
            // transient overcount only makes such a poll conservative).
            l.sent.fetch_add(1, Ordering::Release);
            match l.tx.try_send(event.clone()) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    l.sent.fetch_sub(1, Ordering::Release);
                    l.missed.store(true, Ordering::Release);
                    true
                }
                Err(TrySendError::Disconnected(_)) => {
                    l.sent.fetch_sub(1, Ordering::Release);
                    false
                }
            }
        });
        if listeners.is_empty() {
            self.has_listeners.store(false, Ordering::Release);
        }
    }
}

/// The consuming half of one change subscription (see
/// [`crate::TsKv::subscribe_changes`]).
pub struct ChangeRx {
    rx: Receiver<ChangeEvent>,
    sent: Arc<AtomicU64>,
    missed: Arc<AtomicBool>,
}

impl std::fmt::Debug for ChangeRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChangeRx")
            .field("sent", &self.sent())
            .field("missed", &self.missed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Error: the publishing engine was dropped; no further events will
/// ever arrive on this channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("change channel closed (engine dropped)")
    }
}

impl std::error::Error for ChannelClosed {}

/// A cheap, clonable view of one change subscription's progress
/// counters — for quiesce-style observers that need to compare "events
/// published" against "events processed" while another thread owns the
/// receiving half.
#[derive(Debug, Clone)]
pub struct ChangeObserver {
    sent: Arc<AtomicU64>,
    missed: Arc<AtomicBool>,
}

impl ChangeObserver {
    /// Events successfully enqueued so far (see [`ChangeRx::sent`]).
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Acquire)
    }

    /// Peek the missed flag without clearing it.
    pub fn missed(&self) -> bool {
        self.missed.load(Ordering::Acquire)
    }
}

impl ChangeRx {
    /// A shared handle onto this channel's progress counters, usable
    /// from threads that do not own the receiver.
    pub fn observer(&self) -> ChangeObserver {
        ChangeObserver {
            sent: Arc::clone(&self.sent),
            missed: Arc::clone(&self.missed),
        }
    }

    /// Receive the next event, waiting up to `timeout`. `Ok(None)`
    /// means the timeout elapsed; `Err` means the engine was dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<ChangeEvent>, ChannelClosed> {
        match self.rx.recv_timeout(timeout) {
            Ok(e) => Ok(Some(e)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ChannelClosed),
        }
    }

    /// Receive without waiting.
    pub fn try_recv(&self) -> Option<ChangeEvent> {
        self.rx.try_recv().ok()
    }

    /// Events successfully enqueued so far (delivered plus still
    /// queued; missed events are not counted). A consumer that has
    /// processed this many events — with writers quiescent — has seen
    /// everything.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Acquire)
    }

    /// Read and clear the missed flag. `true` means at least one event
    /// was dropped because the queue was full: incremental state built
    /// from this channel may have gaps and must be resynchronized.
    pub fn take_missed(&self) -> bool {
        self.missed.swap(false, Ordering::AcqRel)
    }

    /// Peek the missed flag without clearing it.
    pub fn missed(&self) -> bool {
        self.missed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    const S: SeriesId = SeriesId(3);

    fn write_event(series: SeriesId, pts: &[(i64, f64)]) -> ChangeEvent {
        ChangeEvent::Write {
            series,
            points: Arc::new(pts.iter().map(|&(t, v)| Point::new(t, v)).collect()),
        }
    }

    #[test]
    fn publish_without_listeners_is_a_noop() {
        let sink = ChangeSink::default();
        assert!(!sink.active());
        sink.publish(&write_event(S, &[(1, 1.0)]));
    }

    #[test]
    fn events_flow_in_order_and_count() {
        let sink = ChangeSink::default();
        let rx = sink.register(8);
        assert!(sink.active());
        sink.publish(&write_event(S, &[(1, 1.0)]));
        sink.publish(&ChangeEvent::Delete {
            series: S,
            start: 0,
            end: 10,
        });
        sink.publish(&ChangeEvent::Flush { series: S });
        assert_eq!(rx.sent(), 3);
        assert!(matches!(rx.try_recv(), Some(ChangeEvent::Write { .. })));
        match rx.try_recv() {
            Some(ChangeEvent::Delete { start, end, .. }) => {
                assert_eq!((start, end), (0, 10));
            }
            other => panic!("expected delete, got {other:?}"),
        }
        assert!(matches!(rx.try_recv(), Some(ChangeEvent::Flush { .. })));
        assert!(rx.try_recv().is_none());
        assert!(!rx.missed());
    }

    #[test]
    fn overflow_sets_missed_and_never_blocks() {
        let sink = ChangeSink::default();
        let rx = sink.register(2);
        for i in 0..5 {
            sink.publish(&write_event(S, &[(i, 1.0)]));
        }
        // Two queued, three dropped; sent counts only deliveries.
        assert_eq!(rx.sent(), 2);
        assert!(rx.missed());
        assert!(rx.take_missed());
        assert!(!rx.missed());
        assert!(rx.try_recv().is_some());
        assert!(rx.try_recv().is_some());
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn dropped_listener_is_pruned() {
        let sink = ChangeSink::default();
        let rx = sink.register(2);
        drop(rx);
        sink.publish(&write_event(S, &[(1, 1.0)]));
        assert!(!sink.active());
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_dead() {
        let sink = ChangeSink::default();
        let rx = sink.register(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1))
                .map(|e| e.is_some()),
            Ok(false)
        );
        sink.publish(&write_event(S, &[(1, 1.0)]));
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(100)),
            Ok(Some(ChangeEvent::Write { .. }))
        ));
        drop(sink);
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
    }

    #[test]
    fn event_series_accessor() {
        assert_eq!(write_event(SeriesId(42), &[]).series(), SeriesId(42));
    }
}
