//! The in-memory write buffer of one series.
//!
//! A `BTreeMap<Timestamp, Value>` keeps points sorted and deduplicated:
//! re-inserting a timestamp overwrites in place (an in-memory update
//! needs no version bookkeeping — only flushed, immutable chunks do).
//! Deletes covering buffered points remove them immediately, so the
//! memtable always holds only latest points.

use std::collections::BTreeMap;

use tsfile::types::{Point, TimeRange, Timestamp, Value};

/// Sorted in-memory buffer of one series' unflushed points.
#[derive(Debug, Default)]
pub struct MemTable {
    data: BTreeMap<Timestamp, Value>,
}

impl MemTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite a point. Returns `true` if the timestamp was
    /// new, `false` if it overwrote a buffered point.
    pub fn insert(&mut self, p: Point) -> bool {
        self.data.insert(p.t, p.v).is_none()
    }

    /// Insert a point only if its timestamp is not already buffered.
    /// Used when returning points to the buffer after a failed flush:
    /// anything re-written in the meantime is newer and must win.
    pub fn insert_if_absent(&mut self, p: Point) -> bool {
        use std::collections::btree_map::Entry;
        match self.data.entry(p.t) {
            Entry::Vacant(slot) => {
                slot.insert(p.v);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// Remove all buffered points covered by `range`; returns how many
    /// were removed.
    pub fn delete_range(&mut self, range: TimeRange) -> usize {
        if range.is_empty() {
            return 0;
        }
        let doomed: Vec<Timestamp> = self
            .data
            .range(range.start..=range.end)
            .map(|(&t, _)| t)
            .collect();
        for t in &doomed {
            self.data.remove(t);
        }
        doomed.len()
    }

    /// Number of buffered points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Time range spanned by buffered points, if any.
    pub fn time_range(&self) -> Option<TimeRange> {
        let first = self.data.keys().next()?;
        let last = self.data.keys().next_back()?;
        Some(TimeRange::new(*first, *last))
    }

    /// Copy the buffered points in time order without draining.
    pub fn to_points(&self) -> Vec<Point> {
        self.data.iter().map(|(&t, &v)| Point::new(t, v)).collect()
    }

    /// Drain all buffered points in time order (the flush path).
    pub fn drain_sorted(&mut self) -> Vec<Point> {
        let data = std::mem::take(&mut self.data);
        data.into_iter().map(|(t, v)| Point::new(t, v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_and_dedups() {
        let mut m = MemTable::new();
        assert!(m.insert(Point::new(30, 3.0)));
        assert!(m.insert(Point::new(10, 1.0)));
        assert!(m.insert(Point::new(20, 2.0)));
        assert!(!m.insert(Point::new(20, 9.0))); // overwrite
        assert_eq!(m.len(), 3);
        let pts = m.to_points();
        assert_eq!(
            pts,
            vec![
                Point::new(10, 1.0),
                Point::new(20, 9.0),
                Point::new(30, 3.0)
            ]
        );
    }

    #[test]
    fn insert_if_absent_never_overwrites() {
        let mut m = MemTable::new();
        assert!(m.insert_if_absent(Point::new(10, 1.0)));
        m.insert(Point::new(20, 2.0));
        assert!(!m.insert_if_absent(Point::new(20, 9.0)));
        assert_eq!(
            m.to_points(),
            vec![Point::new(10, 1.0), Point::new(20, 2.0)]
        );
    }

    #[test]
    fn delete_range_inclusive() {
        let mut m = MemTable::new();
        for t in [10, 20, 30, 40] {
            m.insert(Point::new(t, t as f64));
        }
        assert_eq!(m.delete_range(TimeRange::new(20, 30)), 2);
        assert_eq!(
            m.to_points(),
            vec![Point::new(10, 10.0), Point::new(40, 40.0)]
        );
        assert_eq!(m.delete_range(TimeRange::new(100, 200)), 0);
        assert_eq!(m.delete_range(TimeRange::new(30, 20)), 0); // empty range
    }

    #[test]
    fn drain_empties() {
        let mut m = MemTable::new();
        m.insert(Point::new(5, 1.0));
        m.insert(Point::new(1, 2.0));
        let pts = m.drain_sorted();
        assert_eq!(pts, vec![Point::new(1, 2.0), Point::new(5, 1.0)]);
        assert!(m.is_empty());
        assert!(m.time_range().is_none());
    }

    #[test]
    fn time_range_tracks_extremes() {
        let mut m = MemTable::new();
        assert!(m.time_range().is_none());
        m.insert(Point::new(50, 0.0));
        m.insert(Point::new(-10, 0.0));
        assert_eq!(m.time_range(), Some(TimeRange::new(-10, 50)));
    }
}
