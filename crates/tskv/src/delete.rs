//! Delete semantics helpers.
//!
//! A delete `D^κ` (re-exported from [`tsfile::ModEntry`]) erases every
//! point whose chunk has a *smaller* version than the delete
//! (Definition 2.7). These helpers centralize that rule so the merge
//! reader and the M4-LSM verifier cannot drift apart.

use tsfile::types::{TimeRange, Timestamp, Version};
use tsfile::ModEntry;

/// Whether a point at `t` written with `chunk_version` is erased by any
/// delete in `deletes`.
#[inline]
pub fn is_deleted(t: Timestamp, chunk_version: Version, deletes: &[ModEntry]) -> bool {
    deletes
        .iter()
        .any(|d| d.applies_to(chunk_version) && d.covers(t))
}

/// Clip a chunk's effective time interval by the deletes that apply to
/// it: the paper's §3.3 lazy metadata update, which shrinks
/// `[FP(C).t, LP(C).t]` past delete ranges that cover either end,
/// without loading the chunk.
///
/// Returns `None` when the interval is entirely consumed. The result
/// may be non-tight (a delete strictly inside the interval does not
/// shrink it) — exactly the approximation the paper accepts.
pub fn clip_interval(
    mut range: TimeRange,
    chunk_version: Version,
    deletes: &[ModEntry],
) -> Option<TimeRange> {
    // Iterate until a fixed point: clipping one end may expose another
    // delete covering the new end.
    loop {
        let mut changed = false;
        for d in deletes {
            if !d.applies_to(chunk_version) {
                continue;
            }
            if range.is_empty() {
                return None;
            }
            if d.range.start <= range.start && range.start <= d.range.end {
                range.start = d.range.end.saturating_add(1);
                changed = true;
            }
            if d.range.start <= range.end && range.end <= d.range.end {
                range.end = d.range.start.saturating_sub(1);
                changed = true;
            }
        }
        if range.is_empty() {
            return None;
        }
        if !changed {
            return Some(range);
        }
    }
}

/// Streaming delete filter for time-ascending point sequences.
///
/// The paper notes IoTDB's "CPU-efficient delete sort operation" keeps
/// the baseline's cost flat as deletes grow (§4.4). This is that
/// operation: deletes are sorted by range start once, and a two-pointer
/// sweep maintains the set of ranges covering the current timestamp, so
/// each `is_deleted` probe costs O(|active|) instead of O(|deletes|).
///
/// Probes must be issued with non-decreasing timestamps.
#[derive(Debug)]
pub struct DeleteSweep<'a> {
    /// All deletes, sorted by range start.
    sorted: Vec<&'a ModEntry>,
    /// Next delete to activate.
    next: usize,
    /// Deletes whose range might still cover current/future probes.
    active: Vec<&'a ModEntry>,
}

impl<'a> DeleteSweep<'a> {
    /// Build a sweep over a delete set (any order; empty ranges are
    /// dropped).
    pub fn new(deletes: &'a [ModEntry]) -> Self {
        let mut sorted: Vec<&'a ModEntry> =
            deletes.iter().filter(|d| !d.range.is_empty()).collect();
        sorted.sort_by_key(|d| d.range.start);
        DeleteSweep {
            sorted,
            next: 0,
            active: Vec::new(),
        }
    }

    /// Whether a point at `t` written at `chunk_version` is erased.
    /// `t` must be ≥ every previously probed timestamp.
    pub fn is_deleted(&mut self, t: Timestamp, chunk_version: Version) -> bool {
        while self.next < self.sorted.len() && self.sorted[self.next].range.start <= t {
            self.active.push(self.sorted[self.next]);
            self.next += 1;
        }
        self.active.retain(|d| d.range.end >= t);
        self.active
            .iter()
            .any(|d| d.applies_to(chunk_version) && d.covers(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(version: u64, start: i64, end: i64) -> ModEntry {
        ModEntry::new(Version(version), start, end)
    }

    #[test]
    fn is_deleted_respects_versions() {
        let deletes = vec![d(5, 10, 20)];
        assert!(is_deleted(15, Version(4), &deletes));
        assert!(!is_deleted(15, Version(5), &deletes)); // same version: not applied
        assert!(!is_deleted(15, Version(6), &deletes)); // later chunk
        assert!(!is_deleted(25, Version(4), &deletes)); // outside range
    }

    #[test]
    fn clip_left_edge() {
        let r = clip_interval(TimeRange::new(0, 100), Version(1), &[d(2, -10, 30)]);
        assert_eq!(r, Some(TimeRange::new(31, 100)));
    }

    #[test]
    fn clip_right_edge() {
        let r = clip_interval(TimeRange::new(0, 100), Version(1), &[d(2, 80, 200)]);
        assert_eq!(r, Some(TimeRange::new(0, 79)));
    }

    #[test]
    fn clip_interior_is_nontight_noop() {
        let r = clip_interval(TimeRange::new(0, 100), Version(1), &[d(2, 40, 60)]);
        assert_eq!(r, Some(TimeRange::new(0, 100)));
    }

    #[test]
    fn clip_total_consumption() {
        let r = clip_interval(TimeRange::new(10, 20), Version(1), &[d(2, 0, 100)]);
        assert_eq!(r, None);
    }

    #[test]
    fn clip_cascading_deletes() {
        // First delete clips the start to 21; second covers 21..=40.
        let deletes = vec![d(2, 0, 20), d(3, 21, 40)];
        let r = clip_interval(TimeRange::new(5, 100), Version(1), &deletes);
        assert_eq!(r, Some(TimeRange::new(41, 100)));
    }

    #[test]
    fn clip_ignores_older_deletes() {
        let r = clip_interval(TimeRange::new(0, 100), Version(5), &[d(3, 0, 50)]);
        assert_eq!(r, Some(TimeRange::new(0, 100)));
    }

    #[test]
    fn sweep_matches_naive_on_ascending_probes() {
        let deletes = vec![d(2, 0, 20), d(5, 10, 40), d(3, 100, 100), d(9, 15, 18)];
        // One sweep per version (probes must ascend within a sweep).
        for v in [1u64, 2, 4, 6, 10] {
            let mut sweep = DeleteSweep::new(&deletes);
            for t in -5..=120 {
                assert_eq!(
                    sweep.is_deleted(t, Version(v)),
                    is_deleted(t, Version(v), &deletes),
                    "t={t} v={v}"
                );
            }
        }
    }

    #[test]
    fn sweep_empty_deletes() {
        let mut sweep = DeleteSweep::new(&[]);
        assert!(!sweep.is_deleted(5, Version(1)));
    }

    #[test]
    fn sweep_drops_empty_ranges() {
        let deletes = vec![ModEntry::new(Version(2), 10, 5)]; // empty
        let mut sweep = DeleteSweep::new(&deletes);
        assert!(!sweep.is_deleted(7, Version(1)));
    }

    #[test]
    fn clip_both_edges_meet() {
        let deletes = vec![d(2, 0, 49), d(3, 50, 100)];
        assert_eq!(
            clip_interval(TimeRange::new(10, 90), Version(1), &deletes),
            None
        );
    }
}
