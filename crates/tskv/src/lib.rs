//! # tskv — an LSM-based time series storage engine
//!
//! The storage substrate assumed by the M4-LSM paper ("Time Series
//! Representation for Visualization in Apache IoTDB", SIGMOD 2024),
//! modeled on Apache IoTDB's write path at the granularity the paper's
//! operators interact with:
//!
//! * **Write path**: inserts land in a per-series in-memory
//!   [`memtable::MemTable`]; when it reaches the configured point
//!   threshold it is flushed — sorted, split into chunks of
//!   `points_per_chunk` points (IoTDB's
//!   `avg_series_point_number_threshold`, 1000 in the paper's Table 4),
//!   and written as one sealed TsFile. Every chunk gets a fresh global
//!   [`tsfile::Version`] `κ`.
//! * **Deletes** (`D^κ`) are append-only range tombstones written to the
//!   per-file mods log with their own version; they are never eagerly
//!   applied to sealed files — only [`compaction`] folds them in, and
//!   it is opt-in (off by default, as in the paper's experimental
//!   setup).
//! * **Read path**: [`readers::MetadataReader`] serves chunk metadata
//!   (statistics + version) without touching chunk bodies;
//!   [`readers::DataReader`] loads and decodes chunk bodies (with
//!   partial, early-terminating timestamp decode for the paper's
//!   "partial scan"); [`readers::MergeReader`] assembles the merged,
//!   latest-points-only series `M(ℂ, 𝔻)` of Definition 2.7 — this is
//!   what the M4-UDF baseline consumes and what M4-LSM avoids.
//!
//! Out-of-order arrivals produce time-overlapping chunks whenever write
//! batches straddle flushes, which is exactly the overlap structure the
//! paper's §4.3 experiment varies. There is no seq/unseq file split,
//! and compaction is off by default: the paper disables it (Table 4:
//! `compaction_strategy = NO_COMPACTION`), so the default on-disk state
//! is the raw append history — the hardest case for a merge-based
//! reader and the case M4-LSM is designed for. Beyond the paper, the
//! [`compaction`] module provides page-aware, policy-driven compaction
//! (clean pages copied byte-for-byte without decode, merge candidates
//! picked by a pluggable [`CompactionPolicy`]), run manually via
//! `compact`/`compact_policy` or by the background [`scheduler`] when
//! `compaction_auto` is set.
//!
//! ## Quick example
//!
//! ```
//! use tskv::{TsKv, config::EngineConfig};
//! use tsfile::types::Point;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("tskv-doc-{}", std::process::id()));
//! let kv = TsKv::open(&dir, EngineConfig::default())?;
//! for i in 0..5000i64 {
//!     kv.insert("sensor.speed", Point::new(i * 1000, i as f64))?;
//! }
//! kv.delete("sensor.speed", 1_000_000, 2_000_000)?;
//! let snap = kv.snapshot("sensor.speed")?;
//! let merged = tskv::readers::MergeReader::new(&snap).collect_merged()?;
//! assert!(merged.iter().all(|p| p.t < 1_000_000 || p.t > 2_000_000));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod chunk;
pub mod compaction;
pub mod config;
pub mod delete;
pub mod engine;
pub mod error;
pub mod memtable;
pub mod notify;
pub mod readers;
pub mod scheduler;
pub(crate) mod shard_wal;
pub mod snapshot;
pub mod stats;
pub mod version;
pub mod wal;
pub mod wire;

pub use batch::WriteBatch;
pub use cache::{CacheKey, DecodedChunkCache};
pub use catalog::SeriesId;
pub use chunk::ChunkHandle;
pub use compaction::{CompactionPolicy, CompactionPolicyKind, CompactionReport, FileView};
pub use config::FsyncPolicy;
pub use engine::TsKv;
pub use error::TsKvError;
pub use notify::{ChangeEvent, ChangeObserver, ChangeRx};
pub use snapshot::SeriesSnapshot;
pub use stats::IoStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TsKvError>;
