//! Shared, series-tagged write-ahead log for one storage shard.
//!
//! The legacy layout gave every series its own `series.wal`, so a
//! million registered series meant a million open files and a million
//! directory entries before a single point arrived. The sharded layout
//! amortizes instead: each of the fixed `storage_shards` directories
//! holds **one** log shared by every series hashed into it, and each
//! record carries the [`SeriesId`] it belongs to. A cold series costs
//! zero WAL state; a hot shard batches frames from many series into the
//! same group-committed appends.
//!
//! ## Record framing
//!
//! `u8 kind | body | u32 crc` (CRC over kind + body), little-endian:
//!
//! * kind 0 — insert run: `u32 id`, `varint n`, `n × (varint_i t, f64 v)`.
//! * kind 1 — delete: `u32 id`, `varint κ`, `varint_i t_ds`, `varint_i t_de`.
//! * kind 2 — flush-begin: `u32 id`. Marks the drain point of a flush:
//!   every record of this series before the marker covers points now
//!   leaving the memtable.
//! * kind 3 — flush-end: `u32 id`. The flush's TsFile is durable; on
//!   replay, this series' records before the matching begin marker are
//!   skipped (their points live in the sealed file).
//!
//! The markers replace the legacy `rotate_for_flush`/`discard_sealed`
//! file dance: rotation is a logical position in a shared log, not a
//! file rename. Losing an *end* marker (crash between install and
//! sync) merely replays points that also exist in the sealed file —
//! the merge path dedups same-timestamp points, so reads stay correct,
//! exactly the legacy contract.
//!
//! ## Segments and space reclamation
//!
//! The log is a sequence of `wal-NNNNNNNN.log` segment files; the
//! highest-numbered one is active and appends roll to a fresh segment
//! once it crosses `segment_bytes`. Reclamation is prefix-only: a
//! sealed segment is deleted once every series' uncovered records (the
//! ones a replay would still need) start at or after its end. When
//! *no* series has uncovered records, the whole log resets: sealed
//! segments are deleted and the active one is truncated. An append
//! between the check and the truncate is impossible — every append
//! updates `last_append` under the same mutex, making that series
//! uncovered and vetoing the reset.
//!
//! ## Group commit
//!
//! Mirrors [`crate::wal::Wal`]: frames buffer in memory up to
//! `batch_bytes`, drain in one `write_all` on [`ShardWal::commit`]
//! (which the engine calls per series touched, before acknowledging),
//! and fsync per the engine's policy. Offsets are *logical* — they
//! count buffered bytes — so coverage arithmetic never depends on what
//! has physically reached the file yet.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use tsfile::checksum::crc32;
use tsfile::types::{Point, TimeRange, Timestamp, Version};
use tsfile::varint;

use crate::catalog::SeriesId;
use crate::wal::WalRecord;
use crate::Result;

/// One sealed (no longer written) segment file.
#[derive(Debug)]
struct Segment {
    /// Logical offset just past the segment's last byte.
    end: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct WalState {
    file: File,
    active_path: PathBuf,
    /// Logical offset of the active segment's first byte.
    seg_base: u64,
    /// Logical end of the log: every byte appended so far, buffered or
    /// written.
    pos: u64,
    /// Framed records not yet written to the OS.
    buf: Vec<u8>,
    written_since_commit: u64,
    /// Bytes written to the active file since its last fsync. Distinct
    /// from `written_since_commit`: the log is shared across lock
    /// stripes, so a `commit(false)` from one stripe can drain frames
    /// another stripe is about to `commit(true)` — the sync decision
    /// must see every unsynced byte, not just this commit's.
    unsynced_bytes: u64,
    sealed: Vec<Segment>,
    next_seg_id: u64,
    /// Per-series logical offset just past its last insert/delete
    /// record. Pruned once everything is covered by durable files.
    last_append: HashMap<SeriesId, u64>,
    /// Per-series logical offset of the first record a replay would
    /// still need. Pruned with `last_append`; its minimum is the
    /// reclamation horizon.
    first_uncovered: HashMap<SeriesId, u64>,
    /// In-flight flushes: series → offset of its begin marker.
    pending_begin: HashMap<SeriesId, u64>,
}

/// The shared log of one storage shard.
#[derive(Debug)]
pub(crate) struct ShardWal {
    batch_bytes: usize,
    segment_bytes: u64,
    state: Mutex<WalState>,
}

fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("wal-{id:08}.log"))
}

fn parse_segment_id(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// A record replayed from a shard log, tagged with its series.
#[derive(Debug, Clone, PartialEq)]
enum TaggedRecord {
    Op(SeriesId, WalRecord),
    FlushBegin(SeriesId),
    FlushEnd(SeriesId),
}

/// Decode one framed record at `start`; `None` on torn/corrupt data.
fn decode_record(buf: &[u8], start: usize) -> Option<(TaggedRecord, usize)> {
    let mut pos = start;
    let kind = *buf.get(pos)?;
    pos += 1;
    let id_bytes = buf.get(pos..pos.checked_add(4)?)?;
    let id = SeriesId(u32::from_le_bytes(id_bytes.try_into().ok()?));
    pos += 4;
    let record = match kind {
        0 => {
            let n = varint::read_u64(buf, &mut pos).ok()? as usize;
            // A record cannot hold more points than bytes remaining.
            if n > buf.len().saturating_sub(pos) {
                return None;
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let t: Timestamp = varint::read_i64(buf, &mut pos).ok()?;
                let v_bytes = buf.get(pos..pos.checked_add(8)?)?;
                pos += 8;
                points.push(Point::new(t, f64::from_le_bytes(v_bytes.try_into().ok()?)));
            }
            TaggedRecord::Op(id, WalRecord::Insert(points))
        }
        1 => {
            let version = Version(varint::read_u64(buf, &mut pos).ok()?);
            let s = varint::read_i64(buf, &mut pos).ok()?;
            let e = varint::read_i64(buf, &mut pos).ok()?;
            TaggedRecord::Op(
                id,
                WalRecord::Delete {
                    version,
                    range: TimeRange::new(s, e),
                },
            )
        }
        2 => TaggedRecord::FlushBegin(id),
        3 => TaggedRecord::FlushEnd(id),
        _ => return None,
    };
    let crc_bytes = buf.get(pos..pos.checked_add(4)?)?;
    let expected = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(buf.get(start..pos)?) != expected {
        return None;
    }
    Some((record, pos + 4))
}

/// Per-series surviving state after a replay scan.
#[derive(Debug, Default)]
struct ReplayState {
    /// `(logical offset, record)` in append order.
    ops: Vec<(u64, WalRecord)>,
    /// Offset of the begin marker of an in-flight (unmatched) flush.
    open_begin: Option<u64>,
    /// Offset of the begin marker of the last *matched* begin/end pair:
    /// ops before it are covered by a durable file.
    covered_below: u64,
    last_append: u64,
}

impl ShardWal {
    /// Open the shard log in `dir`, replaying existing segments.
    /// Returns the live log plus, per series, the operations a restart
    /// must re-apply (covered prefixes already skipped).
    pub fn open(
        dir: &Path,
        batch_bytes: usize,
        segment_bytes: u64,
    ) -> Result<(ShardWal, HashMap<SeriesId, Vec<WalRecord>>)> {
        let mut seg_ids: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(id) = entry.file_name().to_str().and_then(parse_segment_id) {
                seg_ids.push(id);
            }
        }
        seg_ids.sort_unstable();

        let mut sealed: Vec<Segment> = Vec::new();
        let mut replay: HashMap<SeriesId, ReplayState> = HashMap::new();
        let mut offset = 0u64;
        for &seg_id in &seg_ids {
            let path = segment_path(dir, seg_id);
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            // Stop at the first torn/corrupt record of a segment (a
            // crash only ever tears the tail of the last one) but keep
            // scanning later segments: under latest-wins, dropping an
            // older record while keeping newer ones is safe.
            while pos < buf.len() {
                let Some((record, next)) = decode_record(&buf, pos) else {
                    break;
                };
                let at = offset + pos as u64;
                match record {
                    TaggedRecord::Op(id, op) => {
                        let st = replay.entry(id).or_default();
                        st.ops.push((at, op));
                        st.last_append = offset + next as u64;
                    }
                    TaggedRecord::FlushBegin(id) => {
                        replay.entry(id).or_default().open_begin = Some(at);
                    }
                    TaggedRecord::FlushEnd(id) => {
                        let st = replay.entry(id).or_default();
                        if let Some(begin) = st.open_begin.take() {
                            st.covered_below = st.covered_below.max(begin);
                        }
                    }
                }
                pos = next;
            }
            let end = offset + buf.len() as u64;
            sealed.push(Segment { end, path });
            offset = end;
        }

        // A fresh segment becomes active; everything pre-existing stays
        // sealed (a possibly-torn tail is never appended to).
        let next_seg_id = seg_ids.last().map_or(0, |last| last + 1);
        let active_path = segment_path(dir, next_seg_id);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active_path)?;

        let mut last_append = HashMap::new();
        let mut first_uncovered = HashMap::new();
        let mut out: HashMap<SeriesId, Vec<WalRecord>> = HashMap::new();
        for (id, st) in replay {
            let surviving: Vec<(u64, WalRecord)> = st
                .ops
                .into_iter()
                .filter(|&(at, _)| at >= st.covered_below)
                .collect();
            if let Some(&(first_at, _)) = surviving.first() {
                first_uncovered.insert(id, first_at);
                last_append.insert(id, st.last_append);
                out.insert(id, surviving.into_iter().map(|(_, op)| op).collect());
            }
        }

        let wal = ShardWal {
            batch_bytes,
            segment_bytes,
            state: Mutex::new(WalState {
                file,
                active_path,
                seg_base: offset,
                pos: offset,
                buf: Vec::new(),
                written_since_commit: 0,
                unsynced_bytes: 0,
                sealed,
                next_seg_id: next_seg_id + 1,
                last_append,
                first_uncovered,
                pending_begin: HashMap::new(),
            }),
        };
        // Nothing uncovered (clean shutdown after full flush): reclaim
        // the dead segments eagerly rather than on the next flush.
        wal.state.lock().maybe_reclaim()?;
        Ok((wal, out))
    }

    /// Append one insert run for `id`.
    pub fn append_inserts(&self, id: SeriesId, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let mut body = Vec::with_capacity(15 + points.len() * 12);
        body.push(0u8);
        body.extend_from_slice(&id.0.to_le_bytes());
        varint::write_u64(&mut body, points.len() as u64);
        for p in points {
            varint::write_i64(&mut body, p.t);
            body.extend_from_slice(&p.v.to_le_bytes());
        }
        self.append_op(id, body)
    }

    /// Append one delete for `id` with its global version `κ`.
    pub fn append_delete(&self, id: SeriesId, version: Version, range: TimeRange) -> Result<()> {
        let mut body = Vec::with_capacity(36);
        body.push(1u8);
        body.extend_from_slice(&id.0.to_le_bytes());
        varint::write_u64(&mut body, version.0);
        varint::write_i64(&mut body, range.start);
        varint::write_i64(&mut body, range.end);
        self.append_op(id, body)
    }

    fn append_op(&self, id: SeriesId, body: Vec<u8>) -> Result<()> {
        let mut state = self.state.lock();
        let at = state.pos;
        state.append_framed(body, self.batch_bytes)?;
        let pos = state.pos;
        state.last_append.insert(id, pos);
        state.first_uncovered.entry(id).or_insert(at);
        Ok(())
    }

    /// End a group commit: drain buffered frames, optionally fsync, and
    /// return the bytes written through since the previous commit.
    pub fn commit(&self, sync: bool) -> Result<u64> {
        let mut state = self.state.lock();
        state.flush_buf()?;
        let bytes = state.written_since_commit;
        state.written_since_commit = 0;
        if sync && state.unsynced_bytes > 0 {
            state.file.sync_data()?;
            state.unsynced_bytes = 0;
        }
        state.maybe_roll(self.segment_bytes)?;
        Ok(bytes)
    }

    /// Force written records to stable storage.
    pub fn sync(&self) -> Result<()> {
        let mut state = self.state.lock();
        state.flush_buf()?;
        state.file.sync_data()?;
        state.unsynced_bytes = 0;
        Ok(())
    }

    /// Mark the drain point of a flush of `id`: records before this
    /// offset cover the points leaving the memtable. Must run under the
    /// same lock that serializes this series' appends.
    pub fn begin_flush(&self, id: SeriesId) -> Result<()> {
        let mut state = self.state.lock();
        let at = state.pos;
        state.append_marker(2, id, self.batch_bytes)?;
        state.pending_begin.insert(id, at);
        Ok(())
    }

    /// The flush's TsFile is durable: everything of `id` before its
    /// begin marker is covered. Reclaims dead log space when possible.
    pub fn end_flush(&self, id: SeriesId) -> Result<()> {
        let mut state = self.state.lock();
        state.append_marker(3, id, self.batch_bytes)?;
        state.flush_buf()?;
        if let Some(begin) = state.pending_begin.remove(&id) {
            if state.last_append.get(&id).is_some_and(|&last| last > begin) {
                // Records landed after the drain point (writes racing
                // the flush): the series stays uncovered from there.
                let entry = state.first_uncovered.entry(id).or_insert(begin);
                *entry = (*entry).max(begin);
            } else {
                state.last_append.remove(&id);
                state.first_uncovered.remove(&id);
            }
        }
        state.maybe_reclaim()?;
        state.maybe_roll(self.segment_bytes)?;
        Ok(())
    }

    /// The flush failed or was abandoned; its begin marker stays in the
    /// log as a dead (never matched) marker.
    pub fn abort_flush(&self, id: SeriesId) {
        self.state.lock().pending_begin.remove(&id);
    }

    /// Segment files currently on disk (tests / inspection).
    #[cfg(test)]
    fn segment_count(&self) -> usize {
        let state = self.state.lock();
        state.sealed.len() + 1
    }

    /// Bytes written but not yet fsynced (tests / inspection).
    #[cfg(test)]
    fn unsynced_bytes(&self) -> u64 {
        self.state.lock().unsynced_bytes
    }
}

impl WalState {
    fn append_framed(&mut self, body: Vec<u8>, batch_bytes: usize) -> Result<()> {
        let crc = crc32(&body);
        self.buf.extend_from_slice(&body);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.pos += body.len() as u64 + 4;
        if self.buf.len() >= batch_bytes {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn append_marker(&mut self, kind: u8, id: SeriesId, batch_bytes: usize) -> Result<()> {
        let mut body = Vec::with_capacity(9);
        body.push(kind);
        body.extend_from_slice(&id.0.to_le_bytes());
        self.append_framed(body, batch_bytes)
    }

    fn flush_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buf)?;
        self.written_since_commit += self.buf.len() as u64;
        self.unsynced_bytes += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Roll to a fresh segment once the active one crosses the size
    /// threshold. Only rolls when the buffer is drained (callers run it
    /// after `flush_buf`).
    fn maybe_roll(&mut self, segment_bytes: u64) -> Result<()> {
        if !self.buf.is_empty() || self.pos - self.seg_base < segment_bytes {
            return Ok(());
        }
        // Once sealed, this file's handle goes away — a later sync
        // through the new active handle cannot cover its bytes.
        if self.unsynced_bytes > 0 {
            self.file.sync_data()?;
            self.unsynced_bytes = 0;
        }
        let dir = self
            .active_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_default();
        let new_path = segment_path(&dir, self.next_seg_id);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&new_path)?;
        self.sealed.push(Segment {
            end: self.pos,
            path: std::mem::replace(&mut self.active_path, new_path),
        });
        self.file = file;
        self.seg_base = self.pos;
        self.next_seg_id += 1;
        Ok(())
    }

    /// Drop log space no replay could need: sealed segments wholly
    /// below every series' uncovered records, or — when nothing at all
    /// is uncovered — the entire log.
    fn maybe_reclaim(&mut self) -> Result<()> {
        if self.first_uncovered.is_empty() && self.pending_begin.is_empty() {
            // Nothing uncovered anywhere: full reset. Buffered frames
            // can only belong to uncovered appends, so the buffer is
            // provably empty here.
            for seg in self.sealed.drain(..) {
                remove_if_present(&seg.path)?;
            }
            // Recreate rather than truncate-in-place: O_APPEND offsets
            // reset with the new handle on every platform.
            let file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&self.active_path)?;
            file.sync_data()?;
            self.file = OpenOptions::new().append(true).open(&self.active_path)?;
            self.seg_base = self.pos;
            self.last_append.clear();
            // The truncate discarded whatever was written-but-unsynced.
            self.unsynced_bytes = 0;
            return Ok(());
        }
        let mut min_keep = self
            .first_uncovered
            .values()
            .copied()
            .min()
            .unwrap_or(u64::MAX);
        // An in-flight flush still needs everything from its begin
        // marker (the flush may fail and fall back to the log).
        for &begin in self.pending_begin.values() {
            min_keep = min_keep.min(begin);
        }
        while let Some(seg) = self.sealed.first() {
            if seg.end <= min_keep {
                remove_if_present(&seg.path)?;
                self.sealed.remove(0);
            } else {
                break;
            }
        }
        Ok(())
    }
}

fn remove_if_present(path: &Path) -> Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tskv-shardwal-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pts(raw: &[(i64, f64)]) -> Vec<Point> {
        raw.iter().map(|&(t, v)| Point::new(t, v)).collect()
    }

    fn open(dir: &Path) -> (ShardWal, HashMap<SeriesId, Vec<WalRecord>>) {
        ShardWal::open(dir, 0, 1 << 20).unwrap()
    }

    const A: SeriesId = SeriesId(0);
    const B: SeriesId = SeriesId(7);

    #[test]
    fn interleaved_appends_replay_per_series() {
        let dir = tmp("interleave");
        {
            let (w, replay) = open(&dir);
            assert!(replay.is_empty());
            w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
            w.append_inserts(B, &pts(&[(10, -1.0)])).unwrap();
            w.append_delete(A, Version(5), TimeRange::new(0, 2))
                .unwrap();
            w.append_inserts(A, &pts(&[(2, 2.0)])).unwrap();
            w.commit(false).unwrap();
        }
        let (_w, replay) = open(&dir);
        assert_eq!(
            replay.get(&A).unwrap(),
            &vec![
                WalRecord::Insert(pts(&[(1, 1.0)])),
                WalRecord::Delete {
                    version: Version(5),
                    range: TimeRange::new(0, 2)
                },
                WalRecord::Insert(pts(&[(2, 2.0)])),
            ]
        );
        assert_eq!(
            replay.get(&B).unwrap(),
            &vec![WalRecord::Insert(pts(&[(10, -1.0)]))]
        );
    }

    #[test]
    fn matched_flush_markers_skip_covered_prefix() {
        let dir = tmp("covered");
        {
            let (w, _) = open(&dir);
            w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
            w.commit(false).unwrap();
            w.begin_flush(A).unwrap();
            // Writes racing the flush land after the marker and survive.
            w.append_inserts(A, &pts(&[(2, 2.0)])).unwrap();
            w.commit(false).unwrap();
            w.end_flush(A).unwrap();
        }
        let (_w, replay) = open(&dir);
        assert_eq!(
            replay.get(&A).unwrap(),
            &vec![WalRecord::Insert(pts(&[(2, 2.0)]))]
        );
    }

    #[test]
    fn unmatched_begin_replays_everything() {
        let dir = tmp("crashmid");
        {
            let (w, _) = open(&dir);
            w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
            w.begin_flush(A).unwrap();
            w.commit(false).unwrap();
            // No end marker: crash mid-flush.
        }
        let (_w, replay) = open(&dir);
        assert_eq!(
            replay.get(&A).unwrap(),
            &vec![WalRecord::Insert(pts(&[(1, 1.0)]))]
        );
    }

    #[test]
    fn full_flush_resets_log() {
        let dir = tmp("reset");
        let (w, _) = open(&dir);
        w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
        w.append_inserts(B, &pts(&[(2, 2.0)])).unwrap();
        w.commit(false).unwrap();
        for id in [A, B] {
            w.begin_flush(id).unwrap();
            w.end_flush(id).unwrap();
        }
        // Everything covered: the log reset to one empty active segment.
        assert_eq!(w.segment_count(), 1);
        let files: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.metadata().unwrap().len())
            .collect();
        assert_eq!(files, vec![0]);
        drop(w);
        let (_w, replay) = open(&dir);
        assert!(replay.is_empty());
    }

    #[test]
    fn covered_prefix_segments_are_reclaimed_past_uncovered_series() {
        let dir = tmp("prefix");
        // Tiny segments force rolls: A fills the early segments, B's
        // lone record lands in a late one.
        let (w, _) = ShardWal::open(&dir, 0, 64).unwrap();
        for i in 0..20i64 {
            w.append_inserts(A, &pts(&[(i, i as f64)])).unwrap();
            w.commit(false).unwrap();
        }
        w.append_inserts(B, &pts(&[(1, 1.0)])).unwrap();
        w.commit(false).unwrap();
        let before = w.segment_count();
        assert!(before > 2, "rolling produced only {before} segments");
        // Flushing A covers the early segments; B (uncovered, late)
        // does not pin them.
        w.begin_flush(A).unwrap();
        w.end_flush(A).unwrap();
        let after = w.segment_count();
        assert!(after < before, "prefix not reclaimed: {before} -> {after}");
        // B's record must still replay after the reclaim.
        drop(w);
        let (w, replay) = open(&dir);
        assert_eq!(
            replay.get(&B).unwrap(),
            &vec![WalRecord::Insert(pts(&[(1, 1.0)]))]
        );
        // Flushing B too clears the log entirely.
        w.begin_flush(B).unwrap();
        w.end_flush(B).unwrap();
        assert_eq!(w.segment_count(), 1);
    }

    #[test]
    fn torn_tail_drops_only_final_record() {
        let dir = tmp("torn");
        {
            let (w, _) = open(&dir);
            w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
            w.append_inserts(A, &pts(&[(2, 2.0), (3, 3.0)])).unwrap();
            w.commit(false).unwrap();
        }
        // Tear the active segment's tail (segment 0: the only one with
        // data).
        let path = segment_path(&dir, 0);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, data.get(..data.len() - 5).unwrap()).unwrap();
        let (_w, replay) = open(&dir);
        assert_eq!(
            replay.get(&A).unwrap(),
            &vec![WalRecord::Insert(pts(&[(1, 1.0)]))]
        );
    }

    #[test]
    fn grouped_mode_buffers_until_commit() {
        let dir = tmp("grouped");
        let (w, _) = ShardWal::open(&dir, 1 << 20, 1 << 20).unwrap();
        w.append_inserts(A, &pts(&[(1, 1.0), (2, 2.0)])).unwrap();
        // Nothing on disk yet (active segment is segment 0, empty).
        assert_eq!(std::fs::metadata(segment_path(&dir, 0)).unwrap().len(), 0);
        let bytes = w.commit(false).unwrap();
        assert!(bytes > 0);
        assert_eq!(
            std::fs::metadata(segment_path(&dir, 0)).unwrap().len(),
            bytes
        );
        // A second commit with nothing new reports an empty batch.
        assert_eq!(w.commit(true).unwrap(), 0);
    }

    #[test]
    fn sync_commit_covers_bytes_drained_by_earlier_commit() {
        let dir = tmp("synccarry");
        let (w, _) = open(&dir);
        // A's frames are drained (written, unsynced) by a commit(false)
        // from another stripe sharing this shard log.
        w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
        assert!(w.commit(false).unwrap() > 0);
        assert!(w.unsynced_bytes() > 0);
        // B's commit(true) writes nothing new itself, but must still
        // fsync the bytes the earlier commit left unsynced.
        assert_eq!(w.commit(true).unwrap(), 0);
        assert_eq!(w.unsynced_bytes(), 0);
        // An explicit sync also clears the counter.
        w.append_inserts(B, &pts(&[(2, 2.0)])).unwrap();
        w.commit(false).unwrap();
        w.sync().unwrap();
        assert_eq!(w.unsynced_bytes(), 0);
    }

    #[test]
    fn abort_flush_keeps_records_replayable() {
        let dir = tmp("abort");
        {
            let (w, _) = open(&dir);
            w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
            w.begin_flush(A).unwrap();
            w.abort_flush(A);
            w.commit(false).unwrap();
        }
        let (_w, replay) = open(&dir);
        assert_eq!(
            replay.get(&A).unwrap(),
            &vec![WalRecord::Insert(pts(&[(1, 1.0)]))]
        );
    }

    #[test]
    fn reopen_continues_segment_numbering() {
        let dir = tmp("numbering");
        {
            let (w, _) = open(&dir);
            w.append_inserts(A, &pts(&[(1, 1.0)])).unwrap();
            w.commit(false).unwrap();
        }
        {
            let (w, _) = open(&dir);
            w.append_inserts(A, &pts(&[(2, 2.0)])).unwrap();
            w.commit(false).unwrap();
            // Old segment 0 sealed, new active segment 1.
            assert_eq!(w.segment_count(), 2);
        }
        let (_w, replay) = open(&dir);
        assert_eq!(replay.get(&A).unwrap().len(), 2);
    }
}
