//! Engine configuration, mirroring the IoTDB parameters the paper pins
//! in Table 4 of its experimental setup.

use tsfile::encoding::EncodingKind;

/// Tunables of the storage engine.
///
/// Correspondence with the paper's Table 4:
///
/// | paper (IoTDB)                        | here                    |
/// |--------------------------------------|-------------------------|
/// | `avg_series_point_number_threshold`  | [`points_per_chunk`]    |
/// | `unseq/seq_tsfile_size` (1 GiB)      | [`memtable_threshold`] (points per flush → file size) |
/// | `page_size_in_byte` (1 GiB → 1 page) | chunks are single-page  |
/// | `compaction_strategy = NO_COMPACTION`| no compaction exists    |
///
/// [`points_per_chunk`]: EngineConfig::points_per_chunk
/// [`memtable_threshold`]: EngineConfig::memtable_threshold
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum points per chunk; a flush splits the memtable into runs
    /// of at most this many points (paper value: 1000).
    pub points_per_chunk: usize,
    /// Memtable point count that triggers an automatic flush. Each
    /// flush seals exactly one TsFile.
    pub memtable_threshold: usize,
    /// Timestamp column encoding for flushed chunks.
    pub ts_encoding: EncodingKind,
    /// Value column encoding for flushed chunks.
    pub val_encoding: EncodingKind,
    /// Whether to learn and persist a step-regression chunk index at
    /// flush time (§3.5 of the paper). Disabling it is the A1 ablation.
    pub build_step_index: bool,
    /// Write-ahead logging for unflushed (memtable) data. On by
    /// default; benchmarks reproducing the paper's flushed-only setup
    /// may disable it to keep the write path identical to IoTDB's
    /// measured configuration.
    pub enable_wal: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            points_per_chunk: 1000,
            memtable_threshold: 100_000,
            ts_encoding: EncodingKind::Ts2Diff,
            val_encoding: EncodingKind::Gorilla,
            build_step_index: true,
            enable_wal: true,
        }
    }
}

impl EngineConfig {
    /// Validate and clamp nonsensical settings (zero sizes become 1).
    pub fn normalized(mut self) -> Self {
        if self.points_per_chunk == 0 {
            self.points_per_chunk = 1;
        }
        if self.memtable_threshold == 0 {
            self.memtable_threshold = 1;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_chunk_size() {
        let c = EngineConfig::default();
        assert_eq!(c.points_per_chunk, 1000);
        assert!(c.build_step_index);
    }

    #[test]
    fn normalized_clamps_zeros() {
        let c = EngineConfig { points_per_chunk: 0, memtable_threshold: 0, ..Default::default() }
            .normalized();
        assert_eq!(c.points_per_chunk, 1);
        assert_eq!(c.memtable_threshold, 1);
    }
}
