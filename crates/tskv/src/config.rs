//! Engine configuration, mirroring the IoTDB parameters the paper pins
//! in Table 4 of its experimental setup.

use tsfile::encoding::EncodingKind;

use crate::compaction::policy::CompactionPolicyKind;

/// When the write-ahead log forces its group-committed bytes to
/// stable storage.
///
/// Group commit batches every WAL frame of one `write_batch` /
/// `insert_batch` call into a single buffered append (see
/// [`crate::wal`]); the policy decides whether that append is also
/// fsynced before the call returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync once per committed batch: an acknowledged write survives
    /// power loss, at one `fdatasync` per batch (not per point).
    Always,
    /// fsync only at flush rotation and on deletes. An acknowledged
    /// insert survives a process crash (the bytes are in the OS page
    /// cache) but the tail since the last flush may be lost on power
    /// failure. This matches the engine's historical behavior and is
    /// the default.
    #[default]
    OnFlush,
    /// Never fsync the WAL explicitly; durability rides entirely on
    /// the OS writeback and the sealed-TsFile fsyncs. For benchmarks
    /// and bulk loads.
    Never,
}

impl FsyncPolicy {
    /// Stable lowercase name (used in benchmark metadata headers).
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnFlush => "on_flush",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Tunables of the storage engine.
///
/// Correspondence with the paper's Table 4:
///
/// | paper (IoTDB)                        | here                    |
/// |--------------------------------------|-------------------------|
/// | `avg_series_point_number_threshold`  | [`points_per_chunk`]    |
/// | `unseq/seq_tsfile_size` (1 GiB)      | [`memtable_threshold`] (points per flush → file size) |
/// | `page_size_in_byte` (1 GiB → 1 page) | chunks are single-page  |
/// | `compaction_strategy = NO_COMPACTION`| no compaction exists    |
///
/// [`points_per_chunk`]: EngineConfig::points_per_chunk
/// [`memtable_threshold`]: EngineConfig::memtable_threshold
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum points per chunk; a flush splits the memtable into runs
    /// of at most this many points (paper value: 1000).
    pub points_per_chunk: usize,
    /// Points per page inside a sealed chunk (format v2): the unit of
    /// selective decode and of the page-granular read cache.
    /// `usize::MAX` degenerates to one page per chunk (the monolithic
    /// baseline). Zero is clamped to 1 by [`normalized`].
    ///
    /// [`normalized`]: EngineConfig::normalized
    pub page_points: usize,
    /// Memtable point count that triggers an automatic flush. Each
    /// flush seals exactly one TsFile.
    pub memtable_threshold: usize,
    /// Timestamp column encoding for flushed chunks.
    pub ts_encoding: EncodingKind,
    /// Value column encoding for flushed chunks.
    pub val_encoding: EncodingKind,
    /// Whether to learn and persist a step-regression chunk index at
    /// flush time (§3.5 of the paper). Disabling it is the A1 ablation.
    pub build_step_index: bool,
    /// Write-ahead logging for unflushed (memtable) data. On by
    /// default; benchmarks reproducing the paper's flushed-only setup
    /// may disable it to keep the write path identical to IoTDB's
    /// measured configuration.
    pub enable_wal: bool,
    /// Capacity of the cross-query decoded-chunk LRU in bytes
    /// (approximate: decoded point payload plus a small per-entry
    /// overhead). Must be nonzero and at most 1 TiB.
    pub cache_capacity_bytes: u64,
    /// Worker threads the M4 operators may fan chunk loads across.
    /// `1` means fully sequential. Must be in `1..=256`.
    pub read_threads: usize,
    /// Whether snapshots consult the shared decoded-chunk cache. Off
    /// reproduces the seed's always-decode behavior (the benchmark's
    /// cache-off arm).
    pub enable_read_cache: bool,
    /// Number of lock-striped shards the series map is split across.
    /// Writers to series in different shards never contend; `1`
    /// reproduces the old single-lock engine. Must be in `1..=256`.
    pub write_shards: usize,
    /// Byte threshold at which a group-committed WAL batch is written
    /// through to the file mid-batch; every batch is written out (and
    /// fsynced per [`fsync_policy`]) when its call commits regardless.
    /// Must be in `1..=1 GiB`.
    ///
    /// [`fsync_policy`]: EngineConfig::fsync_policy
    pub wal_batch_bytes: usize,
    /// When group-committed WAL bytes are forced to stable storage.
    pub fsync_policy: FsyncPolicy,
    /// Run the background compaction scheduler. Off by default:
    /// compaction stays manual (`kv.compact`), which is the paper's
    /// NO_COMPACTION setup and the test default.
    pub compaction_auto: bool,
    /// Sealed-file count per series at which the scheduler queues a
    /// compaction. Must be at least 2 (compacting a single file is a
    /// rewrite for nothing).
    pub compaction_threshold: usize,
    /// Scheduler poll period in milliseconds. Must be in `1..=60_000`.
    pub compaction_interval_ms: u64,
    /// How the scheduler (and [`crate::TsKv::compact_policy`]) picks
    /// which contiguous run of a series' sealed files to merge:
    /// everything past the threshold (`Full`, the default and the
    /// seed behavior), a tier of similar-sized files (`SizeTiered`),
    /// a bounded fold of the oldest files (`Leveled`), or only runs
    /// whose time ranges actually overlap (`Overlap`). Manual
    /// [`crate::TsKv::compact`] always merges everything regardless.
    pub compaction_policy: CompactionPolicyKind,
    /// Copy pages that overlap no other input chunk and no newer
    /// delete byte-for-byte instead of re-encoding them. On by
    /// default; turning it off forces the full decode → merge →
    /// re-encode path for every page (the benchmark's full-rewrite
    /// baseline).
    pub compaction_clean_page_copy: bool,
    /// Number of hash-sharded storage directories (`shard-NNN/`) the
    /// store's data files and shared WALs are spread across. Fixed at
    /// store creation: the first open writes it to the `SHARDS` meta
    /// file and later opens use the pinned value regardless of this
    /// knob. Must be in `1..=1024`.
    pub storage_shards: usize,
    /// Maximum number of series the catalog will intern. Registration
    /// past this fails with `CatalogFull`. Must be in `1..=2^32`
    /// (series ids are dense `u32`s).
    pub catalog_max_series: u64,
    /// Size at which a shared WAL segment file is sealed and a fresh
    /// one opened (reclamation works at segment granularity). Must be
    /// in `1..=1 GiB`.
    pub wal_segment_bytes: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            points_per_chunk: 1000,
            page_points: tsfile::page::DEFAULT_PAGE_POINTS,
            memtable_threshold: 100_000,
            ts_encoding: EncodingKind::Ts2Diff,
            val_encoding: EncodingKind::Gorilla,
            build_step_index: true,
            enable_wal: true,
            cache_capacity_bytes: 64 * 1024 * 1024,
            read_threads: 4,
            enable_read_cache: true,
            write_shards: 8,
            wal_batch_bytes: 64 * 1024,
            fsync_policy: FsyncPolicy::OnFlush,
            compaction_auto: false,
            compaction_threshold: 8,
            compaction_interval_ms: 20,
            compaction_policy: CompactionPolicyKind::Full,
            compaction_clean_page_copy: true,
            storage_shards: 16,
            catalog_max_series: 1 << 24,
            wal_segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Upper bound on [`EngineConfig::read_threads`].
pub const MAX_READ_THREADS: usize = 256;

/// Upper bound on [`EngineConfig::cache_capacity_bytes`] (1 TiB).
pub const MAX_CACHE_CAPACITY_BYTES: u64 = 1 << 40;

/// Upper bound on [`EngineConfig::write_shards`].
pub const MAX_WRITE_SHARDS: usize = 256;

/// Upper bound on [`EngineConfig::wal_batch_bytes`] (1 GiB).
pub const MAX_WAL_BATCH_BYTES: usize = 1 << 30;

/// Upper bound on [`EngineConfig::compaction_interval_ms`] (1 minute —
/// a slower scheduler is indistinguishable from a disabled one).
pub const MAX_COMPACTION_INTERVAL_MS: u64 = 60_000;

/// Upper bound on [`EngineConfig::storage_shards`].
pub const MAX_STORAGE_SHARDS: usize = 1024;

/// Upper bound on [`EngineConfig::catalog_max_series`] (ids are `u32`).
pub const MAX_CATALOG_SERIES: u64 = 1 << 32;

/// Upper bound on [`EngineConfig::wal_segment_bytes`] (1 GiB).
pub const MAX_WAL_SEGMENT_BYTES: u64 = 1 << 30;

impl EngineConfig {
    /// Validate and clamp nonsensical settings (zero sizes become 1).
    pub fn normalized(mut self) -> Self {
        if self.points_per_chunk == 0 {
            self.points_per_chunk = 1;
        }
        if self.memtable_threshold == 0 {
            self.memtable_threshold = 1;
        }
        if self.page_points == 0 {
            self.page_points = 1;
        }
        self
    }

    /// Reject zero/absurd cache and parallelism knobs with a typed
    /// error. Unlike the legacy size clamps in [`normalized`], these
    /// knobs fail loudly: a zero thread count or zero-byte cache is a
    /// misconfiguration, not a degenerate-but-meaningful setting.
    ///
    /// [`normalized`]: EngineConfig::normalized
    pub fn validate(&self) -> crate::Result<()> {
        if self.read_threads == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "read_threads",
                value: 0,
                reason: "must be at least 1",
            });
        }
        if self.read_threads > MAX_READ_THREADS {
            return Err(crate::TsKvError::InvalidConfig {
                field: "read_threads",
                value: self.read_threads as u64,
                reason: "exceeds the 256-thread ceiling",
            });
        }
        if self.cache_capacity_bytes == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "cache_capacity_bytes",
                value: 0,
                reason: "must be nonzero (disable the cache via enable_read_cache instead)",
            });
        }
        if self.cache_capacity_bytes > MAX_CACHE_CAPACITY_BYTES {
            return Err(crate::TsKvError::InvalidConfig {
                field: "cache_capacity_bytes",
                value: self.cache_capacity_bytes,
                reason: "exceeds the 1 TiB ceiling",
            });
        }
        if self.write_shards == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "write_shards",
                value: 0,
                reason: "must be at least 1",
            });
        }
        if self.write_shards > MAX_WRITE_SHARDS {
            return Err(crate::TsKvError::InvalidConfig {
                field: "write_shards",
                value: self.write_shards as u64,
                reason: "exceeds the 256-shard ceiling",
            });
        }
        if self.wal_batch_bytes == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "wal_batch_bytes",
                value: 0,
                reason: "must be nonzero (disable the WAL via enable_wal instead)",
            });
        }
        if self.wal_batch_bytes > MAX_WAL_BATCH_BYTES {
            return Err(crate::TsKvError::InvalidConfig {
                field: "wal_batch_bytes",
                value: self.wal_batch_bytes as u64,
                reason: "exceeds the 1 GiB ceiling",
            });
        }
        if self.compaction_threshold < 2 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "compaction_threshold",
                value: self.compaction_threshold as u64,
                reason: "must be at least 2 sealed files",
            });
        }
        if self.compaction_interval_ms == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "compaction_interval_ms",
                value: 0,
                reason: "must be at least 1 ms",
            });
        }
        if self.compaction_interval_ms > MAX_COMPACTION_INTERVAL_MS {
            return Err(crate::TsKvError::InvalidConfig {
                field: "compaction_interval_ms",
                value: self.compaction_interval_ms,
                reason: "exceeds the 60 s ceiling",
            });
        }
        if self.storage_shards == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "storage_shards",
                value: 0,
                reason: "must be at least 1",
            });
        }
        if self.storage_shards > MAX_STORAGE_SHARDS {
            return Err(crate::TsKvError::InvalidConfig {
                field: "storage_shards",
                value: self.storage_shards as u64,
                reason: "exceeds the 1024-shard ceiling",
            });
        }
        if self.catalog_max_series == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "catalog_max_series",
                value: 0,
                reason: "must be at least 1",
            });
        }
        if self.catalog_max_series > MAX_CATALOG_SERIES {
            return Err(crate::TsKvError::InvalidConfig {
                field: "catalog_max_series",
                value: self.catalog_max_series,
                reason: "series ids are u32: at most 2^32 series",
            });
        }
        if self.wal_segment_bytes == 0 {
            return Err(crate::TsKvError::InvalidConfig {
                field: "wal_segment_bytes",
                value: 0,
                reason: "must be nonzero",
            });
        }
        if self.wal_segment_bytes > MAX_WAL_SEGMENT_BYTES {
            return Err(crate::TsKvError::InvalidConfig {
                field: "wal_segment_bytes",
                value: self.wal_segment_bytes,
                reason: "exceeds the 1 GiB ceiling",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::panic)]

    use super::*;

    #[test]
    fn default_matches_paper_chunk_size() {
        let c = EngineConfig::default();
        assert_eq!(c.points_per_chunk, 1000);
        assert!(c.build_step_index);
    }

    #[test]
    fn normalized_clamps_zeros() {
        let c = EngineConfig {
            points_per_chunk: 0,
            memtable_threshold: 0,
            page_points: 0,
            ..Default::default()
        }
        .normalized();
        assert_eq!(c.points_per_chunk, 1);
        assert_eq!(c.memtable_threshold, 1);
        assert_eq!(c.page_points, 1);
    }

    #[test]
    fn default_page_points_matches_tsfile() {
        assert_eq!(
            EngineConfig::default().page_points,
            tsfile::page::DEFAULT_PAGE_POINTS
        );
    }

    #[test]
    fn validate_accepts_defaults() {
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn compaction_defaults_match_seed_behavior() {
        let c = EngineConfig::default();
        assert_eq!(c.compaction_policy, CompactionPolicyKind::Full);
        assert!(c.compaction_clean_page_copy);
        // Every policy kind is a valid configuration.
        for kind in CompactionPolicyKind::ALL {
            let c = EngineConfig {
                compaction_policy: kind,
                ..Default::default()
            };
            assert!(c.validate().is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn fsync_policy_names_are_stable() {
        assert_eq!(FsyncPolicy::Always.as_str(), "always");
        assert_eq!(FsyncPolicy::OnFlush.as_str(), "on_flush");
        assert_eq!(FsyncPolicy::Never.as_str(), "never");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::OnFlush);
    }

    #[test]
    fn validate_rejects_bad_cardinality_knobs() {
        use crate::TsKvError;
        let cases: [(EngineConfig, &str); 6] = [
            (
                EngineConfig {
                    storage_shards: 0,
                    ..Default::default()
                },
                "storage_shards",
            ),
            (
                EngineConfig {
                    storage_shards: MAX_STORAGE_SHARDS + 1,
                    ..Default::default()
                },
                "storage_shards",
            ),
            (
                EngineConfig {
                    catalog_max_series: 0,
                    ..Default::default()
                },
                "catalog_max_series",
            ),
            (
                EngineConfig {
                    catalog_max_series: MAX_CATALOG_SERIES + 1,
                    ..Default::default()
                },
                "catalog_max_series",
            ),
            (
                EngineConfig {
                    wal_segment_bytes: 0,
                    ..Default::default()
                },
                "wal_segment_bytes",
            ),
            (
                EngineConfig {
                    wal_segment_bytes: MAX_WAL_SEGMENT_BYTES + 1,
                    ..Default::default()
                },
                "wal_segment_bytes",
            ),
        ];
        for (config, want_field) in cases {
            match config.validate() {
                Err(TsKvError::InvalidConfig { field, .. }) => assert_eq!(field, want_field),
                other => panic!("expected InvalidConfig for {want_field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_bad_write_path_knobs() {
        use crate::TsKvError;
        let cases: [(EngineConfig, &str); 7] = [
            (
                EngineConfig {
                    write_shards: 0,
                    ..Default::default()
                },
                "write_shards",
            ),
            (
                EngineConfig {
                    write_shards: MAX_WRITE_SHARDS + 1,
                    ..Default::default()
                },
                "write_shards",
            ),
            (
                EngineConfig {
                    wal_batch_bytes: 0,
                    ..Default::default()
                },
                "wal_batch_bytes",
            ),
            (
                EngineConfig {
                    wal_batch_bytes: MAX_WAL_BATCH_BYTES + 1,
                    ..Default::default()
                },
                "wal_batch_bytes",
            ),
            (
                EngineConfig {
                    compaction_threshold: 1,
                    ..Default::default()
                },
                "compaction_threshold",
            ),
            (
                EngineConfig {
                    compaction_interval_ms: 0,
                    ..Default::default()
                },
                "compaction_interval_ms",
            ),
            (
                EngineConfig {
                    compaction_interval_ms: MAX_COMPACTION_INTERVAL_MS + 1,
                    ..Default::default()
                },
                "compaction_interval_ms",
            ),
        ];
        for (config, want_field) in cases {
            match config.validate() {
                Err(TsKvError::InvalidConfig { field, .. }) => assert_eq!(field, want_field),
                other => panic!("expected InvalidConfig for {want_field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_zero_and_absurd_knobs() {
        use crate::TsKvError;
        let cases: [(EngineConfig, &str); 4] = [
            (
                EngineConfig {
                    read_threads: 0,
                    ..Default::default()
                },
                "read_threads",
            ),
            (
                EngineConfig {
                    read_threads: MAX_READ_THREADS + 1,
                    ..Default::default()
                },
                "read_threads",
            ),
            (
                EngineConfig {
                    cache_capacity_bytes: 0,
                    ..Default::default()
                },
                "cache_capacity_bytes",
            ),
            (
                EngineConfig {
                    cache_capacity_bytes: MAX_CACHE_CAPACITY_BYTES + 1,
                    ..Default::default()
                },
                "cache_capacity_bytes",
            ),
        ];
        for (config, want_field) in cases {
            match config.validate() {
                Err(TsKvError::InvalidConfig { field, .. }) => assert_eq!(field, want_field),
                other => panic!("expected InvalidConfig for {want_field}, got {other:?}"),
            }
        }
    }
}
