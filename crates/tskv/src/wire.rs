//! Canonical wire layout of the engine's counter block.
//!
//! The Stats RPC serializes [`IoSnapshot`] as a flat block of
//! little-endian `u64`s. Before this module, the field count and order
//! lived in three places — the tsnet encoder, the tsnet decoder, and
//! the property-test strategy — and every PR that added a counter had
//! to touch all three by hand (and twice forgot one). Now the count
//! ([`IO_BLOCK_U64S`]) and the order ([`encode_io_block`] /
//! [`decode_io_block`]) are defined here, next to the struct itself,
//! and everything else consumes them.
//!
//! Adding a counter is a three-line change: the field on
//! [`crate::stats::IoStats`]/[`IoSnapshot`], one entry in
//! [`encode_io_block`], one name in [`decode_io_block`] — the array
//! types make the compiler reject a missed spot, and the roundtrip
//! test below pins encode/decode agreement.

use crate::stats::IoSnapshot;

/// Number of `u64` values in the serialized [`IoSnapshot`] block.
pub const IO_BLOCK_U64S: usize = 28;

/// Flatten an [`IoSnapshot`] into its canonical wire order.
pub fn encode_io_block(io: &IoSnapshot) -> [u64; IO_BLOCK_U64S] {
    [
        io.chunks_loaded,
        io.bytes_read,
        io.points_decoded,
        io.timestamps_decoded,
        io.mem_chunks_read,
        io.cache_hits,
        io.cache_misses,
        io.cache_evictions,
        io.cache_invalidations,
        io.points_written,
        io.wal_batches,
        io.wal_bytes,
        io.wal_syncs,
        io.compactions_scheduled,
        io.compactions_completed,
        io.compactions_skipped,
        io.compaction_bytes_read,
        io.compaction_bytes_rewritten,
        io.compaction_pages_copied,
        io.compaction_pages_recoded,
        io.pages_decoded,
        io.pages_skipped,
        io.pages_stat_answered,
        io.pool_hits,
        io.pool_misses,
        io.catalog_hits,
        io.catalog_misses,
        io.stores_instantiated,
    ]
}

/// Rebuild an [`IoSnapshot`] from its canonical wire order.
pub fn decode_io_block(block: &[u64; IO_BLOCK_U64S]) -> IoSnapshot {
    let [chunks_loaded, bytes_read, points_decoded, timestamps_decoded, mem_chunks_read, cache_hits, cache_misses, cache_evictions, cache_invalidations, points_written, wal_batches, wal_bytes, wal_syncs, compactions_scheduled, compactions_completed, compactions_skipped, compaction_bytes_read, compaction_bytes_rewritten, compaction_pages_copied, compaction_pages_recoded, pages_decoded, pages_skipped, pages_stat_answered, pool_hits, pool_misses, catalog_hits, catalog_misses, stores_instantiated] =
        *block;
    IoSnapshot {
        chunks_loaded,
        bytes_read,
        points_decoded,
        timestamps_decoded,
        mem_chunks_read,
        pages_decoded,
        pages_skipped,
        pages_stat_answered,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_invalidations,
        points_written,
        wal_batches,
        wal_bytes,
        wal_syncs,
        compactions_scheduled,
        compactions_completed,
        compactions_skipped,
        compaction_bytes_read,
        compaction_bytes_rewritten,
        compaction_pages_copied,
        compaction_pages_recoded,
        pool_hits,
        pool_misses,
        catalog_hits,
        catalog_misses,
        stores_instantiated,
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn io_block_roundtrips_every_field() {
        // Distinct values per slot: a swapped pair in either direction
        // would fail the equality below.
        let mut block = [0u64; IO_BLOCK_U64S];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as u64 + 1) * 1_000_003;
        }
        let snap = decode_io_block(&block);
        assert_eq!(encode_io_block(&snap), block);
    }

    #[test]
    fn zero_block_is_default_snapshot() {
        let snap = decode_io_block(&[0u64; IO_BLOCK_U64S]);
        assert_eq!(snap, IoSnapshot::default());
        assert_eq!(
            encode_io_block(&IoSnapshot::default()),
            [0u64; IO_BLOCK_U64S]
        );
    }
}
