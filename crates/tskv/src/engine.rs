//! The storage engine: series management, write path, flush, delete,
//! snapshot, and recovery from disk.
//!
//! ## Lock discipline
//!
//! Series state is partitioned into `write_shards` lock-striped shards
//! keyed by series-name hash; each shard's map sits behind its own
//! `RwLock`, so writers to series in different shards never contend.
//! The xtask L2 lint bans holding any of those locks across file I/O
//! or chunk decode, so every heavy operation is split into short
//! locked phases around an unlocked I/O phase:
//!
//! * **Flush** — phase A (locked): rotate the WAL, drain the memtable,
//!   reserve chunk versions, and park the drained points in
//!   [`SeriesStore::flushing`] so concurrent snapshots still see them.
//!   Phase B (unlocked): encode and seal the TsFile. Phase C (locked):
//!   install the file, attach deletes that arrived mid-flush, discard
//!   the WAL's sealed segment — or, on failure, return the points to
//!   the memtable (anything newer that landed meanwhile wins).
//! * **Compaction** — same shape; the input run (chosen under the
//!   lock, by the configured [`crate::compaction::policy`] for
//!   scheduler-driven runs) is captured as metadata, merged and
//!   written off-lock (clean pages copied raw, dirty pages re-encoded
//!   — see [`crate::compaction`]), and swapped in under the lock
//!   again. Output chunks carry the maximum input chunk version;
//!   deletes issued during the merge have versions above the capture
//!   ceiling and their mods entries are carried onto the new file at
//!   install time.
//! * WAL appends, the group-commit drain, and the O(1) segment
//!   rotation stay under the shard lock on purpose: serializing
//!   durability appends against the buffered state they describe is
//!   what the lock is *for* (see DESIGN.md).
//! * **Background compaction** — when `compaction_auto` is on, a
//!   scheduler thread ([`crate::scheduler`]) scans the shards with
//!   short read guards for series whose sealed-file count crossed
//!   `compaction_threshold`, then runs the same phased [`compact`]
//!   entirely off-lock.
//!
//! [`compact`]: TsKv::compact

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tsfile::types::{Point, TimeRange, Timestamp, Version};
use tsfile::{ModEntry, ModsFile, TsFileReader, TsFileWriter};

use crate::batch::WriteBatch;
use crate::cache::DecodedChunkCache;
use crate::chunk::ChunkHandle;
use crate::compaction::plan::{self, ChunkView, PageView};
use crate::compaction::policy::{CompactionPolicy, FileView};
use crate::compaction::{execute, CompactionReport};
use crate::config::{EngineConfig, FsyncPolicy};
use crate::memtable::MemTable;
use crate::notify::{ChangeEvent, ChangeRx, ChangeSink};
use crate::scheduler::CompactionScheduler;
use crate::snapshot::SeriesSnapshot;
use crate::stats::IoStats;
use crate::version::VersionAllocator;
use crate::wal::{Wal, WalRecord};
use crate::{Result, TsKvError};

/// One sealed TsFile plus its delete log.
#[derive(Debug)]
struct TsFileResource {
    reader: Arc<TsFileReader>,
    mods: ModsFile,
}

impl TsFileResource {
    /// Time interval spanned by the file's chunks, if any.
    fn time_range(&self) -> Option<TimeRange> {
        let metas = self.reader.chunk_metas();
        let start = metas.iter().map(|m| m.stats.first.t).min()?;
        let end = metas.iter().map(|m| m.stats.last.t).max()?;
        Some(TimeRange::new(start, end))
    }
}

/// Points drained from the memtable by a flush that is still in its
/// unlocked sealing phase. Kept visible to snapshots (as a mem chunk
/// carrying the last reserved version) until the sealed file replaces
/// it.
#[derive(Debug)]
struct FlushInFlight {
    points: Arc<Vec<Point>>,
    last_version: Version,
}

/// Per-series state: the memtable, its WAL, and the sealed files.
#[derive(Debug)]
struct SeriesStore {
    dir: PathBuf,
    memtable: MemTable,
    wal: Option<Wal>,
    files: Vec<TsFileResource>,
    next_file_id: u64,
    /// Set while a flush's unlocked sealing phase runs.
    flushing: Option<FlushInFlight>,
    /// Deletes issued while a flush was in flight; attached to the new
    /// file (if overlapping) when it is installed.
    pending_mods: Vec<ModEntry>,
    /// Set while a compaction's unlocked merge phase runs.
    compacting: bool,
}

impl SeriesStore {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("series.wal")
    }

    fn assemble(
        dir: PathBuf,
        memtable: MemTable,
        wal: Option<Wal>,
        files: Vec<TsFileResource>,
        next_file_id: u64,
    ) -> Self {
        SeriesStore {
            dir,
            memtable,
            wal,
            files,
            next_file_id,
            flushing: None,
            pending_mods: Vec::new(),
            compacting: false,
        }
    }
}

/// Outcome of a flush's phase A (computed under the lock).
enum FlushPrep {
    /// Another flush owns the series' in-flight slot.
    Busy,
    /// Nothing buffered.
    Done,
    /// Seal these points (outside the lock) into the file at `path`,
    /// using the pre-reserved chunk `versions`.
    Go {
        points: Arc<Vec<Point>>,
        versions: Vec<Version>,
        path: PathBuf,
    },
}

/// One lock stripe of the series map. Writers to series in different
/// shards never contend; the stripe count is
/// [`EngineConfig::write_shards`].
#[derive(Debug)]
struct Shard {
    series: RwLock<HashMap<String, SeriesStore>>,
}

/// Shared engine state. [`TsKv`] and the background compaction
/// scheduler both hold this behind an `Arc`, so the scheduler thread
/// can run phased compactions without borrowing the facade.
#[derive(Debug)]
pub(crate) struct EngineInner {
    dir: PathBuf,
    config: EngineConfig,
    alloc: VersionAllocator,
    shards: Vec<Shard>,
    io: Arc<IoStats>,
    /// Cross-query decoded-chunk LRU; `None` when disabled by config.
    cache: Option<Arc<DecodedChunkCache>>,
    /// Merge-candidate selector, built from
    /// [`EngineConfig::compaction_policy`] at open.
    policy: Box<dyn CompactionPolicy>,
    /// Change-notification fan-out (see [`crate::notify`]). Publishes
    /// happen after the owning shard lock is released, so a slow
    /// listener can never extend lock hold times; cross-thread event
    /// order is therefore best-effort, and consumers reconcile via
    /// their dirty-span repair path.
    changes: ChangeSink,
}

/// How a compaction run's input files are chosen.
enum CompactMode {
    /// The whole sealed-file list (manual [`TsKv::compact`]).
    Full,
    /// Whatever contiguous run the configured policy selects
    /// (scheduler ticks and [`TsKv::compact_policy`]).
    Policy,
}

/// The LSM time series store.
///
/// See the crate docs for the data model. All methods are `&self`;
/// internal state is lock-striped behind per-shard
/// [`parking_lot::RwLock`]s.
#[derive(Debug)]
pub struct TsKv {
    /// Declared before `inner` so drop order joins the scheduler
    /// thread while the engine state it references is still alive.
    scheduler: Option<CompactionScheduler>,
    inner: Arc<EngineInner>,
}

fn validate_series_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 200
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(TsKvError::InvalidSeriesName(name.to_string()))
    }
}

/// Recover one series directory: sealed TsFiles, their delete logs,
/// and the unflushed memtable contents replayed from the series' WAL
/// (sealed segment first, so an interrupted flush loses nothing).
/// Runs with no engine lock held — recovery parallelizes these calls
/// across series.
fn recover_series_dir(
    sdir: &Path,
    config: &EngineConfig,
    alloc: &VersionAllocator,
) -> Result<SeriesStore> {
    let mut paths: Vec<(u64, PathBuf)> = Vec::new();
    for f in std::fs::read_dir(sdir)? {
        let f = f?;
        let path = f.path();
        if path.extension().and_then(|e| e.to_str()) != Some("tsfile") {
            continue;
        }
        let id: u64 = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        paths.push((id, path));
    }
    paths.sort_by_key(|(id, _)| *id);
    let next_file_id = paths.last().map(|(id, _)| id + 1).unwrap_or(0);
    // File ids are only creation order. A policy compaction installs
    // its output (highest id) in the *middle* of the version-ordered
    // file list, so after a restart id order and version order can
    // disagree; the version sort below restores the engine invariant.
    let newest = paths.len().saturating_sub(1);
    let mut files: Vec<TsFileResource> = Vec::new();
    for (i, (_, path)) in paths.iter().enumerate() {
        let reader = match TsFileReader::open(path) {
            Ok(r) => Arc::new(r),
            Err(_) if i == newest => {
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".corrupt");
                std::fs::rename(path, &quarantined)?;
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        let mods = ModsFile::open(path.with_extension("mods"))?;
        for m in reader.chunk_metas() {
            alloc.observe(m.version);
        }
        for e in mods.entries() {
            alloc.observe(e.version);
        }
        files.push(TsFileResource { reader, mods });
    }
    // Version order, not id order (see above). The sort is stable, so
    // degenerate chunkless files keep their id order at the end.
    files.sort_by_key(|res| {
        res.reader
            .chunk_metas()
            .iter()
            .map(|m| m.version.0)
            .min()
            .unwrap_or(u64::MAX)
    });
    // Replay the WAL (if any) into a fresh memtable, restoring
    // unflushed state in operation order. Versioned deletes are
    // re-attached to any overlapping sealed file whose mods log
    // missed them (crash between the WAL and mods appends).
    let mut memtable = MemTable::new();
    let wal_path = SeriesStore::wal_path(sdir);
    for record in Wal::replay(&wal_path)? {
        match record {
            WalRecord::Insert(points) => {
                for p in points {
                    memtable.insert(p);
                }
            }
            WalRecord::Delete { version, range } => {
                memtable.delete_range(range);
                alloc.observe(version);
                let entry = ModEntry::new(version, range.start, range.end);
                for res in &mut files {
                    let overlaps = res
                        .time_range()
                        .map(|r| r.overlaps(&range))
                        .unwrap_or(false);
                    let known = res.mods.entries().iter().any(|m| m.version == version);
                    if overlaps && !known {
                        res.mods.append(entry)?;
                    }
                }
            }
        }
    }
    let wal = if config.enable_wal {
        Some(Wal::open_grouped(&wal_path, config.wal_batch_bytes)?)
    } else {
        None
    };
    Ok(SeriesStore::assemble(
        sdir.to_path_buf(),
        memtable,
        wal,
        files,
        next_file_id,
    ))
}

/// Recover every series directory, fanning the per-series work across
/// up to `write_shards` scoped threads (same claim-by-atomic-cursor
/// shape as `m4::pool`). Results come back in `dirs` order; the first
/// error (in that order) wins, matching sequential recovery.
fn recover_all(
    dirs: &[(String, PathBuf)],
    config: &EngineConfig,
    alloc: &VersionAllocator,
) -> Result<Vec<(String, SeriesStore)>> {
    let workers = config.write_shards.min(dirs.len());
    if workers <= 1 {
        let mut out = Vec::with_capacity(dirs.len());
        for (name, sdir) in dirs {
            out.push((name.clone(), recover_series_dir(sdir, config, alloc)?));
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SeriesStore>>>> =
        dirs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((_, sdir)) = dirs.get(i) else { break };
                let res = recover_series_dir(sdir, config, alloc);
                if let Some(slot) = slots.get(i) {
                    *slot.lock() = Some(res);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(dirs.len());
    for ((name, sdir), slot) in dirs.iter().zip(slots) {
        match slot.into_inner() {
            Some(Ok(store)) => out.push((name.clone(), store)),
            Some(Err(e)) => return Err(e),
            // A worker can only leave a slot empty by panicking, which
            // the workspace forbids; recover the series inline rather
            // than guessing.
            None => out.push((name.clone(), recover_series_dir(sdir, config, alloc)?)),
        }
    }
    Ok(out)
}

/// Stripe index for `name` among `n` shards.
fn shard_of(name: &str, n: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % n.max(1)
}

impl EngineInner {
    /// Open (or create) the shared engine state rooted at `dir`. See
    /// [`TsKv::open`] for recovery semantics.
    fn open(dir: PathBuf, config: EngineConfig) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let config = config.normalized();
        config.validate()?;
        let alloc = VersionAllocator::default();

        let mut dirs: Vec<(String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if validate_series_name(&name).is_err() {
                continue; // foreign directory; ignore
            }
            dirs.push((name, entry.path()));
        }
        dirs.sort_by(|a, b| a.0.cmp(&b.0));
        let recovered = recover_all(&dirs, &config, &alloc)?;

        let shards: Vec<Shard> = (0..config.write_shards)
            .map(|_| Shard {
                series: RwLock::new(HashMap::new()),
            })
            .collect();
        for (name, store) in recovered {
            let idx = shard_of(&name, shards.len());
            if let Some(shard) = shards.get(idx) {
                shard.series.write().insert(name, store);
            }
        }

        let io = Arc::new(IoStats::default());
        let cache = if config.enable_read_cache {
            Some(Arc::new(DecodedChunkCache::new(
                config.cache_capacity_bytes,
                Arc::clone(&io),
            )))
        } else {
            None
        };
        let policy = config.compaction_policy.build();
        Ok(EngineInner {
            dir,
            config,
            alloc,
            shards,
            io,
            cache,
            policy,
            changes: ChangeSink::default(),
        })
    }

    /// The shard owning `name`. `write_shards >= 1` is validated at
    /// open and `shard_of` is modulo the stripe count, so the index is
    /// always in bounds.
    fn shard(&self, name: &str) -> &Shard {
        &self.shards[shard_of(name, self.shards.len())]
    }

    /// Names of all known series (sorted).
    fn series_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for shard in &self.shards {
            names.extend(shard.series.read().keys().cloned());
        }
        names.sort();
        names
    }

    /// Create an empty series (inserting auto-creates too).
    fn create_series(&self, name: &str) -> Result<()> {
        validate_series_name(name)?;
        let exists = self.shard(name).series.read().contains_key(name);
        if exists {
            return Ok(());
        }
        // Prepare the directory and WAL handle before taking the write
        // lock, so no file I/O happens under it. A racing creator may
        // install first; `or_insert_with` then keeps theirs and this
        // call's handles are simply dropped.
        let sdir = self.dir.join(name);
        std::fs::create_dir_all(&sdir)?;
        let wal = if self.config.enable_wal {
            Some(Wal::open_grouped(
                SeriesStore::wal_path(&sdir),
                self.config.wal_batch_bytes,
            )?)
        } else {
            None
        };
        let mut map = self.shard(name).series.write();
        map.entry(name.to_string())
            .or_insert_with(|| SeriesStore::assemble(sdir, MemTable::new(), wal, Vec::new(), 0));
        Ok(())
    }

    /// Append `points` to the store's WAL buffer and memtable. Runs
    /// under the owning shard's write lock; pure in-memory work plus
    /// buffered WAL frames (drained by [`EngineInner::commit_wal`]).
    fn apply_inserts(&self, store: &mut SeriesStore, points: &[Point]) -> Result<()> {
        if let Some(wal) = &mut store.wal {
            wal.append_inserts(points)?;
        }
        for p in points {
            store.memtable.insert(*p);
        }
        self.io.record_points_written(points.len() as u64);
        Ok(())
    }

    /// Drain the store's WAL group-commit buffer in one syscall,
    /// fsyncing when `sync` (or always under [`FsyncPolicy::Always`]).
    /// Called before the shard lock is released, so every acknowledged
    /// write is in the OS first.
    fn commit_wal_with(&self, store: &mut SeriesStore, sync: bool) -> Result<()> {
        if let Some(wal) = &mut store.wal {
            let sync = sync || matches!(self.config.fsync_policy, FsyncPolicy::Always);
            let bytes = wal.commit(sync)?;
            if bytes > 0 {
                self.io.record_wal_batch(bytes);
                if sync {
                    self.io.record_wal_sync();
                }
            }
        }
        Ok(())
    }

    fn commit_wal(&self, store: &mut SeriesStore) -> Result<()> {
        self.commit_wal_with(store, false)
    }

    /// Insert a batch of points (any time order; duplicates overwrite).
    fn insert_batch(&self, name: &str, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        self.create_series(name)?;
        let need_flush = {
            let mut map = self.shard(name).series.write();
            let store = map
                .get_mut(name)
                .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
            self.apply_inserts(store, points)?;
            self.commit_wal(store)?;
            store.memtable.len() >= self.config.memtable_threshold && store.flushing.is_none()
        };
        if self.changes.active() {
            self.changes.publish(&ChangeEvent::Write {
                series: Arc::from(name),
                points: Arc::new(points.to_vec()),
            });
        }
        if need_flush {
            self.flush_series(name, false)?;
        }
        Ok(())
    }

    /// Apply a multi-series [`WriteBatch`]: series grouped by shard so
    /// each stripe's write lock is taken once, WAL frames group-commit
    /// per series (one syscall each, fsync per [`FsyncPolicy`]), and
    /// memtables that crossed the flush threshold flush after every
    /// lock is released. Returns the number of points written.
    fn write_batch(&self, batch: &WriteBatch) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        // Phase 1 (unlocked I/O): ensure every series exists.
        for (name, _) in batch.entries() {
            self.create_series(name)?;
        }
        // Phase 2: group by shard; one lock acquisition per stripe.
        let mut by_shard: Vec<Vec<(&str, &[Point])>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (name, points) in batch.entries() {
            if let Some(group) = by_shard.get_mut(shard_of(name, self.shards.len())) {
                group.push((name, points));
            }
        }
        let mut total = 0usize;
        let mut need_flush: Vec<String> = Vec::new();
        let notify = self.changes.active();
        let mut events: Vec<ChangeEvent> = Vec::new();
        for (idx, group) in by_shard.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let Some(shard) = self.shards.get(idx) else {
                continue;
            };
            let mut map = shard.series.write();
            for (name, points) in group {
                let store = map
                    .get_mut(*name)
                    .ok_or_else(|| TsKvError::SeriesNotFound((*name).into()))?;
                self.apply_inserts(store, points)?;
                self.commit_wal(store)?;
                total += points.len();
                if notify {
                    events.push(ChangeEvent::Write {
                        series: Arc::from(*name),
                        points: Arc::new(points.to_vec()),
                    });
                }
                if store.memtable.len() >= self.config.memtable_threshold
                    && store.flushing.is_none()
                {
                    need_flush.push((*name).to_string());
                }
            }
        }
        // Phase 3 (unlocked): notify listeners, then flush the
        // memtables that crossed the threshold.
        for event in &events {
            self.changes.publish(event);
        }
        for name in need_flush {
            self.flush_series(&name, false)?;
        }
        Ok(total)
    }

    /// Flush every series.
    fn flush_all(&self) -> Result<()> {
        for name in self.series_names() {
            self.flush_series(&name, true)?;
        }
        Ok(())
    }

    /// The flush state machine. `wait` controls behavior when another
    /// flush holds the series' in-flight slot: explicit flushes wait
    /// and then flush whatever is buffered; the auto-flush on the
    /// insert path just returns (the running flush is making room, and
    /// the next insert re-checks the threshold).
    fn flush_series(&self, name: &str, wait: bool) -> Result<()> {
        loop {
            // Phase A (locked): claim the in-flight slot, rotate the
            // WAL, drain the memtable, reserve chunk versions.
            let prep = {
                let mut map = self.shard(name).series.write();
                let store = map
                    .get_mut(name)
                    .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
                if store.flushing.is_some() {
                    FlushPrep::Busy
                } else if store.memtable.is_empty() {
                    FlushPrep::Done
                } else {
                    if let Some(wal) = &mut store.wal {
                        // Under FsyncPolicy::{Always, OnFlush} the WAL
                        // is made durable before its segment rotates
                        // out (the sealed TsFile supersedes it soon
                        // after; until then the segment is the only
                        // copy).
                        if !matches!(self.config.fsync_policy, FsyncPolicy::Never) {
                            wal.sync()?;
                            self.io.record_wal_sync();
                        }
                        wal.rotate_for_flush()?;
                    }
                    let points = Arc::new(store.memtable.drain_sorted());
                    // Reserving every chunk version while still locked
                    // guarantees that any later delete orders after
                    // every chunk of this flush.
                    let n_chunks = points.len().div_ceil(self.config.points_per_chunk).max(1);
                    let versions: Vec<Version> = (0..n_chunks).map(|_| self.alloc.next()).collect();
                    let last_version = versions
                        .last()
                        .copied()
                        .unwrap_or_else(|| self.alloc.current());
                    let path = store.dir.join(format!("{:08}.tsfile", store.next_file_id));
                    store.next_file_id += 1;
                    store.flushing = Some(FlushInFlight {
                        points: Arc::clone(&points),
                        last_version,
                    });
                    FlushPrep::Go {
                        points,
                        versions,
                        path,
                    }
                }
            };
            match prep {
                FlushPrep::Done => return Ok(()),
                FlushPrep::Busy if wait => {
                    std::thread::yield_now();
                    continue;
                }
                FlushPrep::Busy => return Ok(()),
                FlushPrep::Go {
                    points,
                    versions,
                    path,
                } => {
                    // Phase B (unlocked): the heavy encode + write.
                    let sealed = Self::seal_points(&self.config, &path, &points, &versions);
                    if sealed.is_err() {
                        std::fs::remove_file(&path).ok();
                    }
                    let out = self.install_flush(name, &points, sealed);
                    if out.is_ok() && self.changes.active() {
                        self.changes.publish(&ChangeEvent::Flush {
                            series: Arc::from(name),
                        });
                    }
                    return out;
                }
            }
        }
    }

    /// Flush phase C (locked): install the sealed file — or, on a
    /// sealing failure, put the points back.
    fn install_flush(
        &self,
        name: &str,
        points: &[Point],
        sealed: Result<TsFileResource>,
    ) -> Result<()> {
        let mut map = self.shard(name).series.write();
        let store = map
            .get_mut(name)
            .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        store.flushing = None;
        let pending = std::mem::take(&mut store.pending_mods);
        match sealed {
            Ok(mut res) => {
                // Deletes issued while sealing ran only reached the old
                // files; attach them to the new one too.
                for e in &pending {
                    let overlaps = res
                        .time_range()
                        .map(|r| r.overlaps(&e.range))
                        .unwrap_or(false);
                    if overlaps {
                        res.mods.append(*e)?;
                    }
                }
                store.files.push(res);
                if let Some(wal) = &mut store.wal {
                    wal.discard_sealed()?;
                }
                Ok(())
            }
            Err(e) => {
                // The points stay buffered (and, with WAL on, remain
                // covered by the sealed segment, which the next
                // rotation folds forward). Writes and deletes that
                // landed mid-flush are newer and must win — hence the
                // absent-only reinsert and the tombstone filter.
                for p in points {
                    if !pending.iter().any(|m| m.covers(p.t)) {
                        store.memtable.insert_if_absent(*p);
                    }
                }
                Err(e)
            }
        }
    }

    /// Encode `points` into a sealed TsFile at `path`, one chunk per
    /// `points_per_chunk` slice, consuming the pre-reserved `versions`
    /// in order. Runs without any engine lock held.
    fn seal_points(
        config: &EngineConfig,
        path: &Path,
        points: &[Point],
        versions: &[Version],
    ) -> Result<TsFileResource> {
        let mut w =
            TsFileWriter::create_with_encodings(path, config.ts_encoding, config.val_encoding)?;
        w.set_build_index(config.build_step_index);
        w.set_page_points(config.page_points);
        for (chunk, version) in points.chunks(config.points_per_chunk).zip(versions) {
            w.write_chunk(chunk, version.0)?;
        }
        w.finish()?;
        let reader = Arc::new(TsFileReader::open(path)?);
        let mods = ModsFile::open(path.with_extension("mods"))?;
        Ok(TsFileResource { reader, mods })
    }

    /// Delete all points of `name` in `[start, end]` (inclusive), as an
    /// append-only versioned tombstone. Memtable points are removed
    /// eagerly; sealed chunks are filtered at read time.
    fn delete(&self, name: &str, start: Timestamp, end: Timestamp) -> Result<()> {
        if start > end {
            return Err(TsKvError::InvalidDeleteRange { start, end });
        }
        {
            let mut map = self.shard(name).series.write();
            let store = map
                .get_mut(name)
                .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
            let version = self.alloc.next();
            let range = TimeRange::new(start, end);
            // Tombstones are rare and dangerous to lose: commit (and,
            // unless the policy is Never, fsync) the delete record
            // immediately.
            let sync_deletes = !matches!(self.config.fsync_policy, FsyncPolicy::Never);
            if let Some(wal) = &mut store.wal {
                wal.append_delete(version, range)?;
            }
            self.commit_wal_with(store, sync_deletes)?;
            store.memtable.delete_range(range);
            let entry = ModEntry::new(version, start, end);
            if store.flushing.is_some() {
                // The in-flight file is not in `files` yet; park the
                // entry so install_flush can attach it.
                store.pending_mods.push(entry);
            }
            for res in &mut store.files {
                let overlaps = res
                    .time_range()
                    .map(|r| r.overlaps(&range))
                    .unwrap_or(false);
                if overlaps {
                    res.mods.append(entry)?;
                }
            }
        }
        if self.changes.active() {
            self.changes.publish(&ChangeEvent::Delete {
                series: Arc::from(name),
                start,
                end,
            });
        }
        Ok(())
    }

    /// Capture a point-in-time read view of one series: all sealed
    /// chunks, any in-flight flush image, the memtable image (as a
    /// high-version in-memory chunk), and all deletes, each sorted by
    /// version.
    fn snapshot(&self, name: &str) -> Result<SeriesSnapshot> {
        let map = self.shard(name).series.read();
        let store = map
            .get(name)
            .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;

        let mut files = Vec::with_capacity(store.files.len());
        let mut chunks = Vec::new();
        let mut deletes: Vec<ModEntry> = Vec::new();
        for res in &store.files {
            let file_idx = files.len();
            for meta in res.reader.chunk_metas() {
                chunks.push(ChunkHandle::from_file(file_idx, meta.clone()));
            }
            for e in res.mods.entries() {
                // One delete op lands in several files' mods; versions
                // are globally unique, so dedup by version.
                if !deletes.iter().any(|d| d.version == e.version) {
                    deletes.push(*e);
                }
            }
            files.push(Arc::clone(&res.reader));
        }
        // Deletes issued mid-flush may not have reached any file yet.
        for e in &store.pending_mods {
            if !deletes.iter().any(|d| d.version == e.version) {
                deletes.push(*e);
            }
        }
        // Points being sealed by an in-flight flush: visible as a mem
        // chunk carrying the last version reserved for that flush, so
        // later deletes (higher version) apply to it and the live
        // memtable chunk (below, strictly higher again) overrides it.
        if let Some(fl) = &store.flushing {
            chunks.extend(ChunkHandle::from_mem(
                Arc::clone(&fl.points),
                fl.last_version,
            ));
        }
        if !store.memtable.is_empty() {
            let points = Arc::new(store.memtable.to_points());
            let version = Version(self.alloc.current().0 + 1);
            chunks.extend(ChunkHandle::from_mem(points, version));
        }
        chunks.sort_by_key(|c| c.version);
        deletes.sort_by_key(|d| d.version);
        Ok(SeriesSnapshot::new(
            files,
            chunks,
            deletes,
            Arc::clone(&self.io),
            self.cache.clone(),
            self.config.read_threads,
        ))
    }

    /// Fully compact one series: merge every sealed file (copying
    /// clean pages byte-for-byte, re-encoding dirty ones), write the
    /// result as a single fresh TsFile, and unlink the old files and
    /// their mods logs. The memtable and WAL are untouched. Returns an
    /// empty report if a compaction is already running for the series.
    /// See [`crate::compaction`].
    pub(crate) fn compact(&self, name: &str) -> Result<CompactionReport> {
        self.compact_run(name, CompactMode::Full)
    }

    /// Compact whatever contiguous run of sealed files the configured
    /// policy selects (possibly nothing). Used by the background
    /// scheduler and [`TsKv::compact_policy`].
    pub(crate) fn compact_policy(&self, name: &str) -> Result<CompactionReport> {
        self.compact_run(name, CompactMode::Policy)
    }

    /// The phased compaction state machine shared by the full and
    /// policy-driven entry points.
    fn compact_run(&self, name: &str, mode: CompactMode) -> Result<CompactionReport> {
        // Phase A (locked): choose the input run and capture its
        // metadata (chunk metas, mods entries, and Arc'd readers only —
        // no chunk bodies). Selecting under the same guard that sets
        // `compacting` closes the select/capture race; policies are
        // pure metadata math, so no I/O happens here.
        let (files, chunks, deletes, run, out_version, capture_ceiling, path) = {
            let mut map = self.shard(name).series.write();
            let store = map
                .get_mut(name)
                .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
            // An in-flight flush holds versions for points not yet
            // visible in `files`; merging around it risks ordering
            // confusion for no gain. Back off and let the scheduler
            // retry once the flush installs.
            if store.files.is_empty() || store.compacting || store.flushing.is_some() {
                return Ok(CompactionReport::empty());
            }
            let run = match mode {
                CompactMode::Full => 0..store.files.len(),
                CompactMode::Policy => {
                    let views: Vec<FileView> = store
                        .files
                        .iter()
                        .map(|res| FileView {
                            bytes: res.reader.chunk_metas().iter().map(|m| m.byte_len).sum(),
                            chunks: res.reader.chunk_metas().len(),
                            time_range: res.time_range(),
                            has_mods: !res.mods.entries().is_empty(),
                        })
                        .collect();
                    match self.policy.select(&views, self.config.compaction_threshold) {
                        Some(r) if !r.is_empty() && r.end <= store.files.len() => r,
                        _ => return Ok(CompactionReport::empty()),
                    }
                }
            };
            store.compacting = true;
            let mut files = Vec::with_capacity(run.len());
            let mut chunks = Vec::new();
            let mut deletes: Vec<ModEntry> = Vec::new();
            for res in store.files.get(run.clone()).unwrap_or(&[]) {
                let file_idx = files.len();
                for meta in res.reader.chunk_metas() {
                    chunks.push(ChunkHandle::from_file(file_idx, meta.clone()));
                }
                for e in res.mods.entries() {
                    // A delete that touches input data is attached to
                    // the input file it overlaps, so the run's own mods
                    // are a complete capture (dedup by version — one
                    // delete lands in several files' logs).
                    if !deletes.iter().any(|d| d.version == e.version) {
                        deletes.push(*e);
                    }
                }
                files.push(Arc::clone(&res.reader));
            }
            // Every output chunk carries the maximum input version.
            // The run is contiguous in version order, so anything that
            // outranked an input (a later file, a later delete) still
            // outranks the output, and nothing older can leapfrog it.
            // No fresh versions are allocated: a reserved version would
            // order the merged (older) data after concurrent deletes
            // that the merge never saw.
            let out_version = chunks.iter().map(|c| c.version.0).max().unwrap_or(0);
            // Deletes issued after this point get versions above the
            // ceiling; phase C uses it to find the ones the merge
            // missed. (`out_version` can be older than a pre-capture
            // delete that postdates the last flush — the ceiling is the
            // only version that cleanly splits "seen" from "missed".)
            let capture_ceiling = self.alloc.current();
            let path = store.dir.join(format!("{:08}.tsfile", store.next_file_id));
            store.next_file_id += 1;
            (
                files,
                chunks,
                deletes,
                run,
                out_version,
                capture_ceiling,
                path,
            )
        };
        let chunks_merged = chunks.len();
        let deletes_applied = deletes.len();

        // Phase B (unlocked): classify every input page clean/dirty
        // from footer metadata, then merge-and-write — clean pages
        // copied raw (CRC-revalidated, never decoded), dirty pages
        // decoded, k-way merged and re-encoded. The dirty merge reads
        // through a detached snapshot (no shared cache, detached
        // counters): compaction I/O is reported via the explicit
        // `compaction_*` counters instead of polluting the read-path
        // ones, and the input generation is about to be unlinked — not
        // worth caching.
        let views: Vec<ChunkView> = chunks
            .iter()
            .map(|c| ChunkView {
                version: c.version.0,
                range: c.time_range(),
                pages: c.paged().map(|info| {
                    info.pages
                        .iter()
                        .map(|p| PageView {
                            range: p.time_range(),
                            count: p.stats.count,
                        })
                        .collect()
                }),
            })
            .collect();
        let cplan = plan::classify(&views, &deletes, self.config.compaction_clean_page_copy);
        let outcome = execute::merge_to_file(
            &self.config,
            &path,
            &files,
            &chunks,
            deletes,
            &cplan,
            out_version,
        )
        .and_then(|o| {
            let sealed = if o.wrote_file {
                let reader = Arc::new(TsFileReader::open(&path)?);
                let mods = ModsFile::open(path.with_extension("mods"))?;
                Some(TsFileResource { reader, mods })
            } else {
                None
            };
            Ok((o, sealed))
        });
        if outcome.is_err() {
            std::fs::remove_file(&path).ok();
        }

        // Phase C (locked): swap the new generation into the run's
        // slot, carry forward mods that arrived during the merge,
        // collect the doomed paths. Only appends happened while
        // `compacting` was set (flush installs push at the tail), so
        // the run's indices are still valid and the in-place splice
        // keeps the file list version-ordered.
        let (doomed, outcome) = {
            let mut map = self.shard(name).series.write();
            let store = map
                .get_mut(name)
                .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
            store.compacting = false;
            let (outcome, sealed) = outcome?;
            // Deletes issued during the merge postdate the capture
            // ceiling and live only in the input files' mods.
            let mut carried: Vec<ModEntry> = Vec::new();
            for res in store.files.get(run.clone()).unwrap_or(&[]) {
                for e in res.mods.entries() {
                    if e.version > capture_ceiling
                        && !carried.iter().any(|d| d.version == e.version)
                    {
                        carried.push(*e);
                    }
                }
            }
            let tail = store.files.split_off(run.end);
            let removed = store.files.split_off(run.start);
            if let Some(mut res) = sealed {
                for e in carried {
                    let overlaps = res
                        .time_range()
                        .map(|r| r.overlaps(&e.range))
                        .unwrap_or(false);
                    if overlaps {
                        // Carried versions exceed the capture ceiling ≥
                        // every output chunk version, so they keep
                        // applying to the new file at read time.
                        res.mods.append(e)?;
                    }
                }
                store.files.push(res);
            }
            store.files.extend(tail);
            let doomed: Vec<(PathBuf, u64)> = removed
                .iter()
                .map(|r| (r.reader.path().to_path_buf(), r.reader.handle_id()))
                .collect();
            (doomed, outcome)
        };
        self.io.record_compaction_io(
            outcome.bytes_read,
            outcome.bytes_rewritten,
            outcome.pages_copied,
            outcome.pages_recoded,
        );

        // Phase D (unlocked): drop the retired files' cache entries and
        // unlink the old generation. The new file was written before
        // the unlink (a crash in between leaves a recoverable mix: the
        // new file holds only latest points, so re-reading both
        // generations still merges to the same series), and snapshots
        // still holding the old readers keep working — POSIX unlink
        // semantics. Such a straggler snapshot may re-populate a
        // retired file's cache entries after this invalidation; that is
        // benign (handle ids are never reused, so the entries can only
        // ever serve that same straggler) and the LRU ages them out.
        for (p, file_id) in &doomed {
            if let Some(cache) = &self.cache {
                cache.invalidate_file(*file_id);
            }
            std::fs::remove_file(p).ok();
            std::fs::remove_file(p.with_extension("mods")).ok();
        }
        Ok(CompactionReport {
            files_removed: doomed.len(),
            chunks_merged,
            points_written: outcome.points_written,
            deletes_applied,
            pages_copied: outcome.pages_copied,
            pages_recoded: outcome.pages_recoded,
            bytes_read: outcome.bytes_read,
            bytes_rewritten: outcome.bytes_rewritten,
        })
    }

    /// Engine-wide I/O counters (shared by all snapshots).
    pub(crate) fn io(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// Total points currently buffered in memory and not yet durable in
    /// a sealed file (the memtable plus any in-flight flush image).
    fn unflushed_points(&self, name: &str) -> Result<usize> {
        let map = self.shard(name).series.read();
        let store = map
            .get(name)
            .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        let in_flight = store.flushing.as_ref().map(|f| f.points.len()).unwrap_or(0);
        Ok(store.memtable.len() + in_flight)
    }

    /// Number of sealed TsFiles currently backing `name`.
    fn sealed_file_count(&self, name: &str) -> Result<usize> {
        let map = self.shard(name).series.read();
        let store = map
            .get(name)
            .ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        Ok(store.files.len())
    }

    /// Series whose sealed-file count reached `compaction_threshold`
    /// and that no compaction currently owns. Takes each shard's read
    /// guard only for the map walk — never across I/O — so the
    /// background scheduler can poll this cheaply.
    pub(crate) fn compaction_candidates(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read();
            for (name, store) in map.iter() {
                if store.files.len() >= self.config.compaction_threshold && !store.compacting {
                    out.push(name.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Scheduler poll interval.
    pub(crate) fn compaction_interval_ms(&self) -> u64 {
        self.config.compaction_interval_ms
    }
}

impl TsKv {
    /// Open (or create) a store rooted at `dir`, recovering any series
    /// directories found there: sealed TsFiles, their delete logs, and
    /// — when WAL is enabled — the unflushed memtable contents replayed
    /// from each series' write-ahead log (sealed segment first, so an
    /// interrupted flush loses nothing). Recovery fans out across up to
    /// `write_shards` threads, one series at a time per thread.
    ///
    /// A crash mid-flush or mid-compaction can leave one torn TsFile,
    /// always at the highest file id; it is quarantined (renamed to
    /// `*.corrupt`) rather than failing recovery, since its points are
    /// still covered by the WAL's sealed segment (flush) or by the
    /// older generation (compaction). An unreadable file at any other
    /// id is genuine corruption and surfaces as an error.
    ///
    /// When `compaction_auto` is set, a background scheduler thread
    /// starts here and stops (joined) when the store drops.
    pub fn open<P: AsRef<Path>>(dir: P, config: EngineConfig) -> Result<Self> {
        let inner = Arc::new(EngineInner::open(dir.as_ref().to_path_buf(), config)?);
        let scheduler = if inner.config.compaction_auto {
            Some(CompactionScheduler::spawn(Arc::clone(&inner))?)
        } else {
            None
        };
        Ok(TsKv { scheduler, inner })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Names of all known series (sorted).
    pub fn series_names(&self) -> Vec<String> {
        self.inner.series_names()
    }

    /// Create an empty series (inserting auto-creates too).
    pub fn create_series(&self, name: &str) -> Result<()> {
        self.inner.create_series(name)
    }

    /// Insert one point; may trigger an automatic flush when the
    /// memtable reaches the configured threshold.
    pub fn insert(&self, name: &str, p: Point) -> Result<()> {
        self.inner.insert_batch(name, std::slice::from_ref(&p))
    }

    /// Insert a batch of points into one series (any time order;
    /// duplicates overwrite).
    pub fn insert_batch(&self, name: &str, points: &[Point]) -> Result<()> {
        self.inner.insert_batch(name, points)
    }

    /// Apply a multi-series [`WriteBatch`]: one shard-lock acquisition
    /// per stripe touched, one WAL group-commit syscall per series,
    /// fsync per the configured [`FsyncPolicy`]. Returns the number of
    /// points written.
    pub fn write_batch(&self, batch: &WriteBatch) -> Result<usize> {
        self.inner.write_batch(batch)
    }

    /// Flush one series' memtable to a new sealed TsFile.
    pub fn flush(&self, name: &str) -> Result<()> {
        self.inner.flush_series(name, true)
    }

    /// Flush every series.
    pub fn flush_all(&self) -> Result<()> {
        self.inner.flush_all()
    }

    /// Delete all points of `name` in `[start, end]` (inclusive), as an
    /// append-only versioned tombstone. Memtable points are removed
    /// eagerly; sealed chunks are filtered at read time.
    pub fn delete(&self, name: &str, start: Timestamp, end: Timestamp) -> Result<()> {
        self.inner.delete(name, start, end)
    }

    /// Capture a point-in-time read view of one series. See
    /// [`SeriesSnapshot`].
    pub fn snapshot(&self, name: &str) -> Result<SeriesSnapshot> {
        self.inner.snapshot(name)
    }

    /// Fully compact one series: merge every sealed file (applying
    /// deletes and overwrites; clean pages are copied byte-for-byte,
    /// only dirty pages re-encode), write the result as a single fresh
    /// TsFile, and unlink the old files and their mods logs. The
    /// memtable and WAL are untouched. Returns an empty report if a
    /// compaction is already running for the series.
    /// See [`crate::compaction`].
    pub fn compact(&self, name: &str) -> Result<CompactionReport> {
        self.inner.compact(name)
    }

    /// Compact one series according to the configured
    /// [`CompactionPolicy`]: the policy picks the contiguous run of
    /// sealed files to merge — or declines, yielding an empty report.
    /// Same phased execution and page-aware rewrite avoidance as
    /// [`compact`]. This is what the background scheduler runs on
    /// every candidate.
    ///
    /// [`CompactionPolicy`]: crate::compaction::policy::CompactionPolicy
    /// [`compact`]: TsKv::compact
    pub fn compact_policy(&self, name: &str) -> Result<CompactionReport> {
        self.inner.compact_policy(name)
    }

    /// Subscribe to change notifications: every write, delete, and
    /// flush publishes a [`ChangeEvent`] to each listener over a
    /// bounded queue of `depth` events. Publishing never blocks the
    /// write path — when a listener's queue is full the event is
    /// dropped and the listener's *missed* flag raised, telling it to
    /// resynchronize from a fresh [`TsKv::snapshot`]. See
    /// [`crate::notify`].
    pub fn subscribe_changes(&self, depth: usize) -> ChangeRx {
        self.inner.changes.register(depth)
    }

    /// Engine-wide I/O counters (shared by all snapshots).
    pub fn io(&self) -> &Arc<IoStats> {
        self.inner.io()
    }

    /// The cross-query decoded-chunk cache, if enabled by config.
    pub fn cache(&self) -> Option<&Arc<DecodedChunkCache>> {
        self.inner.cache.as_ref()
    }

    /// Total points currently buffered in memory and not yet durable in
    /// a sealed file (the memtable plus any in-flight flush image).
    pub fn unflushed_points(&self, name: &str) -> Result<usize> {
        self.inner.unflushed_points(name)
    }

    /// Number of sealed TsFiles currently backing `name`.
    pub fn sealed_file_count(&self, name: &str) -> Result<usize> {
        self.inner.sealed_file_count(name)
    }

    /// Whether the background compaction scheduler is running.
    pub fn compaction_scheduler_running(&self) -> bool {
        self.scheduler.is_some()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::panic)]

    use super::*;
    use crate::readers::MergeReader;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn fresh(name: &str) -> Result<(PathBuf, TsKv)> {
        let dir = std::env::temp_dir().join(format!("tskv-engine-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 100,
                memtable_threshold: 250,
                ..Default::default()
            },
        )?;
        Ok((dir, kv))
    }

    #[test]
    fn change_notifications_cover_write_delete_flush() -> TestResult {
        let (dir, kv) = fresh("notify")?;
        let rx = kv.subscribe_changes(64);
        kv.insert_batch("s", &[Point::new(1, 1.0), Point::new(2, 2.0)])?;
        kv.delete("s", 1, 1)?;
        kv.flush("s")?;
        let mut batch = WriteBatch::new();
        batch.insert("s", Point::new(3, 3.0));
        batch.insert("t", Point::new(4, 4.0));
        kv.write_batch(&batch)?;
        match rx.try_recv() {
            Some(ChangeEvent::Write { series, points }) => {
                assert_eq!(&*series, "s");
                assert_eq!(points.len(), 2);
            }
            other => panic!("expected write event, got {other:?}"),
        }
        match rx.try_recv() {
            Some(ChangeEvent::Delete { series, start, end }) => {
                assert_eq!(&*series, "s");
                assert_eq!((start, end), (1, 1));
            }
            other => panic!("expected delete event, got {other:?}"),
        }
        match rx.try_recv() {
            Some(ChangeEvent::Flush { series }) => assert_eq!(&*series, "s"),
            other => panic!("expected flush event, got {other:?}"),
        }
        let mut batch_series: Vec<String> = Vec::new();
        while let Some(e) = rx.try_recv() {
            match e {
                ChangeEvent::Write { series, points } => {
                    assert_eq!(points.len(), 1);
                    batch_series.push(series.to_string());
                }
                other => panic!("expected write events, got {other:?}"),
            }
        }
        batch_series.sort();
        assert_eq!(batch_series, vec!["s".to_string(), "t".to_string()]);
        assert!(!rx.missed());
        // Dropping the receiver detaches it; later writes are no-ops.
        drop(rx);
        kv.insert("s", Point::new(9, 9.0))?;
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn auto_flush_on_threshold() -> TestResult {
        let (dir, kv) = fresh("autoflush")?;
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, 0.0))?;
        }
        // Two auto-flushes (at 250 and 500); 100 points remain buffered.
        assert_eq!(kv.unflushed_points("s")?, 100);
        let snap = kv.snapshot("s")?;
        // 250/100 → 3 chunks per flush (100+100+50), ×2 files, + mem chunk.
        assert_eq!(snap.chunks().len(), 7);
        assert_eq!(snap.raw_point_count(), 600);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn chunk_versions_strictly_increase() -> TestResult {
        let (dir, kv) = fresh("versions")?;
        for t in 0..500i64 {
            kv.insert("s", Point::new(t, 0.0))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let versions: Vec<u64> = snap.chunks().iter().map(|c| c.version.0).collect();
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "{versions:?}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_validates_range() -> TestResult {
        let (dir, kv) = fresh("badrange")?;
        kv.create_series("s")?;
        assert!(matches!(
            kv.delete("s", 10, 5),
            Err(TsKvError::InvalidDeleteRange { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn unknown_series_errors() -> TestResult {
        let (dir, kv) = fresh("unknown")?;
        assert!(matches!(
            kv.snapshot("nope"),
            Err(TsKvError::SeriesNotFound(_))
        ));
        assert!(matches!(
            kv.delete("nope", 0, 1),
            Err(TsKvError::SeriesNotFound(_))
        ));
        assert!(matches!(
            kv.flush("nope"),
            Err(TsKvError::SeriesNotFound(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn invalid_series_name_rejected() -> TestResult {
        let (dir, kv) = fresh("badname")?;
        assert!(kv.create_series("../evil").is_err());
        assert!(kv.create_series("").is_err());
        assert!(kv.create_series("a/b").is_err());
        assert!(kv.create_series("room1.sensor_2-x").is_ok());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn recovery_reloads_files_and_mods() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-recover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 100,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for t in 0..300i64 {
                kv.insert("s", Point::new(t, t as f64))?;
            }
            kv.flush_all()?;
            kv.delete("s", 100, 150)?;
        }
        // Reopen: sealed data + deletes must be back; versions must
        // continue past the recovered maximum.
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.series_names(), vec!["s".to_string()]);
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 300);
        assert_eq!(snap.deletes().len(), 1);
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 300 - 51);

        // New writes get versions above everything recovered.
        let max_recovered = snap
            .chunks()
            .iter()
            .map(|c| c.version.0)
            .chain(snap.deletes().iter().map(|d| d.version.0))
            .max()
            .ok_or("recovered snapshot is empty")?;
        kv.insert("s", Point::new(1000, 1.0))?;
        kv.flush_all()?;
        let snap2 = kv.snapshot("s")?;
        let new_max = snap2
            .chunks()
            .iter()
            .map(|c| c.version.0)
            .max()
            .ok_or("no chunks after flush")?;
        assert!(new_max > max_recovered);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn out_of_order_batches_create_overlapping_chunks() -> TestResult {
        let (dir, kv) = fresh("overlap")?;
        let batch1: Vec<Point> = (0..200).map(|t| Point::new(t, 1.0)).collect();
        kv.insert_batch("s", &batch1)?;
        kv.flush_all()?;
        let batch2: Vec<Point> = (100..300).map(|t| Point::new(t, 2.0)).collect();
        kv.insert_batch("s", &batch2)?;
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let overlapping = snap.chunks_overlapping(TimeRange::new(100, 199));
        assert!(
            overlapping.len() >= 2,
            "expected overlap, got {}",
            overlapping.len()
        );
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 300);
        assert!(merged
            .iter()
            .filter(|p| (100..200).contains(&p.t))
            .all(|p| p.v == 2.0));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_future_range_affects_nothing() -> TestResult {
        let (dir, kv) = fresh("futuredel")?;
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 10_000, 20_000)?;
        // Points written after the delete, inside its range: unaffected.
        for t in 10_000..10_010i64 {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 110);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn wal_recovers_unflushed_data() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-walrec-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for t in 0..300i64 {
                kv.insert("s", Point::new(t, t as f64))?;
            }
            // Delete part of the buffered range, then add more — all
            // without ever flushing.
            kv.delete("s", 100, 199)?;
            for t in 300..400i64 {
                kv.insert("s", Point::new(t, 7.0))?;
            }
            // Simulated crash: drop without flushing.
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.unflushed_points("s")?, 300);
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 300);
        assert!(merged.iter().all(|p| !(100..=199).contains(&p.t)));
        assert!(merged.iter().filter(|p| p.t >= 300).all(|p| p.v == 7.0));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn wal_truncated_by_flush() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-waltrunc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 100,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            // 250 points: two auto-flushes, 50 left in WAL + memtable.
            for t in 0..250i64 {
                kv.insert("s", Point::new(t, 1.0))?;
            }
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.unflushed_points("s")?, 50);
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 250);
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 250);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn flush_discards_sealed_wal_segment() -> TestResult {
        let (dir, kv) = fresh("wal-clean")?;
        for t in 0..10i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // A completed flush leaves neither a sealed segment nor live
        // records in the active one.
        let wal_path = dir.join("s").join("series.wal");
        assert!(!Wal::sealed_path(&wal_path).exists());
        assert!(Wal::replay(&wal_path)?.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn recovery_reattaches_wal_delete_to_missing_mods() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-reattach-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            let batch: Vec<Point> = (0..100).map(|t| Point::new(t, 1.0)).collect();
            kv.insert_batch("s", &batch)?;
            kv.flush_all()?;
            kv.delete("s", 10, 20)?;
        }
        // Simulate a crash between the WAL append and the mods append:
        // drop the mods file; the delete now lives only in the WAL.
        for f in std::fs::read_dir(dir.join("s"))? {
            let p = f?.path();
            if p.extension().and_then(|e| e.to_str()) == Some("mods") {
                std::fs::remove_file(&p)?;
            }
        }
        let kv = TsKv::open(&dir, config)?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.deletes().len(), 1, "WAL delete must be re-attached");
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 89);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn torn_newest_tsfile_quarantined() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-quarantine-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            let batch: Vec<Point> = (0..100).map(|t| Point::new(t, 1.0)).collect();
            kv.insert_batch("s", &batch)?;
            kv.flush_all()?;
            let batch: Vec<Point> = (100..200).map(|t| Point::new(t, 2.0)).collect();
            kv.insert_batch("s", &batch)?;
            kv.flush_all()?;
        }
        // Tear the newest file (as a crash mid-flush would).
        let torn = dir.join("s").join("00000001.tsfile");
        std::fs::write(&torn, b"TSF1 torn mid-write")?;
        let kv = TsKv::open(&dir, config)?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 100, "older generation must survive");
        assert!(dir.join("s").join("00000001.tsfile.corrupt").exists());
        // The quarantined id is not reused.
        kv.insert("s", Point::new(500, 1.0))?;
        kv.flush_all()?;
        assert!(dir.join("s").join("00000002.tsfile").exists());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn wal_disabled_drops_unflushed() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-nowal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            enable_wal: false,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            kv.insert("s", Point::new(1, 1.0))?;
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.unflushed_points("s")?, 0);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_on_empty_series_is_recorded_but_harmless() -> TestResult {
        let (dir, kv) = fresh("empty-del")?;
        kv.create_series("s")?;
        kv.delete("s", 0, 100)?;
        let snap = kv.snapshot("s")?;
        // No files → nothing to attach the tombstone to; the op is a
        // no-op beyond consuming a version.
        assert!(snap.deletes().is_empty());
        kv.insert("s", Point::new(50, 1.0))?;
        kv.flush_all()?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(
            merged.len(),
            1,
            "later write must not be hit by the earlier delete"
        );
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn repeated_identical_deletes_are_idempotent() -> TestResult {
        let (dir, kv) = fresh("dup-del")?;
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 10, 20)?;
        kv.delete("s", 10, 20)?;
        kv.delete("s", 10, 20)?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.deletes().len(), 3); // three ops, distinct versions
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 89);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn single_point_series_lifecycle() -> TestResult {
        let (dir, kv) = fresh("single")?;
        kv.insert("s", Point::new(i64::MAX - 1, f64::MAX))?;
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 1);
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged, vec![Point::new(i64::MAX - 1, f64::MAX)]);
        kv.delete("s", i64::MAX - 1, i64::MAX)?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert!(merged.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn negative_timestamps_supported() -> TestResult {
        let (dir, kv) = fresh("negative")?;
        for t in -500..-400i64 {
            kv.insert("s", Point::new(t, t as f64))?;
        }
        kv.flush_all()?;
        kv.delete("s", -480, -460)?;
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 100 - 21);
        assert_eq!(merged.first().map(|p| p.t), Some(-500));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn write_batch_spans_series_and_shards() -> TestResult {
        let (dir, kv) = fresh("wbatch")?;
        let mut batch = WriteBatch::new();
        for s in 0..16 {
            let pts: Vec<Point> = (0..50).map(|t| Point::new(t, s as f64)).collect();
            batch.insert_many(&format!("series-{s}"), &pts);
        }
        assert_eq!(kv.write_batch(&batch)?, 16 * 50);
        assert_eq!(kv.series_names().len(), 16);
        for s in 0..16 {
            let merged =
                MergeReader::new(&kv.snapshot(&format!("series-{s}"))?).collect_merged()?;
            assert_eq!(merged.len(), 50);
            assert!(merged.iter().all(|p| p.v == s as f64));
        }
        let io = kv.io().snapshot();
        assert_eq!(io.points_written, 16 * 50);
        // One WAL group-commit batch per touched series (not per point).
        assert_eq!(io.wal_batches, 16);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn write_batch_auto_flushes_past_threshold() -> TestResult {
        let (dir, kv) = fresh("wbatch-flush")?;
        let mut batch = WriteBatch::new();
        let pts: Vec<Point> = (0..300).map(|t| Point::new(t, 1.0)).collect();
        batch.insert_many("s", &pts); // memtable_threshold is 250
        kv.write_batch(&batch)?;
        assert_eq!(
            kv.unflushed_points("s")?,
            0,
            "batch must flush past the threshold"
        );
        assert_eq!(kv.sealed_file_count("s")?, 1);
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 300);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn fsync_always_records_syncs() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-fsync-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                fsync_policy: FsyncPolicy::Always,
                ..Default::default()
            },
        )?;
        kv.insert("s", Point::new(1, 1.0))?;
        kv.insert("s", Point::new(2, 2.0))?;
        let io = kv.io().snapshot();
        assert_eq!(io.wal_batches, 2);
        assert_eq!(io.wal_syncs, 2);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn background_scheduler_bounds_sealed_files() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-sched-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 50,
                memtable_threshold: 1_000,
                compaction_auto: true,
                compaction_threshold: 3,
                compaction_interval_ms: 2,
                ..Default::default()
            },
        )?;
        assert!(kv.compaction_scheduler_running());
        // Create sealed files faster than the threshold allows.
        for round in 0..8i64 {
            let pts: Vec<Point> = (0..40)
                .map(|t| Point::new(round * 40 + t, round as f64))
                .collect();
            kv.insert_batch("s", &pts)?;
            kv.flush("s")?;
        }
        // The scheduler must merge the pile back under the threshold.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let n = kv.sealed_file_count("s")?;
            if n <= 3 {
                break;
            }
            if std::time::Instant::now() > deadline {
                return Err(format!("sealed files stuck at {n}").into());
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let io = kv.io().snapshot();
        assert!(io.compactions_scheduled > 0);
        assert!(io.compactions_completed > 0);
        // Nothing lost or duplicated by background merging.
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 8 * 40);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn parallel_recovery_restores_every_series_in_write_order() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-precover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 20,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        let n_series = 12usize;
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for s in 0..n_series {
                let name = format!("series-{s}");
                // Sealed data…
                let pts: Vec<Point> = (0..60).map(|t| Point::new(t, 1.0)).collect();
                kv.insert_batch(&name, &pts)?;
                kv.flush(&name)?;
                // …then unflushed WAL-only state: an overwrite (later
                // write must win after replay), a delete, new points.
                kv.insert(&name, Point::new(10, 99.0))?;
                kv.delete(&name, 20, 29)?;
                kv.insert_batch(&name, &[Point::new(100, 2.0), Point::new(101, 2.0)])?;
            }
            // Simulated crash: drop without flushing.
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.series_names().len(), n_series);
        for s in 0..n_series {
            let name = format!("series-{s}");
            let merged = MergeReader::new(&kv.snapshot(&name)?).collect_merged()?;
            // 60 sealed + 2 new − 10 deleted (20..=29).
            assert_eq!(merged.len(), 52, "{name}");
            // WAL replay preserved write order: the overwrite of t=10
            // (appended after the original) must win.
            let at10 = merged.iter().find(|p| p.t == 10).map(|p| p.v);
            assert_eq!(at10, Some(99.0), "{name}");
            assert!(merged.iter().all(|p| !(20..=29).contains(&p.t)), "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn single_shard_config_still_works() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-oneshard-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                write_shards: 1,
                ..Default::default()
            },
        )?;
        let mut batch = WriteBatch::new();
        for s in 0..4 {
            batch.insert_many(&format!("s{s}"), &[Point::new(1, s as f64)]);
        }
        assert_eq!(kv.write_batch(&batch)?, 4);
        assert_eq!(kv.series_names().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn multiple_series_are_independent() -> TestResult {
        let (dir, kv) = fresh("multi")?;
        kv.insert("a", Point::new(1, 1.0))?;
        kv.insert("b", Point::new(2, 2.0))?;
        kv.flush_all()?;
        kv.delete("a", 0, 10)?;
        let a = MergeReader::new(&kv.snapshot("a")?).collect_merged()?;
        let b = MergeReader::new(&kv.snapshot("b")?).collect_merged()?;
        assert!(a.is_empty());
        assert_eq!(b, vec![Point::new(2, 2.0)]);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
