//! The storage engine: series management, write path, flush, delete,
//! snapshot, and recovery from disk.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;

use tsfile::types::{Point, TimeRange, Timestamp, Version};
use tsfile::{ModEntry, ModsFile, TsFileReader, TsFileWriter};

use crate::chunk::ChunkHandle;
use crate::compaction::CompactionReport;
use crate::config::EngineConfig;
use crate::readers::MergeReader;
use crate::memtable::MemTable;
use crate::snapshot::SeriesSnapshot;
use crate::stats::IoStats;
use crate::version::VersionAllocator;
use crate::wal::{Wal, WalRecord};
use crate::{Result, TsKvError};

/// One sealed TsFile plus its delete log.
#[derive(Debug)]
struct TsFileResource {
    reader: Arc<TsFileReader>,
    mods: ModsFile,
}

impl TsFileResource {
    /// Time interval spanned by the file's chunks, if any.
    fn time_range(&self) -> Option<TimeRange> {
        let metas = self.reader.chunk_metas();
        let start = metas.iter().map(|m| m.stats.first.t).min()?;
        let end = metas.iter().map(|m| m.stats.last.t).max()?;
        Some(TimeRange::new(start, end))
    }
}

/// Per-series state: the memtable, its WAL, and the sealed files.
#[derive(Debug)]
struct SeriesStore {
    dir: PathBuf,
    memtable: MemTable,
    wal: Option<Wal>,
    files: Vec<TsFileResource>,
    next_file_id: u64,
}

impl SeriesStore {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("series.wal")
    }
}

/// The LSM time series store.
///
/// See the crate docs for the data model. All methods are `&self`;
/// internal state is behind a [`parking_lot::RwLock`].
#[derive(Debug)]
pub struct TsKv {
    dir: PathBuf,
    config: EngineConfig,
    alloc: VersionAllocator,
    series: RwLock<HashMap<String, SeriesStore>>,
    io: Arc<IoStats>,
}

fn validate_series_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 200
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(TsKvError::InvalidSeriesName(name.to_string()))
    }
}

impl TsKv {
    /// Open (or create) a store rooted at `dir`, recovering any series
    /// directories found there: sealed TsFiles, their delete logs, and
    /// — when WAL is enabled — the unflushed memtable contents replayed
    /// from each series' write-ahead log.
    pub fn open<P: AsRef<Path>>(dir: P, config: EngineConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let config = config.normalized();
        let alloc = VersionAllocator::default();
        let mut series = HashMap::new();

        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if validate_series_name(&name).is_err() {
                continue; // foreign directory; ignore
            }
            let sdir = entry.path();
            let mut files: Vec<(u64, TsFileResource)> = Vec::new();
            for f in std::fs::read_dir(&sdir)? {
                let f = f?;
                let path = f.path();
                if path.extension().and_then(|e| e.to_str()) != Some("tsfile") {
                    continue;
                }
                let id: u64 = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                let reader = Arc::new(TsFileReader::open(&path)?);
                let mods = ModsFile::open(path.with_extension("mods"))?;
                for m in reader.chunk_metas() {
                    alloc.observe(m.version);
                }
                for e in mods.entries() {
                    alloc.observe(e.version);
                }
                files.push((id, TsFileResource { reader, mods }));
            }
            files.sort_by_key(|(id, _)| *id);
            let next_file_id = files.last().map(|(id, _)| id + 1).unwrap_or(0);
            let files = files.into_iter().map(|(_, r)| r).collect();
            // Replay the WAL (if any) into a fresh memtable, restoring
            // unflushed state in operation order.
            let mut memtable = MemTable::new();
            let wal_path = SeriesStore::wal_path(&sdir);
            for record in Wal::replay(&wal_path)? {
                match record {
                    WalRecord::Insert(points) => {
                        for p in points {
                            memtable.insert(p);
                        }
                    }
                    WalRecord::Delete(range) => {
                        memtable.delete_range(range);
                    }
                }
            }
            let wal = if config.enable_wal { Some(Wal::open(&wal_path)?) } else { None };
            series.insert(
                name,
                SeriesStore { dir: sdir, memtable, wal, files, next_file_id },
            );
        }

        Ok(TsKv { dir, config, alloc, series: RwLock::new(series), io: Arc::new(IoStats::default()) })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Names of all known series (sorted).
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.series.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Create an empty series (inserting auto-creates too).
    pub fn create_series(&self, name: &str) -> Result<()> {
        validate_series_name(name)?;
        let mut map = self.series.write();
        if !map.contains_key(name) {
            let sdir = self.dir.join(name);
            std::fs::create_dir_all(&sdir)?;
            let wal = if self.config.enable_wal {
                Some(Wal::open(SeriesStore::wal_path(&sdir))?)
            } else {
                None
            };
            map.insert(
                name.to_string(),
                SeriesStore {
                    dir: sdir,
                    memtable: MemTable::new(),
                    wal,
                    files: Vec::new(),
                    next_file_id: 0,
                },
            );
        }
        Ok(())
    }

    /// Insert one point; may trigger an automatic flush when the
    /// memtable reaches the configured threshold.
    pub fn insert(&self, name: &str, p: Point) -> Result<()> {
        self.insert_batch(name, std::slice::from_ref(&p))
    }

    /// Insert a batch of points (any time order; duplicates overwrite).
    pub fn insert_batch(&self, name: &str, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        self.create_series(name)?;
        let mut map = self.series.write();
        let store = map.get_mut(name).expect("created above");
        // Log and apply in sub-batches that never straddle a flush: a
        // flush truncates the WAL, so records must cover exactly the
        // points still buffered at that moment.
        let mut rest = points;
        while !rest.is_empty() {
            let room = self.config.memtable_threshold.saturating_sub(store.memtable.len()).max(1);
            let (head, tail) = rest.split_at(room.min(rest.len()));
            rest = tail;
            if let Some(wal) = &mut store.wal {
                wal.append_inserts(head)?;
            }
            for p in head {
                store.memtable.insert(*p);
            }
            if store.memtable.len() >= self.config.memtable_threshold {
                Self::flush_store(&self.config, &self.alloc, store)?;
            }
        }
        Ok(())
    }

    /// Flush one series' memtable to a new sealed TsFile.
    pub fn flush(&self, name: &str) -> Result<()> {
        let mut map = self.series.write();
        let store = map.get_mut(name).ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        Self::flush_store(&self.config, &self.alloc, store)
    }

    /// Flush every series.
    pub fn flush_all(&self) -> Result<()> {
        let mut map = self.series.write();
        for store in map.values_mut() {
            Self::flush_store(&self.config, &self.alloc, store)?;
        }
        Ok(())
    }

    fn flush_store(
        config: &EngineConfig,
        alloc: &VersionAllocator,
        store: &mut SeriesStore,
    ) -> Result<()> {
        if store.memtable.is_empty() {
            return Ok(());
        }
        let points = store.memtable.drain_sorted();
        let path = store.dir.join(format!("{:08}.tsfile", store.next_file_id));
        store.next_file_id += 1;
        let mut w =
            TsFileWriter::create_with_encodings(&path, config.ts_encoding, config.val_encoding)?;
        w.set_build_index(config.build_step_index);
        for chunk in points.chunks(config.points_per_chunk) {
            let version = alloc.next();
            w.write_chunk(chunk, version.0)?;
        }
        w.finish()?;
        let reader = Arc::new(TsFileReader::open(&path)?);
        let mods = ModsFile::open(path.with_extension("mods"))?;
        store.files.push(TsFileResource { reader, mods });
        // The flushed points are durable in the sealed file; the WAL
        // records covering them can go.
        if let Some(wal) = &mut store.wal {
            wal.reset()?;
        }
        Ok(())
    }

    /// Delete all points of `name` in `[start, end]` (inclusive), as an
    /// append-only versioned tombstone. Memtable points are removed
    /// eagerly; sealed chunks are filtered at read time.
    pub fn delete(&self, name: &str, start: Timestamp, end: Timestamp) -> Result<()> {
        if start > end {
            return Err(TsKvError::InvalidDeleteRange { start, end });
        }
        let mut map = self.series.write();
        let store = map.get_mut(name).ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        let version = self.alloc.next();
        let range = TimeRange::new(start, end);
        if let Some(wal) = &mut store.wal {
            wal.append_delete(range)?;
            wal.sync()?;
        }
        store.memtable.delete_range(range);
        let entry = ModEntry::new(version, start, end);
        for res in &mut store.files {
            let overlaps = res.time_range().map(|r| r.overlaps(&range)).unwrap_or(false);
            if overlaps {
                res.mods.append(entry)?;
            }
        }
        Ok(())
    }

    /// Capture a point-in-time read view of one series: all sealed
    /// chunks, the memtable image (as a high-version in-memory chunk),
    /// and all deletes, each sorted by version.
    pub fn snapshot(&self, name: &str) -> Result<SeriesSnapshot> {
        let map = self.series.read();
        let store = map.get(name).ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;

        let mut files = Vec::with_capacity(store.files.len());
        let mut chunks = Vec::new();
        let mut deletes: Vec<ModEntry> = Vec::new();
        for res in &store.files {
            let file_idx = files.len();
            for meta in res.reader.chunk_metas() {
                chunks.push(ChunkHandle::from_file(file_idx, meta.clone()));
            }
            for e in res.mods.entries() {
                // One delete op lands in several files' mods; versions
                // are globally unique, so dedup by version.
                if !deletes.iter().any(|d| d.version == e.version) {
                    deletes.push(*e);
                }
            }
            files.push(Arc::clone(&res.reader));
        }
        if !store.memtable.is_empty() {
            let points = Arc::new(store.memtable.to_points());
            let version = Version(self.alloc.current().0 + 1);
            chunks.push(ChunkHandle::from_mem(points, version));
        }
        chunks.sort_by_key(|c| c.version);
        deletes.sort_by_key(|d| d.version);
        Ok(SeriesSnapshot::new(files, chunks, deletes, Arc::clone(&self.io)))
    }

    /// Fully compact one series: merge every sealed file (applying
    /// deletes and overwrites), write the result as a single fresh
    /// TsFile, and unlink the old files and their mods logs. The
    /// memtable and WAL are untouched. See [`crate::compaction`].
    pub fn compact(&self, name: &str) -> Result<CompactionReport> {
        let mut map = self.series.write();
        let store = map.get_mut(name).ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        if store.files.is_empty() {
            return Ok(CompactionReport::empty());
        }

        // Sealed-only snapshot (no memtable chunk): the merge input.
        let mut files = Vec::with_capacity(store.files.len());
        let mut chunks = Vec::new();
        let mut deletes: Vec<ModEntry> = Vec::new();
        for res in &store.files {
            let file_idx = files.len();
            for meta in res.reader.chunk_metas() {
                chunks.push(ChunkHandle::from_file(file_idx, meta.clone()));
            }
            for e in res.mods.entries() {
                if !deletes.iter().any(|d| d.version == e.version) {
                    deletes.push(*e);
                }
            }
            files.push(Arc::clone(&res.reader));
        }
        let chunks_merged = chunks.len();
        let deletes_applied = deletes.len();
        let snapshot = SeriesSnapshot::new(files, chunks, deletes, Arc::clone(&self.io));
        let merged = MergeReader::new(&snapshot).collect_merged()?;

        let report = CompactionReport {
            files_removed: store.files.len(),
            chunks_merged,
            points_written: merged.len(),
            deletes_applied,
        };

        // Write the replacement file first; only then unlink the old
        // generation (crash between the two leaves a recoverable mix:
        // the new file holds only latest points, so re-reading both
        // generations still merges to the same series).
        let mut new_files = Vec::new();
        if !merged.is_empty() {
            let path = store.dir.join(format!("{:08}.tsfile", store.next_file_id));
            store.next_file_id += 1;
            let mut w = TsFileWriter::create_with_encodings(
                &path,
                self.config.ts_encoding,
                self.config.val_encoding,
            )?;
            w.set_build_index(self.config.build_step_index);
            for chunk in merged.chunks(self.config.points_per_chunk) {
                let version = self.alloc.next();
                w.write_chunk(chunk, version.0)?;
            }
            w.finish()?;
            let reader = Arc::new(TsFileReader::open(&path)?);
            let mods = ModsFile::open(path.with_extension("mods"))?;
            new_files.push(TsFileResource { reader, mods });
        }
        let old = std::mem::replace(&mut store.files, new_files);
        for res in old {
            let path = res.reader.path().to_path_buf();
            std::fs::remove_file(&path).ok();
            std::fs::remove_file(path.with_extension("mods")).ok();
        }
        Ok(report)
    }

    /// Engine-wide I/O counters (shared by all snapshots).
    pub fn io(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// Total points currently buffered in memtables (not yet flushed).
    pub fn unflushed_points(&self, name: &str) -> Result<usize> {
        let map = self.series.read();
        let store = map.get(name).ok_or_else(|| TsKvError::SeriesNotFound(name.into()))?;
        Ok(store.memtable.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readers::MergeReader;

    fn fresh(name: &str) -> (PathBuf, TsKv) {
        let dir = std::env::temp_dir().join(format!("tskv-engine-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig { points_per_chunk: 100, memtable_threshold: 250, ..Default::default() },
        )
        .unwrap();
        (dir, kv)
    }

    #[test]
    fn auto_flush_on_threshold() {
        let (dir, kv) = fresh("autoflush");
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, 0.0)).unwrap();
        }
        // Two auto-flushes (at 250 and 500); 100 points remain buffered.
        assert_eq!(kv.unflushed_points("s").unwrap(), 100);
        let snap = kv.snapshot("s").unwrap();
        // 250/100 → 3 chunks per flush (100+100+50), ×2 files, + mem chunk.
        assert_eq!(snap.chunks().len(), 7);
        assert_eq!(snap.raw_point_count(), 600);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chunk_versions_strictly_increase() {
        let (dir, kv) = fresh("versions");
        for t in 0..500i64 {
            kv.insert("s", Point::new(t, 0.0)).unwrap();
        }
        kv.flush_all().unwrap();
        let snap = kv.snapshot("s").unwrap();
        let versions: Vec<u64> = snap.chunks().iter().map(|c| c.version.0).collect();
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "{versions:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_validates_range() {
        let (dir, kv) = fresh("badrange");
        kv.create_series("s").unwrap();
        assert!(matches!(
            kv.delete("s", 10, 5),
            Err(TsKvError::InvalidDeleteRange { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_series_errors() {
        let (dir, kv) = fresh("unknown");
        assert!(matches!(kv.snapshot("nope"), Err(TsKvError::SeriesNotFound(_))));
        assert!(matches!(kv.delete("nope", 0, 1), Err(TsKvError::SeriesNotFound(_))));
        assert!(matches!(kv.flush("nope"), Err(TsKvError::SeriesNotFound(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_series_name_rejected() {
        let (dir, kv) = fresh("badname");
        assert!(kv.create_series("../evil").is_err());
        assert!(kv.create_series("").is_err());
        assert!(kv.create_series("a/b").is_err());
        assert!(kv.create_series("room1.sensor_2-x").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_reloads_files_and_mods() {
        let dir = std::env::temp_dir().join(format!("tskv-recover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config =
            EngineConfig { points_per_chunk: 50, memtable_threshold: 100, ..Default::default() };
        {
            let kv = TsKv::open(&dir, config.clone()).unwrap();
            for t in 0..300i64 {
                kv.insert("s", Point::new(t, t as f64)).unwrap();
            }
            kv.flush_all().unwrap();
            kv.delete("s", 100, 150).unwrap();
        }
        // Reopen: sealed data + deletes must be back; versions must
        // continue past the recovered maximum.
        let kv = TsKv::open(&dir, config).unwrap();
        assert_eq!(kv.series_names(), vec!["s".to_string()]);
        let snap = kv.snapshot("s").unwrap();
        assert_eq!(snap.raw_point_count(), 300);
        assert_eq!(snap.deletes().len(), 1);
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 300 - 51);

        // New writes get versions above everything recovered.
        let max_recovered =
            snap.chunks().iter().map(|c| c.version.0).chain(snap.deletes().iter().map(|d| d.version.0)).max().unwrap();
        kv.insert("s", Point::new(1000, 1.0)).unwrap();
        kv.flush_all().unwrap();
        let snap2 = kv.snapshot("s").unwrap();
        let new_max = snap2.chunks().iter().map(|c| c.version.0).max().unwrap();
        assert!(new_max > max_recovered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_batches_create_overlapping_chunks() {
        let (dir, kv) = fresh("overlap");
        let batch1: Vec<Point> = (0..200).map(|t| Point::new(t, 1.0)).collect();
        kv.insert_batch("s", &batch1).unwrap();
        kv.flush_all().unwrap();
        let batch2: Vec<Point> = (100..300).map(|t| Point::new(t, 2.0)).collect();
        kv.insert_batch("s", &batch2).unwrap();
        kv.flush_all().unwrap();
        let snap = kv.snapshot("s").unwrap();
        let overlapping = snap.chunks_overlapping(TimeRange::new(100, 199));
        assert!(overlapping.len() >= 2, "expected overlap, got {}", overlapping.len());
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 300);
        assert!(merged.iter().filter(|p| (100..200).contains(&p.t)).all(|p| p.v == 2.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_future_range_affects_nothing() {
        let (dir, kv) = fresh("futuredel");
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0)).unwrap();
        }
        kv.flush_all().unwrap();
        kv.delete("s", 10_000, 20_000).unwrap();
        // Points written after the delete, inside its range: unaffected.
        for t in 10_000..10_010i64 {
            kv.insert("s", Point::new(t, 2.0)).unwrap();
        }
        kv.flush_all().unwrap();
        let snap = kv.snapshot("s").unwrap();
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 110);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_recovers_unflushed_data() {
        let dir = std::env::temp_dir().join(format!("tskv-walrec-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config =
            EngineConfig { points_per_chunk: 50, memtable_threshold: 1_000, ..Default::default() };
        {
            let kv = TsKv::open(&dir, config.clone()).unwrap();
            for t in 0..300i64 {
                kv.insert("s", Point::new(t, t as f64)).unwrap();
            }
            // Delete part of the buffered range, then add more — all
            // without ever flushing.
            kv.delete("s", 100, 199).unwrap();
            for t in 300..400i64 {
                kv.insert("s", Point::new(t, 7.0)).unwrap();
            }
            // Simulated crash: drop without flushing.
        }
        let kv = TsKv::open(&dir, config).unwrap();
        assert_eq!(kv.unflushed_points("s").unwrap(), 300);
        let snap = kv.snapshot("s").unwrap();
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 300);
        assert!(merged.iter().all(|p| !(100..=199).contains(&p.t)));
        assert!(merged.iter().filter(|p| p.t >= 300).all(|p| p.v == 7.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_truncated_by_flush() {
        let dir = std::env::temp_dir().join(format!("tskv-waltrunc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config =
            EngineConfig { points_per_chunk: 50, memtable_threshold: 100, ..Default::default() };
        {
            let kv = TsKv::open(&dir, config.clone()).unwrap();
            // 250 points: two auto-flushes, 50 left in WAL + memtable.
            for t in 0..250i64 {
                kv.insert("s", Point::new(t, 1.0)).unwrap();
            }
        }
        let kv = TsKv::open(&dir, config).unwrap();
        assert_eq!(kv.unflushed_points("s").unwrap(), 50);
        let snap = kv.snapshot("s").unwrap();
        assert_eq!(snap.raw_point_count(), 250);
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 250);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_disabled_drops_unflushed() {
        let dir = std::env::temp_dir().join(format!("tskv-nowal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig { enable_wal: false, ..Default::default() };
        {
            let kv = TsKv::open(&dir, config.clone()).unwrap();
            kv.insert("s", Point::new(1, 1.0)).unwrap();
        }
        let kv = TsKv::open(&dir, config).unwrap();
        assert_eq!(kv.unflushed_points("s").unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_on_empty_series_is_recorded_but_harmless() {
        let (dir, kv) = fresh("empty-del");
        kv.create_series("s").unwrap();
        kv.delete("s", 0, 100).unwrap();
        let snap = kv.snapshot("s").unwrap();
        // No files → nothing to attach the tombstone to; the op is a
        // no-op beyond consuming a version.
        assert!(snap.deletes().is_empty());
        kv.insert("s", Point::new(50, 1.0)).unwrap();
        kv.flush_all().unwrap();
        let merged =
            MergeReader::new(&kv.snapshot("s").unwrap()).collect_merged().unwrap();
        assert_eq!(merged.len(), 1, "later write must not be hit by the earlier delete");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_identical_deletes_are_idempotent() {
        let (dir, kv) = fresh("dup-del");
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0)).unwrap();
        }
        kv.flush_all().unwrap();
        kv.delete("s", 10, 20).unwrap();
        kv.delete("s", 10, 20).unwrap();
        kv.delete("s", 10, 20).unwrap();
        let snap = kv.snapshot("s").unwrap();
        assert_eq!(snap.deletes().len(), 3); // three ops, distinct versions
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 89);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_point_series_lifecycle() {
        let (dir, kv) = fresh("single");
        kv.insert("s", Point::new(i64::MAX - 1, f64::MAX)).unwrap();
        kv.flush_all().unwrap();
        let snap = kv.snapshot("s").unwrap();
        assert_eq!(snap.raw_point_count(), 1);
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged, vec![Point::new(i64::MAX - 1, f64::MAX)]);
        kv.delete("s", i64::MAX - 1, i64::MAX).unwrap();
        let merged =
            MergeReader::new(&kv.snapshot("s").unwrap()).collect_merged().unwrap();
        assert!(merged.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_timestamps_supported() {
        let (dir, kv) = fresh("negative");
        for t in -500..-400i64 {
            kv.insert("s", Point::new(t, t as f64)).unwrap();
        }
        kv.flush_all().unwrap();
        kv.delete("s", -480, -460).unwrap();
        let snap = kv.snapshot("s").unwrap();
        let merged = MergeReader::new(&snap).collect_merged().unwrap();
        assert_eq!(merged.len(), 100 - 21);
        assert_eq!(merged[0].t, -500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multiple_series_are_independent() {
        let (dir, kv) = fresh("multi");
        kv.insert("a", Point::new(1, 1.0)).unwrap();
        kv.insert("b", Point::new(2, 2.0)).unwrap();
        kv.flush_all().unwrap();
        kv.delete("a", 0, 10).unwrap();
        let a = MergeReader::new(&kv.snapshot("a").unwrap()).collect_merged().unwrap();
        let b = MergeReader::new(&kv.snapshot("b").unwrap()).collect_merged().unwrap();
        assert!(a.is_empty());
        assert_eq!(b, vec![Point::new(2, 2.0)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
