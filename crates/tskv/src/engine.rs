//! The storage engine: series management, write path, flush, delete,
//! snapshot, and recovery from disk.
//!
//! ## Identity and layout
//!
//! Every series is interned once into a dense [`SeriesId`] by the
//! persistent [`SeriesCatalog`] at the store root; all internal state
//! — stripe maps, flush bookkeeping, compaction candidate lists,
//! change events — is keyed on that id, so the steady-state ingest and
//! query paths never hash or clone a series *name*. Names survive only
//! at the [`TsKv`] facade, where each request resolves its name to an
//! id exactly once.
//!
//! On disk the store is hash-sharded, not one-directory-per-series:
//! `storage_shards` fixed directories `shard-0000`, `shard-0001`, …
//! (the count is pinned by the `SHARDS` meta file at first open, so a
//! later config change cannot orphan data). A series' sealed files
//! live in shard `id % storage_shards` as `s<id>-<fileno>.tsfile`
//! (plus `.mods`), and each shard has one shared, per-record-tagged
//! [`ShardWal`] instead of a per-series log. A registered-but-cold
//! series therefore costs two map entries and zero files or
//! directories — a million registered series open in catalog-replay
//! time, and in-memory [`SeriesStore`] state is instantiated lazily on
//! first touch. Stores laid out the old way (one directory per series)
//! are migrated in place on open.
//!
//! ## Lock discipline
//!
//! In-memory series state is partitioned into `write_shards`
//! lock-striped stripes keyed by `id % write_shards`; each stripe's map
//! sits behind its own `RwLock`, so writers to series in different
//! stripes never contend. The xtask L2 lint bans holding any of those
//! locks across file I/O or chunk decode, so every heavy operation is
//! split into short locked phases around an unlocked I/O phase:
//!
//! * **Flush** — phase A (locked): mark the drain point in the shard
//!   WAL, drain the memtable, reserve chunk versions, and park the
//!   drained points in [`SeriesStore::flushing`] so concurrent
//!   snapshots still see them. Phase B (unlocked): encode and seal the
//!   TsFile. Phase C (locked): install the file, attach deletes that
//!   arrived mid-flush, mark the series' WAL records covered — or, on
//!   failure, return the points to the memtable (anything newer that
//!   landed meanwhile wins).
//! * **Compaction** — same shape; the input run (chosen under the
//!   lock, by the configured [`crate::compaction::policy`] for
//!   scheduler-driven runs) is captured as metadata, merged and
//!   written off-lock (clean pages copied raw, dirty pages re-encoded
//!   — see [`crate::compaction`]), and swapped in under the lock
//!   again. Output chunks carry the maximum input chunk version;
//!   deletes issued during the merge have versions above the capture
//!   ceiling and their mods entries are carried onto the new file at
//!   install time.
//! * Shard-WAL appends and the group-commit drain stay under the
//!   stripe lock on purpose: serializing durability appends against
//!   the buffered state they describe is what the lock is *for* (see
//!   DESIGN.md). The WAL's own short mutex nests strictly inside the
//!   stripe lock and stripe locks are never nested with each other, so
//!   the order is acyclic.
//! * **Background compaction** — when `compaction_auto` is on, a
//!   scheduler thread ([`crate::scheduler`]) scans the stripes with
//!   short read guards for series whose sealed-file count crossed
//!   `compaction_threshold`, then runs the same phased [`compact`]
//!   entirely off-lock.
//!
//! [`compact`]: TsKv::compact

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tsfile::types::{Point, TimeRange, Timestamp, Version};
use tsfile::{ModEntry, ModsFile, TsFileReader, TsFileWriter};

use crate::batch::WriteBatch;
use crate::cache::DecodedChunkCache;
use crate::catalog::{SeriesCatalog, SeriesId};
use crate::chunk::ChunkHandle;
use crate::compaction::plan::{self, ChunkView, PageView};
use crate::compaction::policy::{CompactionPolicy, FileView};
use crate::compaction::{execute, CompactionReport};
use crate::config::{EngineConfig, FsyncPolicy, MAX_STORAGE_SHARDS};
use crate::memtable::MemTable;
use crate::notify::{ChangeEvent, ChangeRx, ChangeSink};
use crate::scheduler::CompactionScheduler;
use crate::shard_wal::ShardWal;
use crate::snapshot::SeriesSnapshot;
use crate::stats::IoStats;
use crate::version::VersionAllocator;
use crate::wal::{Wal, WalRecord};
use crate::{Result, TsKvError};

/// Meta file at the store root pinning the storage-shard count. Its
/// presence also marks a store as using the sharded layout (absence
/// plus series directories means a legacy store awaiting migration).
const SHARDS_META: &str = "SHARDS";

/// One sealed TsFile plus its delete log.
#[derive(Debug)]
struct TsFileResource {
    reader: Arc<TsFileReader>,
    mods: ModsFile,
}

impl TsFileResource {
    /// Time interval spanned by the file's chunks, if any.
    fn time_range(&self) -> Option<TimeRange> {
        let metas = self.reader.chunk_metas();
        let start = metas.iter().map(|m| m.stats.first.t).min()?;
        let end = metas.iter().map(|m| m.stats.last.t).max()?;
        Some(TimeRange::new(start, end))
    }
}

/// Points drained from the memtable by a flush that is still in its
/// unlocked sealing phase. Kept visible to snapshots (as a mem chunk
/// carrying the last reserved version) until the sealed file replaces
/// it.
#[derive(Debug)]
struct FlushInFlight {
    points: Arc<Vec<Point>>,
    last_version: Version,
}

/// Per-series in-memory state: the memtable and the sealed-file list.
/// Directories and WAL handles live at the storage-shard level, so a
/// cold series is exactly this struct's `Default`-sized footprint —
/// and it is not even allocated until the series is first touched.
#[derive(Debug)]
struct SeriesStore {
    memtable: MemTable,
    files: Vec<TsFileResource>,
    next_file_id: u64,
    /// Set while a flush's unlocked sealing phase runs.
    flushing: Option<FlushInFlight>,
    /// Deletes issued while a flush was in flight; attached to the new
    /// file (if overlapping) when it is installed.
    pending_mods: Vec<ModEntry>,
    /// Set while a compaction's unlocked merge phase runs.
    compacting: bool,
}

impl SeriesStore {
    fn new() -> Self {
        Self::assemble(MemTable::new(), Vec::new(), 0)
    }

    fn assemble(memtable: MemTable, files: Vec<TsFileResource>, next_file_id: u64) -> Self {
        SeriesStore {
            memtable,
            files,
            next_file_id,
            flushing: None,
            pending_mods: Vec::new(),
            compacting: false,
        }
    }
}

/// Outcome of a flush's phase A (computed under the lock).
enum FlushPrep {
    /// Another flush owns the series' in-flight slot.
    Busy,
    /// Nothing buffered.
    Done,
    /// Seal these points (outside the lock) into the file at `path`,
    /// using the pre-reserved chunk `versions`.
    Go {
        points: Arc<Vec<Point>>,
        versions: Vec<Version>,
        path: PathBuf,
    },
}

/// One lock stripe of the series map, keyed on `id % write_shards`.
/// Writers to series in different stripes never contend.
#[derive(Debug)]
struct Shard {
    series: RwLock<HashMap<SeriesId, SeriesStore>>,
}

/// One on-disk storage shard: a directory holding the sealed files of
/// every series with `id % storage_shards == index`, plus their shared
/// write-ahead log. `wal` is `None` when the WAL is disabled by
/// config (the log is still *replayed* at open for parity with stores
/// written while it was enabled).
#[derive(Debug)]
struct StorageShard {
    dir: PathBuf,
    wal: Option<ShardWal>,
}

/// Shared engine state. [`TsKv`] and the background compaction
/// scheduler both hold this behind an `Arc`, so the scheduler thread
/// can run phased compactions without borrowing the facade.
#[derive(Debug)]
pub(crate) struct EngineInner {
    dir: PathBuf,
    config: EngineConfig,
    alloc: VersionAllocator,
    /// Persistent name↔id interning table (see [`crate::catalog`]).
    catalog: SeriesCatalog,
    shards: Vec<Shard>,
    storage: Vec<StorageShard>,
    io: Arc<IoStats>,
    /// Cross-query decoded-chunk LRU; `None` when disabled by config.
    cache: Option<Arc<DecodedChunkCache>>,
    /// Merge-candidate selector, built from
    /// [`EngineConfig::compaction_policy`] at open.
    policy: Box<dyn CompactionPolicy>,
    /// Change-notification fan-out (see [`crate::notify`]). Publishes
    /// happen after the owning stripe lock is released, so a slow
    /// listener can never extend lock hold times; cross-thread event
    /// order is therefore best-effort, and consumers reconcile via
    /// their dirty-span repair path.
    changes: ChangeSink,
}

/// How a compaction run's input files are chosen.
enum CompactMode {
    /// The whole sealed-file list (manual [`TsKv::compact`]).
    Full,
    /// Whatever contiguous run the configured policy selects
    /// (scheduler ticks and [`TsKv::compact_policy`]).
    Policy,
}

/// The LSM time series store.
///
/// See the crate docs for the data model. All methods are `&self`;
/// internal state is lock-striped behind per-stripe
/// [`parking_lot::RwLock`]s.
#[derive(Debug)]
pub struct TsKv {
    /// Declared before `inner` so drop order joins the scheduler
    /// thread while the engine state it references is still alive.
    scheduler: Option<CompactionScheduler>,
    inner: Arc<EngineInner>,
}

fn validate_series_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 200
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(TsKvError::InvalidSeriesName(name.to_string()))
    }
}

/// Directory name of storage shard `i`. Four digits cover
/// [`MAX_STORAGE_SHARDS`] and keep lexicographic order equal to
/// numeric order.
fn storage_dir_name(i: usize) -> String {
    format!("shard-{i:04}")
}

/// Whether `name` is a storage-shard directory name (reserved; never a
/// legacy series directory).
fn is_storage_dir_name(name: &str) -> bool {
    name.strip_prefix("shard-")
        .is_some_and(|d| d.len() == 4 && d.chars().all(|c| c.is_ascii_digit()))
}

/// Parse a sharded-layout data-file stem `s<id>-<fileno>` back into
/// its series id and file number.
fn parse_data_stem(stem: &str) -> Option<(SeriesId, u64)> {
    let rest = stem.strip_prefix('s')?;
    let (id, fileno) = rest.split_once('-')?;
    Some((SeriesId(id.parse().ok()?), fileno.parse().ok()?))
}

/// Write (and sync) the `SHARDS` meta file pinning the shard count.
fn write_shards_meta(dir: &Path, n: usize) -> Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(dir.join(SHARDS_META))?;
    f.write_all(format!("{n}\n").as_bytes())?;
    f.sync_data()?;
    Ok(())
}

/// The storage-shard count this store was created with. The first open
/// pins the configured value into the `SHARDS` meta file; every later
/// open uses the pinned value (the configured one only seeds new
/// stores — data placement must never move under a config edit).
fn pinned_storage_shards(dir: &Path, configured: usize) -> Result<usize> {
    match std::fs::read_to_string(dir.join(SHARDS_META)) {
        Ok(s) => {
            let n: usize = s.trim().parse().map_err(|_| {
                TsKvError::Corrupt(format!("SHARDS meta: unparseable shard count {s:?}"))
            })?;
            if n == 0 || n > MAX_STORAGE_SHARDS {
                return Err(TsKvError::Corrupt(format!(
                    "SHARDS meta: shard count {n} out of range (1..={MAX_STORAGE_SHARDS})"
                )));
            }
            Ok(n)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            write_shards_meta(dir, configured)?;
            Ok(configured)
        }
        Err(e) => Err(e.into()),
    }
}

/// Series directories of a *legacy* (pre-sharded, one-directory-per-
/// series) store: empty unless the `SHARDS` meta file is absent.
/// Storage-shard directory names are reserved and skipped, so a crash
/// mid-migration (shard dirs created, `SHARDS` not yet written) never
/// re-interprets them as series on the retry.
fn legacy_series_dirs(dir: &Path) -> Result<Vec<(String, PathBuf)>> {
    if dir.join(SHARDS_META).exists() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<(String, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if is_storage_dir_name(&name) || validate_series_name(&name).is_err() {
            continue; // reserved or foreign directory; ignore
        }
        dirs.push((name, entry.path()));
    }
    dirs.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(dirs)
}

/// One-time in-place migration of a legacy one-directory-per-series
/// store into the sharded layout: intern every name (sorted, so ids
/// are deterministic) and fsync the catalog, then move each sealed
/// file to its shard directory under the `s<id>-` prefix, transcribe
/// each series' surviving WAL state into the shard's tagged log, and
/// delete the series directory. The catalog sync happens **before**
/// the first rename so a power loss can never persist id-tagged files
/// whose bindings the catalog forgot; the `SHARDS` meta file is
/// written **last** — its presence marks the migration complete, so a
/// crash partway is retried on the next open (interning is idempotent
/// and re-derives the same ids from the durable log, finished renames
/// are skipped because the source directory scan no longer finds them,
/// and re-transcribed WAL records only produce duplicate points, which
/// the latest-wins merge discards).
fn migrate_legacy_layout(
    dir: &Path,
    series_dirs: &[(String, PathBuf)],
    config: &EngineConfig,
    io: &Arc<IoStats>,
) -> Result<()> {
    let n = config.storage_shards;
    let catalog = SeriesCatalog::open(dir, config.catalog_max_series, Arc::clone(io))?;
    // Intern every name and make the catalog durable *before* the
    // first rename. Renamed `s<id>-*` files are only meaningful
    // through the catalog's id binding; if a power loss dropped the
    // un-fsynced log tail after some renames, the retried migration
    // would re-intern only the surviving legacy dirs, hand the vacated
    // low ids to different names, and silently rebind the already-moved
    // files to the wrong series.
    let mut ids: Vec<SeriesId> = Vec::with_capacity(series_dirs.len());
    for (name, _) in series_dirs {
        ids.push(catalog.intern(name)?);
    }
    catalog.sync_if_dirty()?;
    let mut wals: Vec<ShardWal> = Vec::with_capacity(n);
    for i in 0..n {
        let sdir = dir.join(storage_dir_name(i));
        std::fs::create_dir_all(&sdir)?;
        let (wal, _) = ShardWal::open(&sdir, 0, config.wal_segment_bytes)?;
        wals.push(wal);
    }
    for ((name, sdir), &id) in series_dirs.iter().zip(&ids) {
        debug_assert_eq!(catalog.resolve(name), Some(id));
        let target = dir.join(storage_dir_name(id.index() % n));
        for entry in std::fs::read_dir(sdir)? {
            let entry = entry?;
            let path = entry.path();
            let ext = path.extension().and_then(|e| e.to_str());
            // Quarantined `*.corrupt` files move along for forensics.
            if !matches!(ext, Some("tsfile") | Some("mods") | Some("corrupt")) {
                continue;
            }
            let Some(fname) = path.file_name().and_then(|f| f.to_str()) else {
                continue;
            };
            std::fs::rename(&path, target.join(format!("s{}-{fname}", id.0)))?;
        }
        // Transcribe the surviving (unflushed) WAL state, tagged with
        // the interned id. `Wal::replay` already folds the sealed
        // segment first and skips covered records.
        let records = Wal::replay(sdir.join("series.wal"))?;
        if let Some(wal) = wals.get(id.index() % n) {
            for record in &records {
                match record {
                    WalRecord::Insert(points) => wal.append_inserts(id, points)?,
                    WalRecord::Delete { version, range } => {
                        wal.append_delete(id, *version, *range)?;
                    }
                }
            }
            if !records.is_empty() {
                wal.commit(false)?;
            }
        }
        std::fs::remove_dir_all(sdir)?;
    }
    for wal in &wals {
        wal.sync()?;
    }
    catalog.sync_if_dirty()?;
    // Last: marks the migration complete.
    write_shards_meta(dir, n)
}

/// Recovery input for one series: its sealed data files (sorted by
/// file number) and the WAL records a restart must re-apply.
type RecoveryWork = (SeriesId, Vec<(u64, PathBuf)>, Vec<WalRecord>);

/// Scanned-but-unmerged recovery state per series: data files paired
/// with replayed WAL records.
type RecoveryParts = (Vec<(u64, PathBuf)>, Vec<WalRecord>);

/// Recover one series from its scanned data files plus replayed WAL
/// records. Runs with no engine lock held — recovery parallelizes
/// these calls across series.
fn recover_series(
    paths: &[(u64, PathBuf)],
    records: &[WalRecord],
    alloc: &VersionAllocator,
) -> Result<SeriesStore> {
    let next_file_id = paths.last().map(|(no, _)| no + 1).unwrap_or(0);
    // File numbers are only creation order. A policy compaction
    // installs its output (highest number) in the *middle* of the
    // version-ordered file list, so after a restart number order and
    // version order can disagree; the version sort below restores the
    // engine invariant.
    let newest = paths.len().saturating_sub(1);
    let mut files: Vec<TsFileResource> = Vec::new();
    for (i, (_, path)) in paths.iter().enumerate() {
        let reader = match TsFileReader::open(path) {
            Ok(r) => Arc::new(r),
            Err(_) if i == newest => {
                let mut quarantined = path.clone().into_os_string();
                quarantined.push(".corrupt");
                std::fs::rename(path, &quarantined)?;
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        let mods = ModsFile::open(path.with_extension("mods"))?;
        for m in reader.chunk_metas() {
            alloc.observe(m.version);
        }
        for e in mods.entries() {
            alloc.observe(e.version);
        }
        files.push(TsFileResource { reader, mods });
    }
    // Version order, not number order (see above). The sort is stable,
    // so degenerate chunkless files keep their number order at the end.
    files.sort_by_key(|res| {
        res.reader
            .chunk_metas()
            .iter()
            .map(|m| m.version.0)
            .min()
            .unwrap_or(u64::MAX)
    });
    // Replay the WAL records into a fresh memtable, restoring
    // unflushed state in operation order. Versioned deletes are
    // re-attached to any overlapping sealed file whose mods log missed
    // them (crash between the WAL and mods appends).
    let mut memtable = MemTable::new();
    for record in records {
        match record {
            WalRecord::Insert(points) => {
                for p in points {
                    memtable.insert(*p);
                }
            }
            WalRecord::Delete { version, range } => {
                memtable.delete_range(*range);
                alloc.observe(*version);
                let entry = ModEntry::new(*version, range.start, range.end);
                for res in &mut files {
                    let overlaps = res.time_range().map(|r| r.overlaps(range)).unwrap_or(false);
                    let known = res.mods.entries().iter().any(|m| m.version == *version);
                    if overlaps && !known {
                        res.mods.append(entry)?;
                    }
                }
            }
        }
    }
    Ok(SeriesStore::assemble(memtable, files, next_file_id))
}

/// Recover every series with on-disk or WAL state, fanning the
/// per-series work across up to `workers` scoped threads (same
/// claim-by-atomic-cursor shape as `m4::pool`). Results come back in
/// `work` order; the first error (in that order) wins, matching
/// sequential recovery.
fn recover_all(
    work: &[RecoveryWork],
    workers: usize,
    alloc: &VersionAllocator,
) -> Result<Vec<(SeriesId, SeriesStore)>> {
    let workers = workers.min(work.len());
    if workers <= 1 {
        let mut out = Vec::with_capacity(work.len());
        for (id, paths, records) in work {
            out.push((*id, recover_series(paths, records, alloc)?));
        }
        return Ok(out);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SeriesStore>>>> =
        work.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((_, paths, records)) = work.get(i) else {
                    break;
                };
                let res = recover_series(paths, records, alloc);
                if let Some(slot) = slots.get(i) {
                    *slot.lock() = Some(res);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(work.len());
    for ((id, paths, records), slot) in work.iter().zip(slots) {
        match slot.into_inner() {
            Some(Ok(store)) => out.push((*id, store)),
            Some(Err(e)) => return Err(e),
            // A worker can only leave a slot empty by panicking, which
            // the workspace forbids; recover the series inline rather
            // than guessing.
            None => out.push((*id, recover_series(paths, records, alloc)?)),
        }
    }
    Ok(out)
}

impl EngineInner {
    /// Open (or create) the shared engine state rooted at `dir`. See
    /// [`TsKv::open`] for recovery semantics.
    fn open(dir: PathBuf, config: EngineConfig) -> Result<Self> {
        std::fs::create_dir_all(&dir)?;
        let config = config.normalized();
        config.validate()?;
        let io = Arc::new(IoStats::default());

        // Legacy layout? Migrate in place before anything else looks
        // at the directory tree.
        let legacy = legacy_series_dirs(&dir)?;
        if !legacy.is_empty() {
            migrate_legacy_layout(&dir, &legacy, &config, &io)?;
        }
        let n_storage = pinned_storage_shards(&dir, config.storage_shards)?;
        let catalog = SeriesCatalog::open(&dir, config.catalog_max_series, Arc::clone(&io))?;
        let alloc = VersionAllocator::default();

        // Scan each storage shard: collect data files per series and
        // replay the shard's WAL. Cold series (registered, no data, no
        // WAL records) never appear here and cost nothing.
        let mut storage: Vec<StorageShard> = Vec::with_capacity(n_storage);
        let mut files_by_id: HashMap<SeriesId, Vec<(u64, PathBuf)>> = HashMap::new();
        let mut replayed: HashMap<SeriesId, Vec<WalRecord>> = HashMap::new();
        for i in 0..n_storage {
            let sdir = dir.join(storage_dir_name(i));
            std::fs::create_dir_all(&sdir)?;
            for entry in std::fs::read_dir(&sdir)? {
                let entry = entry?;
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("tsfile") {
                    continue;
                }
                let parsed = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(parse_data_stem);
                let Some((id, fileno)) = parsed else {
                    continue; // foreign file; ignore
                };
                files_by_id.entry(id).or_default().push((fileno, path));
            }
            let (wal, records) =
                ShardWal::open(&sdir, config.wal_batch_bytes, config.wal_segment_bytes)?;
            for (id, recs) in records {
                replayed.entry(id).or_default().extend(recs);
            }
            storage.push(StorageShard {
                dir: sdir,
                // Replay always happens (data written while the WAL
                // was enabled must recover); the live handle is kept
                // only when the WAL is on.
                wal: config.enable_wal.then_some(wal),
            });
        }

        // Every id tagged on disk must be registered: an unknown id
        // means the catalog log was lost or truncated past data that
        // references it — refuse to guess which series owns what.
        let registered = catalog.len();
        for id in files_by_id.keys().chain(replayed.keys()) {
            if id.index() >= registered {
                return Err(TsKvError::Corrupt(format!(
                    "data tagged with unregistered series id {id} (catalog has {registered})"
                )));
            }
        }

        let mut merged: HashMap<SeriesId, RecoveryParts> = HashMap::new();
        for (id, files) in files_by_id {
            merged.entry(id).or_default().0 = files;
        }
        for (id, recs) in replayed {
            merged.entry(id).or_default().1 = recs;
        }
        let mut work: Vec<RecoveryWork> = merged
            .into_iter()
            .map(|(id, (mut files, recs))| {
                files.sort_by_key(|(no, _)| *no);
                (id, files, recs)
            })
            .collect();
        work.sort_by_key(|(id, ..)| *id);
        let recovered = recover_all(&work, config.write_shards, &alloc)?;

        let shards: Vec<Shard> = (0..config.write_shards)
            .map(|_| Shard {
                series: RwLock::new(HashMap::new()),
            })
            .collect();
        for (id, store) in recovered {
            io.record_store_instantiated();
            if let Some(shard) = shards.get(id.index() % shards.len()) {
                shard.series.write().insert(id, store);
            }
        }

        let cache = if config.enable_read_cache {
            Some(Arc::new(DecodedChunkCache::new(
                config.cache_capacity_bytes,
                Arc::clone(&io),
            )))
        } else {
            None
        };
        let policy = config.compaction_policy.build();
        Ok(EngineInner {
            dir,
            config,
            alloc,
            catalog,
            shards,
            storage,
            io,
            cache,
            policy,
            changes: ChangeSink::default(),
        })
    }

    /// The lock stripe owning `id`. `write_shards >= 1` is validated
    /// at open and the index is modulo the stripe count, so it is
    /// always in bounds.
    fn stripe(&self, id: SeriesId) -> &Shard {
        &self.shards[id.index() % self.shards.len()]
    }

    /// The storage shard owning `id`'s files and WAL records.
    fn storage(&self, id: SeriesId) -> &StorageShard {
        &self.storage[id.index() % self.storage.len()]
    }

    /// Path of data file `fileno` of series `id`.
    fn data_file_path(&self, id: SeriesId, fileno: u64) -> PathBuf {
        self.storage(id)
            .dir
            .join(format!("s{}-{fileno:08}.tsfile", id.0))
    }

    /// Error if `id` was never registered. Ids are dense, so the check
    /// is one bound comparison — no map probe.
    fn known(&self, id: SeriesId) -> Result<()> {
        if id.index() < self.catalog.len() {
            Ok(())
        } else {
            Err(TsKvError::SeriesNotFound(id.to_string()))
        }
    }

    /// A `SeriesNotFound` for `id`, named when the catalog knows it.
    fn not_found(&self, id: SeriesId) -> TsKvError {
        let label = self
            .catalog
            .name_of(id)
            .map(|n| n.to_string())
            .unwrap_or_else(|| id.to_string());
        TsKvError::SeriesNotFound(label)
    }

    /// Resolve a name to its interned id (boundary use only: one hash
    /// per external request, never per internal operation).
    fn resolve(&self, name: &str) -> Result<SeriesId> {
        self.catalog
            .resolve(name)
            .ok_or_else(|| TsKvError::SeriesNotFound(name.to_string()))
    }

    /// Register `name` (idempotent), returning its id. No directories
    /// or files are created beyond the catalog-log append — a
    /// registered-but-unwritten series costs nothing on disk.
    fn create_series(&self, name: &str) -> Result<SeriesId> {
        validate_series_name(name)?;
        self.catalog.intern(name)
    }

    /// The series' in-memory store, instantiated lazily on first
    /// touch. Requires the stripe's write guard (passed as `map`).
    fn store_entry<'a>(
        &self,
        map: &'a mut HashMap<SeriesId, SeriesStore>,
        id: SeriesId,
    ) -> &'a mut SeriesStore {
        map.entry(id).or_insert_with(|| {
            self.io.record_store_instantiated();
            SeriesStore::new()
        })
    }

    /// Append `points` to the shard WAL (tagged with `id`) and the
    /// memtable. Runs under the owning stripe's write lock; pure
    /// in-memory work plus buffered WAL frames (drained by
    /// [`EngineInner::commit_wal`]).
    fn apply_inserts(&self, id: SeriesId, store: &mut SeriesStore, points: &[Point]) -> Result<()> {
        if let Some(wal) = &self.storage(id).wal {
            wal.append_inserts(id, points)?;
        }
        for p in points {
            store.memtable.insert(*p);
        }
        self.io.record_points_written(points.len() as u64);
        Ok(())
    }

    /// Drain the shard WAL's group-commit buffer in one syscall,
    /// fsyncing when `sync` (or always under [`FsyncPolicy::Always`]).
    /// Called before the stripe lock is released, so every
    /// acknowledged write is in the OS first.
    fn commit_wal_with(&self, id: SeriesId, sync: bool) -> Result<()> {
        if let Some(wal) = &self.storage(id).wal {
            let sync = sync || matches!(self.config.fsync_policy, FsyncPolicy::Always);
            if sync {
                // WAL records are id-tagged; the catalog record binding
                // the id must reach disk before (or with) any durable
                // record that uses it, or a power loss could leave a
                // replayable record whose id the catalog forgot — open
                // then refuses the store outright.
                self.catalog.sync_if_dirty()?;
            }
            let bytes = wal.commit(sync)?;
            if bytes > 0 {
                self.io.record_wal_batch(bytes);
                if sync {
                    self.io.record_wal_sync();
                }
            }
        }
        Ok(())
    }

    fn commit_wal(&self, id: SeriesId) -> Result<()> {
        self.commit_wal_with(id, false)
    }

    /// Insert a batch of points (any time order; duplicates overwrite).
    fn insert_batch(&self, id: SeriesId, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        self.known(id)?;
        let need_flush = {
            let mut map = self.stripe(id).series.write();
            let store = self.store_entry(&mut map, id);
            self.apply_inserts(id, store, points)?;
            let threshold =
                store.memtable.len() >= self.config.memtable_threshold && store.flushing.is_none();
            self.commit_wal(id)?;
            threshold
        };
        if self.changes.active() {
            self.changes.publish(&ChangeEvent::Write {
                series: id,
                points: Arc::new(points.to_vec()),
            });
        }
        if need_flush {
            self.flush_series(id, false)?;
        }
        Ok(())
    }

    /// Apply a multi-series [`WriteBatch`]: names resolved once up
    /// front, series grouped by stripe so each stripe's write lock is
    /// taken once, WAL frames group-commit per series (one syscall
    /// each, fsync per [`FsyncPolicy`]), and memtables that crossed
    /// the flush threshold flush after every lock is released.
    /// Returns the number of points written.
    fn write_batch(&self, batch: &WriteBatch) -> Result<usize> {
        if batch.is_empty() {
            return Ok(0);
        }
        // Phase 1 (boundary): resolve every name to an id, registering
        // new ones. The only name hashing in the whole operation.
        let mut resolved: Vec<(SeriesId, &[Point])> = Vec::with_capacity(batch.series_count());
        for (name, points) in batch.entries() {
            resolved.push((self.create_series(name)?, points));
        }
        // Phase 2: group by stripe; one lock acquisition per stripe.
        let mut by_stripe: Vec<Vec<(SeriesId, &[Point])>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (id, points) in resolved {
            if let Some(group) = by_stripe.get_mut(id.index() % self.shards.len()) {
                group.push((id, points));
            }
        }
        let mut total = 0usize;
        let mut need_flush: Vec<SeriesId> = Vec::new();
        let notify = self.changes.active();
        let mut events: Vec<ChangeEvent> = Vec::new();
        for (idx, group) in by_stripe.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let Some(shard) = self.shards.get(idx) else {
                continue;
            };
            let mut map = shard.series.write();
            for (id, points) in group {
                let store = self.store_entry(&mut map, *id);
                self.apply_inserts(*id, store, points)?;
                let threshold = store.memtable.len() >= self.config.memtable_threshold
                    && store.flushing.is_none();
                self.commit_wal(*id)?;
                total += points.len();
                if notify {
                    events.push(ChangeEvent::Write {
                        series: *id,
                        points: Arc::new(points.to_vec()),
                    });
                }
                if threshold {
                    need_flush.push(*id);
                }
            }
        }
        // Phase 3 (unlocked): notify listeners, then flush the
        // memtables that crossed the threshold.
        for event in &events {
            self.changes.publish(event);
        }
        for id in need_flush {
            self.flush_series(id, false)?;
        }
        Ok(total)
    }

    /// Flush every registered series. Ids are dense, so this is a
    /// plain counted sweep — no name materialization; cold series
    /// return immediately from [`flush_series`]'s missing-store path.
    ///
    /// [`flush_series`]: EngineInner::flush_series
    fn flush_all(&self) -> Result<()> {
        for i in 0..self.catalog.len() {
            self.flush_series(SeriesId(i as u32), true)?;
        }
        Ok(())
    }

    /// The flush state machine. `wait` controls behavior when another
    /// flush holds the series' in-flight slot: explicit flushes wait
    /// and then flush whatever is buffered; the auto-flush on the
    /// insert path just returns (the running flush is making room, and
    /// the next insert re-checks the threshold).
    fn flush_series(&self, id: SeriesId, wait: bool) -> Result<()> {
        self.known(id)?;
        loop {
            // Phase A (locked): claim the in-flight slot, mark the WAL
            // drain point, drain the memtable, reserve chunk versions.
            let prep = {
                let mut map = self.stripe(id).series.write();
                let Some(store) = map.get_mut(&id) else {
                    // Registered but never touched: nothing to flush,
                    // and no reason to instantiate it.
                    return Ok(());
                };
                if store.flushing.is_some() {
                    FlushPrep::Busy
                } else if store.memtable.is_empty() {
                    FlushPrep::Done
                } else {
                    if let Some(wal) = &self.storage(id).wal {
                        // Under FsyncPolicy::{Always, OnFlush} the WAL
                        // is made durable before its records are
                        // declared covered (the sealed TsFile
                        // supersedes them soon after; until then the
                        // log is the only copy).
                        if !matches!(self.config.fsync_policy, FsyncPolicy::Never) {
                            // Catalog first: the log's id-tagged records
                            // must never outlive the binding of their id
                            // (see commit_wal_with).
                            self.catalog.sync_if_dirty()?;
                            wal.sync()?;
                            self.io.record_wal_sync();
                        }
                        wal.begin_flush(id)?;
                    }
                    let points = Arc::new(store.memtable.drain_sorted());
                    // Reserving every chunk version while still locked
                    // guarantees that any later delete orders after
                    // every chunk of this flush.
                    let n_chunks = points.len().div_ceil(self.config.points_per_chunk).max(1);
                    let versions: Vec<Version> = (0..n_chunks).map(|_| self.alloc.next()).collect();
                    let last_version = versions
                        .last()
                        .copied()
                        .unwrap_or_else(|| self.alloc.current());
                    let path = self.data_file_path(id, store.next_file_id);
                    store.next_file_id += 1;
                    store.flushing = Some(FlushInFlight {
                        points: Arc::clone(&points),
                        last_version,
                    });
                    FlushPrep::Go {
                        points,
                        versions,
                        path,
                    }
                }
            };
            match prep {
                FlushPrep::Done => return Ok(()),
                FlushPrep::Busy if wait => {
                    std::thread::yield_now();
                    continue;
                }
                FlushPrep::Busy => return Ok(()),
                FlushPrep::Go {
                    points,
                    versions,
                    path,
                } => {
                    // Phase B (unlocked): the heavy encode + write.
                    // The sealed file is tagged with this id — make
                    // the catalog record binding it durable first, so
                    // a power loss never leaves a data file whose id
                    // the catalog forgot.
                    let sealed = self
                        .catalog
                        .sync_if_dirty()
                        .and_then(|()| Self::seal_points(&self.config, &path, &points, &versions));
                    if sealed.is_err() {
                        std::fs::remove_file(&path).ok();
                    }
                    let out = self.install_flush(id, &points, sealed);
                    if out.is_ok() && self.changes.active() {
                        self.changes.publish(&ChangeEvent::Flush { series: id });
                    }
                    return out;
                }
            }
        }
    }

    /// Flush phase C (locked): install the sealed file and mark the
    /// series' WAL records covered — or, on a sealing failure, put the
    /// points back.
    fn install_flush(
        &self,
        id: SeriesId,
        points: &[Point],
        sealed: Result<TsFileResource>,
    ) -> Result<()> {
        let mut map = self.stripe(id).series.write();
        let store = map.get_mut(&id).ok_or_else(|| self.not_found(id))?;
        store.flushing = None;
        let pending = std::mem::take(&mut store.pending_mods);
        match sealed {
            Ok(mut res) => {
                // Deletes issued while sealing ran only reached the old
                // files; attach them to the new one too.
                for e in &pending {
                    let overlaps = res
                        .time_range()
                        .map(|r| r.overlaps(&e.range))
                        .unwrap_or(false);
                    if overlaps {
                        res.mods.append(*e)?;
                    }
                }
                store.files.push(res);
                if let Some(wal) = &self.storage(id).wal {
                    wal.end_flush(id)?;
                }
                Ok(())
            }
            Err(e) => {
                if let Some(wal) = &self.storage(id).wal {
                    wal.abort_flush(id);
                }
                // The points stay buffered (and, with WAL on, remain
                // covered by the log, whose begin marker was never
                // matched). Writes and deletes that landed mid-flush
                // are newer and must win — hence the absent-only
                // reinsert and the tombstone filter.
                for p in points {
                    if !pending.iter().any(|m| m.covers(p.t)) {
                        store.memtable.insert_if_absent(*p);
                    }
                }
                Err(e)
            }
        }
    }

    /// Encode `points` into a sealed TsFile at `path`, one chunk per
    /// `points_per_chunk` slice, consuming the pre-reserved `versions`
    /// in order. Runs without any engine lock held.
    fn seal_points(
        config: &EngineConfig,
        path: &Path,
        points: &[Point],
        versions: &[Version],
    ) -> Result<TsFileResource> {
        let mut w =
            TsFileWriter::create_with_encodings(path, config.ts_encoding, config.val_encoding)?;
        w.set_build_index(config.build_step_index);
        w.set_page_points(config.page_points);
        for (chunk, version) in points.chunks(config.points_per_chunk).zip(versions) {
            w.write_chunk(chunk, version.0)?;
        }
        w.finish()?;
        let reader = Arc::new(TsFileReader::open(path)?);
        let mods = ModsFile::open(path.with_extension("mods"))?;
        Ok(TsFileResource { reader, mods })
    }

    /// Delete all points of `id` in `[start, end]` (inclusive), as an
    /// append-only versioned tombstone. Memtable points are removed
    /// eagerly; sealed chunks are filtered at read time.
    fn delete(&self, id: SeriesId, start: Timestamp, end: Timestamp) -> Result<()> {
        if start > end {
            return Err(TsKvError::InvalidDeleteRange { start, end });
        }
        self.known(id)?;
        {
            let mut map = self.stripe(id).series.write();
            // A tombstone on a cold series still instantiates it: the
            // delete must be durable and visible to later writes.
            let store = self.store_entry(&mut map, id);
            let version = self.alloc.next();
            let range = TimeRange::new(start, end);
            // Tombstones are rare and dangerous to lose: commit (and,
            // unless the policy is Never, fsync) the delete record
            // immediately.
            let sync_deletes = !matches!(self.config.fsync_policy, FsyncPolicy::Never);
            if let Some(wal) = &self.storage(id).wal {
                wal.append_delete(id, version, range)?;
            }
            self.commit_wal_with(id, sync_deletes)?;
            store.memtable.delete_range(range);
            let entry = ModEntry::new(version, start, end);
            if store.flushing.is_some() {
                // The in-flight file is not in `files` yet; park the
                // entry so install_flush can attach it.
                store.pending_mods.push(entry);
            }
            for res in &mut store.files {
                let overlaps = res
                    .time_range()
                    .map(|r| r.overlaps(&range))
                    .unwrap_or(false);
                if overlaps {
                    res.mods.append(entry)?;
                }
            }
        }
        if self.changes.active() {
            self.changes.publish(&ChangeEvent::Delete {
                series: id,
                start,
                end,
            });
        }
        Ok(())
    }

    /// Capture a point-in-time read view of one series: all sealed
    /// chunks, any in-flight flush image, the memtable image (as a
    /// high-version in-memory chunk), and all deletes, each sorted by
    /// version. A registered-but-cold series yields an empty snapshot
    /// without instantiating anything.
    fn snapshot(&self, id: SeriesId) -> Result<SeriesSnapshot> {
        self.known(id)?;
        let map = self.stripe(id).series.read();
        let Some(store) = map.get(&id) else {
            return Ok(SeriesSnapshot::new(
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Arc::clone(&self.io),
                self.cache.clone(),
                self.config.read_threads,
            ));
        };

        let mut files = Vec::with_capacity(store.files.len());
        let mut chunks = Vec::new();
        let mut deletes: Vec<ModEntry> = Vec::new();
        for res in &store.files {
            let file_idx = files.len();
            for meta in res.reader.chunk_metas() {
                chunks.push(ChunkHandle::from_file(file_idx, meta.clone()));
            }
            for e in res.mods.entries() {
                // One delete op lands in several files' mods; versions
                // are globally unique, so dedup by version.
                if !deletes.iter().any(|d| d.version == e.version) {
                    deletes.push(*e);
                }
            }
            files.push(Arc::clone(&res.reader));
        }
        // Deletes issued mid-flush may not have reached any file yet.
        for e in &store.pending_mods {
            if !deletes.iter().any(|d| d.version == e.version) {
                deletes.push(*e);
            }
        }
        // Points being sealed by an in-flight flush: visible as a mem
        // chunk carrying the last version reserved for that flush, so
        // later deletes (higher version) apply to it and the live
        // memtable chunk (below, strictly higher again) overrides it.
        if let Some(fl) = &store.flushing {
            chunks.extend(ChunkHandle::from_mem(
                Arc::clone(&fl.points),
                fl.last_version,
            ));
        }
        if !store.memtable.is_empty() {
            let points = Arc::new(store.memtable.to_points());
            let version = Version(self.alloc.current().0 + 1);
            chunks.extend(ChunkHandle::from_mem(points, version));
        }
        chunks.sort_by_key(|c| c.version);
        deletes.sort_by_key(|d| d.version);
        Ok(SeriesSnapshot::new(
            files,
            chunks,
            deletes,
            Arc::clone(&self.io),
            self.cache.clone(),
            self.config.read_threads,
        ))
    }

    /// Fully compact one series: merge every sealed file (copying
    /// clean pages byte-for-byte, re-encoding dirty ones), write the
    /// result as a single fresh TsFile, and unlink the old files and
    /// their mods logs. The memtable and WAL are untouched. Returns an
    /// empty report if a compaction is already running for the series.
    /// See [`crate::compaction`].
    pub(crate) fn compact(&self, id: SeriesId) -> Result<CompactionReport> {
        self.compact_run(id, CompactMode::Full)
    }

    /// Compact whatever contiguous run of sealed files the configured
    /// policy selects (possibly nothing). Used by the background
    /// scheduler and [`TsKv::compact_policy`].
    pub(crate) fn compact_policy(&self, id: SeriesId) -> Result<CompactionReport> {
        self.compact_run(id, CompactMode::Policy)
    }

    /// The phased compaction state machine shared by the full and
    /// policy-driven entry points.
    fn compact_run(&self, id: SeriesId, mode: CompactMode) -> Result<CompactionReport> {
        self.known(id)?;
        // Phase A (locked): choose the input run and capture its
        // metadata (chunk metas, mods entries, and Arc'd readers only —
        // no chunk bodies). Selecting under the same guard that sets
        // `compacting` closes the select/capture race; policies are
        // pure metadata math, so no I/O happens here.
        let (files, chunks, deletes, run, out_version, capture_ceiling, path) = {
            let mut map = self.stripe(id).series.write();
            let Some(store) = map.get_mut(&id) else {
                // Cold series: nothing sealed, nothing to merge.
                return Ok(CompactionReport::empty());
            };
            // An in-flight flush holds versions for points not yet
            // visible in `files`; merging around it risks ordering
            // confusion for no gain. Back off and let the scheduler
            // retry once the flush installs.
            if store.files.is_empty() || store.compacting || store.flushing.is_some() {
                return Ok(CompactionReport::empty());
            }
            let run = match mode {
                CompactMode::Full => 0..store.files.len(),
                CompactMode::Policy => {
                    let views: Vec<FileView> = store
                        .files
                        .iter()
                        .map(|res| FileView {
                            bytes: res.reader.chunk_metas().iter().map(|m| m.byte_len).sum(),
                            chunks: res.reader.chunk_metas().len(),
                            time_range: res.time_range(),
                            has_mods: !res.mods.entries().is_empty(),
                        })
                        .collect();
                    match self.policy.select(&views, self.config.compaction_threshold) {
                        Some(r) if !r.is_empty() && r.end <= store.files.len() => r,
                        _ => return Ok(CompactionReport::empty()),
                    }
                }
            };
            store.compacting = true;
            let mut files = Vec::with_capacity(run.len());
            let mut chunks = Vec::new();
            let mut deletes: Vec<ModEntry> = Vec::new();
            for res in store.files.get(run.clone()).unwrap_or(&[]) {
                let file_idx = files.len();
                for meta in res.reader.chunk_metas() {
                    chunks.push(ChunkHandle::from_file(file_idx, meta.clone()));
                }
                for e in res.mods.entries() {
                    // A delete that touches input data is attached to
                    // the input file it overlaps, so the run's own mods
                    // are a complete capture (dedup by version — one
                    // delete lands in several files' logs).
                    if !deletes.iter().any(|d| d.version == e.version) {
                        deletes.push(*e);
                    }
                }
                files.push(Arc::clone(&res.reader));
            }
            // Every output chunk carries the maximum input version.
            // The run is contiguous in version order, so anything that
            // outranked an input (a later file, a later delete) still
            // outranks the output, and nothing older can leapfrog it.
            // No fresh versions are allocated: a reserved version would
            // order the merged (older) data after concurrent deletes
            // that the merge never saw.
            let out_version = chunks.iter().map(|c| c.version.0).max().unwrap_or(0);
            // Deletes issued after this point get versions above the
            // ceiling; phase C uses it to find the ones the merge
            // missed. (`out_version` can be older than a pre-capture
            // delete that postdates the last flush — the ceiling is the
            // only version that cleanly splits "seen" from "missed".)
            let capture_ceiling = self.alloc.current();
            let path = self.data_file_path(id, store.next_file_id);
            store.next_file_id += 1;
            (
                files,
                chunks,
                deletes,
                run,
                out_version,
                capture_ceiling,
                path,
            )
        };
        let chunks_merged = chunks.len();
        let deletes_applied = deletes.len();

        // Phase B (unlocked): classify every input page clean/dirty
        // from footer metadata, then merge-and-write — clean pages
        // copied raw (CRC-revalidated, never decoded), dirty pages
        // decoded, k-way merged and re-encoded. The dirty merge reads
        // through a detached snapshot (no shared cache, detached
        // counters): compaction I/O is reported via the explicit
        // `compaction_*` counters instead of polluting the read-path
        // ones, and the input generation is about to be unlinked — not
        // worth caching.
        let views: Vec<ChunkView> = chunks
            .iter()
            .map(|c| ChunkView {
                version: c.version.0,
                range: c.time_range(),
                pages: c.paged().map(|info| {
                    info.pages
                        .iter()
                        .map(|p| PageView {
                            range: p.time_range(),
                            count: p.stats.count,
                        })
                        .collect()
                }),
            })
            .collect();
        let cplan = plan::classify(&views, &deletes, self.config.compaction_clean_page_copy);
        let outcome = execute::merge_to_file(
            &self.config,
            &path,
            &files,
            &chunks,
            deletes,
            &cplan,
            out_version,
        )
        .and_then(|o| {
            let sealed = if o.wrote_file {
                let reader = Arc::new(TsFileReader::open(&path)?);
                let mods = ModsFile::open(path.with_extension("mods"))?;
                Some(TsFileResource { reader, mods })
            } else {
                None
            };
            Ok((o, sealed))
        });
        if outcome.is_err() {
            std::fs::remove_file(&path).ok();
        }

        // Phase C (locked): swap the new generation into the run's
        // slot, carry forward mods that arrived during the merge,
        // collect the doomed paths. Only appends happened while
        // `compacting` was set (flush installs push at the tail), so
        // the run's indices are still valid and the in-place splice
        // keeps the file list version-ordered.
        let (doomed, outcome) = {
            let mut map = self.stripe(id).series.write();
            let store = map.get_mut(&id).ok_or_else(|| self.not_found(id))?;
            store.compacting = false;
            let (outcome, sealed) = outcome?;
            // Deletes issued during the merge postdate the capture
            // ceiling and live only in the input files' mods.
            let mut carried: Vec<ModEntry> = Vec::new();
            for res in store.files.get(run.clone()).unwrap_or(&[]) {
                for e in res.mods.entries() {
                    if e.version > capture_ceiling
                        && !carried.iter().any(|d| d.version == e.version)
                    {
                        carried.push(*e);
                    }
                }
            }
            let tail = store.files.split_off(run.end);
            let removed = store.files.split_off(run.start);
            if let Some(mut res) = sealed {
                for e in carried {
                    let overlaps = res
                        .time_range()
                        .map(|r| r.overlaps(&e.range))
                        .unwrap_or(false);
                    if overlaps {
                        // Carried versions exceed the capture ceiling ≥
                        // every output chunk version, so they keep
                        // applying to the new file at read time.
                        res.mods.append(e)?;
                    }
                }
                store.files.push(res);
            }
            store.files.extend(tail);
            let doomed: Vec<(PathBuf, u64)> = removed
                .iter()
                .map(|r| (r.reader.path().to_path_buf(), r.reader.handle_id()))
                .collect();
            (doomed, outcome)
        };
        self.io.record_compaction_io(
            outcome.bytes_read,
            outcome.bytes_rewritten,
            outcome.pages_copied,
            outcome.pages_recoded,
        );

        // Phase D (unlocked): drop the retired files' cache entries and
        // unlink the old generation. The new file was written before
        // the unlink (a crash in between leaves a recoverable mix: the
        // new file holds only latest points, so re-reading both
        // generations still merges to the same series), and snapshots
        // still holding the old readers keep working — POSIX unlink
        // semantics. Such a straggler snapshot may re-populate a
        // retired file's cache entries after this invalidation; that is
        // benign (handle ids are never reused, so the entries can only
        // ever serve that same straggler) and the LRU ages them out.
        for (p, file_id) in &doomed {
            if let Some(cache) = &self.cache {
                cache.invalidate_file(*file_id);
            }
            std::fs::remove_file(p).ok();
            std::fs::remove_file(p.with_extension("mods")).ok();
        }
        Ok(CompactionReport {
            files_removed: doomed.len(),
            chunks_merged,
            points_written: outcome.points_written,
            deletes_applied,
            pages_copied: outcome.pages_copied,
            pages_recoded: outcome.pages_recoded,
            bytes_read: outcome.bytes_read,
            bytes_rewritten: outcome.bytes_rewritten,
        })
    }

    /// Engine-wide I/O counters (shared by all snapshots).
    pub(crate) fn io(&self) -> &Arc<IoStats> {
        &self.io
    }

    /// Total points currently buffered in memory and not yet durable in
    /// a sealed file (the memtable plus any in-flight flush image).
    fn unflushed_points(&self, id: SeriesId) -> Result<usize> {
        self.known(id)?;
        let map = self.stripe(id).series.read();
        let Some(store) = map.get(&id) else {
            return Ok(0);
        };
        let in_flight = store.flushing.as_ref().map(|f| f.points.len()).unwrap_or(0);
        Ok(store.memtable.len() + in_flight)
    }

    /// Number of sealed TsFiles currently backing `id`.
    fn sealed_file_count(&self, id: SeriesId) -> Result<usize> {
        self.known(id)?;
        let map = self.stripe(id).series.read();
        Ok(map.get(&id).map(|s| s.files.len()).unwrap_or(0))
    }

    /// Series whose sealed-file count reached `compaction_threshold`
    /// and that no compaction currently owns. Takes each stripe's read
    /// guard only for the map walk — never across I/O — so the
    /// background scheduler can poll this cheaply. Returns ids: a
    /// sweep over a million series allocates one `Vec<u32>`-sized
    /// list, never a name.
    pub(crate) fn compaction_candidates(&self) -> Vec<SeriesId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read();
            for (id, store) in map.iter() {
                if store.files.len() >= self.config.compaction_threshold && !store.compacting {
                    out.push(*id);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Scheduler poll interval.
    pub(crate) fn compaction_interval_ms(&self) -> u64 {
        self.config.compaction_interval_ms
    }
}

impl TsKv {
    /// Open (or create) a store rooted at `dir`, recovering whatever
    /// is found there: the series catalog is replayed first (interned
    /// names get the same dense ids back), then each storage shard's
    /// data files and shared WAL are scanned, and only series with
    /// actual state get an in-memory store — a million registered but
    /// cold series recover in catalog-replay time and occupy no file
    /// handles. Recovery fans out across up to `write_shards` threads,
    /// one series at a time per thread.
    ///
    /// A store laid out the legacy way (one directory per series) is
    /// migrated in place on first open: names interned in sorted
    /// order, sealed files moved into hash-assigned shard directories,
    /// per-series WALs transcribed into the shards' tagged logs.
    ///
    /// A crash mid-flush or mid-compaction can leave one torn TsFile,
    /// always at a series' highest file number; it is quarantined
    /// (renamed to `*.corrupt`) rather than failing recovery, since
    /// its points are still covered by the shard WAL (flush) or by the
    /// older generation (compaction). An unreadable file at any other
    /// number is genuine corruption and surfaces as an error.
    ///
    /// When `compaction_auto` is set, a background scheduler thread
    /// starts here and stops (joined) when the store drops.
    pub fn open<P: AsRef<Path>>(dir: P, config: EngineConfig) -> Result<Self> {
        let inner = Arc::new(EngineInner::open(dir.as_ref().to_path_buf(), config)?);
        let scheduler = if inner.config.compaction_auto {
            Some(CompactionScheduler::spawn(Arc::clone(&inner))?)
        } else {
            None
        };
        Ok(TsKv { scheduler, inner })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Names of all registered series (sorted).
    pub fn series_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .catalog
            .names_snapshot()
            .iter()
            .map(|n| n.to_string())
            .collect();
        names.sort();
        names
    }

    /// The interned id of `name`, if registered. One striped hash
    /// probe — resolve once, then drive every per-series call through
    /// the `*_by_id` variants.
    pub fn series_id(&self, name: &str) -> Option<SeriesId> {
        self.inner.catalog.resolve(name)
    }

    /// The name interned as `id`, if registered. Cheap (`Arc` clone).
    pub fn series_name(&self, id: SeriesId) -> Option<Arc<str>> {
        self.inner.catalog.name_of(id)
    }

    /// Number of registered series (ids are dense: `0..count`).
    pub fn series_count(&self) -> usize {
        self.inner.catalog.len()
    }

    /// Register a series (idempotent), returning its interned id.
    /// Costs one catalog-log append the first time and nothing on
    /// disk afterwards — no directories or files until data arrives.
    pub fn create_series(&self, name: &str) -> Result<SeriesId> {
        self.inner.create_series(name)
    }

    /// Insert one point; may trigger an automatic flush when the
    /// memtable reaches the configured threshold.
    pub fn insert(&self, name: &str, p: Point) -> Result<()> {
        let id = self.inner.create_series(name)?;
        self.inner.insert_batch(id, std::slice::from_ref(&p))
    }

    /// Insert a batch of points into one series (any time order;
    /// duplicates overwrite). Registers the series if needed.
    pub fn insert_batch(&self, name: &str, points: &[Point]) -> Result<()> {
        let id = self.inner.create_series(name)?;
        self.inner.insert_batch(id, points)
    }

    /// [`insert_batch`](TsKv::insert_batch) keyed by an interned id
    /// (from [`series_id`](TsKv::series_id) or
    /// [`create_series`](TsKv::create_series)): zero name hashing on
    /// the hot path.
    pub fn insert_batch_by_id(&self, id: SeriesId, points: &[Point]) -> Result<()> {
        self.inner.insert_batch(id, points)
    }

    /// Apply a multi-series [`WriteBatch`]: one stripe-lock
    /// acquisition per stripe touched, one WAL group-commit syscall
    /// per series, fsync per the configured [`FsyncPolicy`]. Returns
    /// the number of points written.
    pub fn write_batch(&self, batch: &WriteBatch) -> Result<usize> {
        self.inner.write_batch(batch)
    }

    /// Flush one series' memtable to a new sealed TsFile.
    pub fn flush(&self, name: &str) -> Result<()> {
        let id = self.inner.resolve(name)?;
        self.inner.flush_series(id, true)
    }

    /// [`flush`](TsKv::flush) keyed by an interned id.
    pub fn flush_by_id(&self, id: SeriesId) -> Result<()> {
        self.inner.flush_series(id, true)
    }

    /// Flush every series.
    pub fn flush_all(&self) -> Result<()> {
        self.inner.flush_all()
    }

    /// Delete all points of `name` in `[start, end]` (inclusive), as an
    /// append-only versioned tombstone. Memtable points are removed
    /// eagerly; sealed chunks are filtered at read time.
    pub fn delete(&self, name: &str, start: Timestamp, end: Timestamp) -> Result<()> {
        let id = self.inner.resolve(name)?;
        self.inner.delete(id, start, end)
    }

    /// [`delete`](TsKv::delete) keyed by an interned id.
    pub fn delete_by_id(&self, id: SeriesId, start: Timestamp, end: Timestamp) -> Result<()> {
        self.inner.delete(id, start, end)
    }

    /// Capture a point-in-time read view of one series. See
    /// [`SeriesSnapshot`].
    pub fn snapshot(&self, name: &str) -> Result<SeriesSnapshot> {
        let id = self.inner.resolve(name)?;
        self.inner.snapshot(id)
    }

    /// [`snapshot`](TsKv::snapshot) keyed by an interned id.
    pub fn snapshot_by_id(&self, id: SeriesId) -> Result<SeriesSnapshot> {
        self.inner.snapshot(id)
    }

    /// Fully compact one series: merge every sealed file (applying
    /// deletes and overwrites; clean pages are copied byte-for-byte,
    /// only dirty pages re-encode), write the result as a single fresh
    /// TsFile, and unlink the old files and their mods logs. The
    /// memtable and WAL are untouched. Returns an empty report if a
    /// compaction is already running for the series.
    /// See [`crate::compaction`].
    pub fn compact(&self, name: &str) -> Result<CompactionReport> {
        let id = self.inner.resolve(name)?;
        self.inner.compact(id)
    }

    /// [`compact`](TsKv::compact) keyed by an interned id.
    pub fn compact_by_id(&self, id: SeriesId) -> Result<CompactionReport> {
        self.inner.compact(id)
    }

    /// Compact one series according to the configured
    /// [`CompactionPolicy`]: the policy picks the contiguous run of
    /// sealed files to merge — or declines, yielding an empty report.
    /// Same phased execution and page-aware rewrite avoidance as
    /// [`compact`]. This is what the background scheduler runs on
    /// every candidate.
    ///
    /// [`CompactionPolicy`]: crate::compaction::policy::CompactionPolicy
    /// [`compact`]: TsKv::compact
    pub fn compact_policy(&self, name: &str) -> Result<CompactionReport> {
        let id = self.inner.resolve(name)?;
        self.inner.compact_policy(id)
    }

    /// Subscribe to change notifications: every write, delete, and
    /// flush publishes a [`ChangeEvent`] (keyed by [`SeriesId`]) to
    /// each listener over a bounded queue of `depth` events.
    /// Publishing never blocks the write path — when a listener's
    /// queue is full the event is dropped and the listener's *missed*
    /// flag raised, telling it to resynchronize from a fresh
    /// [`TsKv::snapshot`]. See [`crate::notify`].
    pub fn subscribe_changes(&self, depth: usize) -> ChangeRx {
        self.inner.changes.register(depth)
    }

    /// Engine-wide I/O counters (shared by all snapshots).
    pub fn io(&self) -> &Arc<IoStats> {
        self.inner.io()
    }

    /// The cross-query decoded-chunk cache, if enabled by config.
    pub fn cache(&self) -> Option<&Arc<DecodedChunkCache>> {
        self.inner.cache.as_ref()
    }

    /// Total points currently buffered in memory and not yet durable in
    /// a sealed file (the memtable plus any in-flight flush image).
    pub fn unflushed_points(&self, name: &str) -> Result<usize> {
        let id = self.inner.resolve(name)?;
        self.inner.unflushed_points(id)
    }

    /// Number of sealed TsFiles currently backing `name`.
    pub fn sealed_file_count(&self, name: &str) -> Result<usize> {
        let id = self.inner.resolve(name)?;
        self.inner.sealed_file_count(id)
    }

    /// Whether the background compaction scheduler is running.
    pub fn compaction_scheduler_running(&self) -> bool {
        self.scheduler.is_some()
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::panic)]

    use super::*;
    use crate::readers::MergeReader;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn fresh(name: &str) -> Result<(PathBuf, TsKv)> {
        let dir = std::env::temp_dir().join(format!("tskv-engine-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 100,
                memtable_threshold: 250,
                ..Default::default()
            },
        )?;
        Ok((dir, kv))
    }

    #[test]
    fn change_notifications_cover_write_delete_flush() -> TestResult {
        let (dir, kv) = fresh("notify")?;
        let rx = kv.subscribe_changes(64);
        kv.insert_batch("s", &[Point::new(1, 1.0), Point::new(2, 2.0)])?;
        kv.delete("s", 1, 1)?;
        kv.flush("s")?;
        let mut batch = WriteBatch::new();
        batch.insert("s", Point::new(3, 3.0));
        batch.insert("t", Point::new(4, 4.0));
        kv.write_batch(&batch)?;
        let sid = kv.series_id("s").ok_or("s not registered")?;
        match rx.try_recv() {
            Some(ChangeEvent::Write { series, points }) => {
                assert_eq!(series, sid);
                assert_eq!(points.len(), 2);
            }
            other => panic!("expected write event, got {other:?}"),
        }
        match rx.try_recv() {
            Some(ChangeEvent::Delete { series, start, end }) => {
                assert_eq!(series, sid);
                assert_eq!((start, end), (1, 1));
            }
            other => panic!("expected delete event, got {other:?}"),
        }
        match rx.try_recv() {
            Some(ChangeEvent::Flush { series }) => assert_eq!(series, sid),
            other => panic!("expected flush event, got {other:?}"),
        }
        let mut batch_series: Vec<String> = Vec::new();
        while let Some(e) = rx.try_recv() {
            match e {
                ChangeEvent::Write { series, points } => {
                    assert_eq!(points.len(), 1);
                    batch_series.push(kv.series_name(series).ok_or("unknown id")?.to_string());
                }
                other => panic!("expected write events, got {other:?}"),
            }
        }
        batch_series.sort();
        assert_eq!(batch_series, vec!["s".to_string(), "t".to_string()]);
        assert!(!rx.missed());
        // Dropping the receiver detaches it; later writes are no-ops.
        drop(rx);
        kv.insert("s", Point::new(9, 9.0))?;
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn auto_flush_on_threshold() -> TestResult {
        let (dir, kv) = fresh("autoflush")?;
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, 0.0))?;
        }
        // Two auto-flushes (at 250 and 500); 100 points remain buffered.
        assert_eq!(kv.unflushed_points("s")?, 100);
        let snap = kv.snapshot("s")?;
        // 250/100 → 3 chunks per flush (100+100+50), ×2 files, + mem chunk.
        assert_eq!(snap.chunks().len(), 7);
        assert_eq!(snap.raw_point_count(), 600);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn chunk_versions_strictly_increase() -> TestResult {
        let (dir, kv) = fresh("versions")?;
        for t in 0..500i64 {
            kv.insert("s", Point::new(t, 0.0))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let versions: Vec<u64> = snap.chunks().iter().map(|c| c.version.0).collect();
        assert!(versions.windows(2).all(|w| w[0] < w[1]), "{versions:?}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_validates_range() -> TestResult {
        let (dir, kv) = fresh("badrange")?;
        kv.create_series("s")?;
        assert!(matches!(
            kv.delete("s", 10, 5),
            Err(TsKvError::InvalidDeleteRange { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn unknown_series_errors() -> TestResult {
        let (dir, kv) = fresh("unknown")?;
        assert!(matches!(
            kv.snapshot("nope"),
            Err(TsKvError::SeriesNotFound(_))
        ));
        assert!(matches!(
            kv.delete("nope", 0, 1),
            Err(TsKvError::SeriesNotFound(_))
        ));
        assert!(matches!(
            kv.flush("nope"),
            Err(TsKvError::SeriesNotFound(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn unregistered_id_errors() -> TestResult {
        let (dir, kv) = fresh("badid")?;
        kv.create_series("s")?;
        let bogus = SeriesId(99);
        assert!(matches!(
            kv.snapshot_by_id(bogus),
            Err(TsKvError::SeriesNotFound(_))
        ));
        assert!(matches!(
            kv.delete_by_id(bogus, 0, 1),
            Err(TsKvError::SeriesNotFound(_))
        ));
        assert!(matches!(
            kv.flush_by_id(bogus),
            Err(TsKvError::SeriesNotFound(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn invalid_series_name_rejected() -> TestResult {
        let (dir, kv) = fresh("badname")?;
        assert!(kv.create_series("../evil").is_err());
        assert!(kv.create_series("").is_err());
        assert!(kv.create_series("a/b").is_err());
        assert!(kv.create_series("room1.sensor_2-x").is_ok());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn cold_series_cost_no_stores_or_files() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-cold-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig::default();
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for i in 0..1000 {
                kv.create_series(&format!("cold-{i:04}"))?;
            }
            assert_eq!(kv.series_count(), 1000);
            // Registration touches only the catalog: no in-memory
            // stores, no directories beyond the fixed shard set.
            assert_eq!(kv.io().snapshot().stores_instantiated, 0);
            let snap = kv.snapshot("cold-0042")?;
            assert_eq!(snap.raw_point_count(), 0);
            kv.flush_all()?;
            assert_eq!(kv.io().snapshot().stores_instantiated, 0);
        }
        let mut dirs = 0usize;
        for entry in std::fs::read_dir(&dir)? {
            if entry?.file_type()?.is_dir() {
                dirs += 1;
            }
        }
        assert_eq!(dirs, config.storage_shards, "only shard dirs on disk");
        // Reopen: all names come back from the catalog alone, still
        // without instantiating anything.
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.series_count(), 1000);
        assert_eq!(kv.io().snapshot().stores_instantiated, 0);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn ids_stable_across_reopen() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-ids-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig::default();
        let (a, b) = {
            let kv = TsKv::open(&dir, config.clone())?;
            let a = kv.create_series("a")?;
            let b = kv.create_series("b")?;
            assert_ne!(a, b);
            assert_eq!(kv.create_series("a")?, a, "intern is idempotent");
            kv.insert_batch_by_id(b, &[Point::new(1, 1.0)])?;
            (a, b)
        };
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.series_id("a"), Some(a));
        assert_eq!(kv.series_id("b"), Some(b));
        assert_eq!(kv.series_name(b).as_deref(), Some("b"));
        let merged = MergeReader::new(&kv.snapshot_by_id(b)?).collect_merged()?;
        assert_eq!(merged, vec![Point::new(1, 1.0)]);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn recovery_reloads_files_and_mods() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-recover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 100,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for t in 0..300i64 {
                kv.insert("s", Point::new(t, t as f64))?;
            }
            kv.flush_all()?;
            kv.delete("s", 100, 150)?;
        }
        // Reopen: sealed data + deletes must be back; versions must
        // continue past the recovered maximum.
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.series_names(), vec!["s".to_string()]);
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 300);
        assert_eq!(snap.deletes().len(), 1);
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 300 - 51);

        // New writes get versions above everything recovered.
        let max_recovered = snap
            .chunks()
            .iter()
            .map(|c| c.version.0)
            .chain(snap.deletes().iter().map(|d| d.version.0))
            .max()
            .ok_or("recovered snapshot is empty")?;
        kv.insert("s", Point::new(1000, 1.0))?;
        kv.flush_all()?;
        let snap2 = kv.snapshot("s")?;
        let new_max = snap2
            .chunks()
            .iter()
            .map(|c| c.version.0)
            .max()
            .ok_or("no chunks after flush")?;
        assert!(new_max > max_recovered);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn out_of_order_batches_create_overlapping_chunks() -> TestResult {
        let (dir, kv) = fresh("overlap")?;
        let batch1: Vec<Point> = (0..200).map(|t| Point::new(t, 1.0)).collect();
        kv.insert_batch("s", &batch1)?;
        kv.flush_all()?;
        let batch2: Vec<Point> = (100..300).map(|t| Point::new(t, 2.0)).collect();
        kv.insert_batch("s", &batch2)?;
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let overlapping = snap.chunks_overlapping(TimeRange::new(100, 199));
        assert!(
            overlapping.len() >= 2,
            "expected overlap, got {}",
            overlapping.len()
        );
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 300);
        assert!(merged
            .iter()
            .filter(|p| (100..200).contains(&p.t))
            .all(|p| p.v == 2.0));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_future_range_affects_nothing() -> TestResult {
        let (dir, kv) = fresh("futuredel")?;
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 10_000, 20_000)?;
        // Points written after the delete, inside its range: unaffected.
        for t in 10_000..10_010i64 {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 110);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn wal_recovers_unflushed_data() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-walrec-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for t in 0..300i64 {
                kv.insert("s", Point::new(t, t as f64))?;
            }
            // Delete part of the buffered range, then add more — all
            // without ever flushing.
            kv.delete("s", 100, 199)?;
            for t in 300..400i64 {
                kv.insert("s", Point::new(t, 7.0))?;
            }
            // Simulated crash: drop without flushing.
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.unflushed_points("s")?, 300);
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 300);
        assert!(merged.iter().all(|p| !(100..=199).contains(&p.t)));
        assert!(merged.iter().filter(|p| p.t >= 300).all(|p| p.v == 7.0));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn wal_truncated_by_flush() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-waltrunc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 100,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            // 250 points: two auto-flushes, 50 left in WAL + memtable.
            for t in 0..250i64 {
                kv.insert("s", Point::new(t, 1.0))?;
            }
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.unflushed_points("s")?, 50);
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 250);
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 250);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn flush_resets_shard_wal() -> TestResult {
        let (dir, kv) = fresh("wal-clean")?;
        for t in 0..10i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // Every record in s's shard WAL is now covered by the sealed
        // file: the log must collapse to a single empty active segment.
        let sid = kv.series_id("s").ok_or("s not registered")?;
        let sdir = dir.join(storage_dir_name(sid.index() % kv.config().storage_shards));
        let mut wal_files: Vec<PathBuf> = Vec::new();
        for f in std::fs::read_dir(&sdir)? {
            let p = f?.path();
            let is_wal = p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"));
            if is_wal {
                wal_files.push(p);
            }
        }
        assert_eq!(wal_files.len(), 1, "sealed segments must be reclaimed");
        let len = wal_files
            .first()
            .map(std::fs::metadata)
            .transpose()?
            .map(|m| m.len());
        assert_eq!(len, Some(0), "active segment must be truncated empty");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn recovery_reattaches_wal_delete_to_missing_mods() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-reattach-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            let batch: Vec<Point> = (0..100).map(|t| Point::new(t, 1.0)).collect();
            kv.insert_batch("s", &batch)?;
            kv.flush_all()?;
            kv.delete("s", 10, 20)?;
        }
        // Simulate a crash between the WAL append and the mods append:
        // drop every mods file; the delete now lives only in the WAL.
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(entry.path())? {
                let p = f?.path();
                if p.extension().and_then(|e| e.to_str()) == Some("mods") {
                    std::fs::remove_file(&p)?;
                }
            }
        }
        let kv = TsKv::open(&dir, config)?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.deletes().len(), 1, "WAL delete must be re-attached");
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 89);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn torn_newest_tsfile_quarantined() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-quarantine-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            let batch: Vec<Point> = (0..100).map(|t| Point::new(t, 1.0)).collect();
            kv.insert_batch("s", &batch)?;
            kv.flush_all()?;
            let batch: Vec<Point> = (100..200).map(|t| Point::new(t, 2.0)).collect();
            kv.insert_batch("s", &batch)?;
            kv.flush_all()?;
        }
        // "s" is the first series interned → id 0 → storage shard 0.
        let sdir = dir.join(storage_dir_name(0));
        // Tear the newest file (as a crash mid-flush would).
        let torn = sdir.join("s0-00000001.tsfile");
        std::fs::write(&torn, b"TSF1 torn mid-write")?;
        let kv = TsKv::open(&dir, config)?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 100, "older generation must survive");
        assert!(sdir.join("s0-00000001.tsfile.corrupt").exists());
        // The quarantined file number is not reused.
        kv.insert("s", Point::new(500, 1.0))?;
        kv.flush_all()?;
        assert!(sdir.join("s0-00000002.tsfile").exists());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn wal_disabled_drops_unflushed() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-nowal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            enable_wal: false,
            ..Default::default()
        };
        {
            let kv = TsKv::open(&dir, config.clone())?;
            kv.insert("s", Point::new(1, 1.0))?;
        }
        // The catalog still remembers the name; only the buffered
        // points are gone.
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.unflushed_points("s")?, 0);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_on_empty_series_is_recorded_but_harmless() -> TestResult {
        let (dir, kv) = fresh("empty-del")?;
        kv.create_series("s")?;
        kv.delete("s", 0, 100)?;
        let snap = kv.snapshot("s")?;
        // No files → nothing to attach the tombstone to; the op is a
        // no-op beyond consuming a version.
        assert!(snap.deletes().is_empty());
        kv.insert("s", Point::new(50, 1.0))?;
        kv.flush_all()?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(
            merged.len(),
            1,
            "later write must not be hit by the earlier delete"
        );
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn repeated_identical_deletes_are_idempotent() -> TestResult {
        let (dir, kv) = fresh("dup-del")?;
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 10, 20)?;
        kv.delete("s", 10, 20)?;
        kv.delete("s", 10, 20)?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.deletes().len(), 3); // three ops, distinct versions
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 89);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn single_point_series_lifecycle() -> TestResult {
        let (dir, kv) = fresh("single")?;
        kv.insert("s", Point::new(i64::MAX - 1, f64::MAX))?;
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        assert_eq!(snap.raw_point_count(), 1);
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged, vec![Point::new(i64::MAX - 1, f64::MAX)]);
        kv.delete("s", i64::MAX - 1, i64::MAX)?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert!(merged.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn negative_timestamps_supported() -> TestResult {
        let (dir, kv) = fresh("negative")?;
        for t in -500..-400i64 {
            kv.insert("s", Point::new(t, t as f64))?;
        }
        kv.flush_all()?;
        kv.delete("s", -480, -460)?;
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 100 - 21);
        assert_eq!(merged.first().map(|p| p.t), Some(-500));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn write_batch_spans_series_and_shards() -> TestResult {
        let (dir, kv) = fresh("wbatch")?;
        let mut batch = WriteBatch::new();
        for s in 0..16 {
            let pts: Vec<Point> = (0..50).map(|t| Point::new(t, s as f64)).collect();
            batch.insert_many(&format!("series-{s}"), &pts);
        }
        assert_eq!(kv.write_batch(&batch)?, 16 * 50);
        assert_eq!(kv.series_names().len(), 16);
        for s in 0..16 {
            let merged =
                MergeReader::new(&kv.snapshot(&format!("series-{s}"))?).collect_merged()?;
            assert_eq!(merged.len(), 50);
            assert!(merged.iter().all(|p| p.v == s as f64));
        }
        let io = kv.io().snapshot();
        assert_eq!(io.points_written, 16 * 50);
        // One WAL group-commit batch per touched series (not per point).
        assert_eq!(io.wal_batches, 16);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn write_batch_auto_flushes_past_threshold() -> TestResult {
        let (dir, kv) = fresh("wbatch-flush")?;
        let mut batch = WriteBatch::new();
        let pts: Vec<Point> = (0..300).map(|t| Point::new(t, 1.0)).collect();
        batch.insert_many("s", &pts); // memtable_threshold is 250
        kv.write_batch(&batch)?;
        assert_eq!(
            kv.unflushed_points("s")?,
            0,
            "batch must flush past the threshold"
        );
        assert_eq!(kv.sealed_file_count("s")?, 1);
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 300);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn fsync_always_records_syncs() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-fsync-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                fsync_policy: FsyncPolicy::Always,
                ..Default::default()
            },
        )?;
        kv.insert("s", Point::new(1, 1.0))?;
        kv.insert("s", Point::new(2, 2.0))?;
        let io = kv.io().snapshot();
        assert_eq!(io.wal_batches, 2);
        assert_eq!(io.wal_syncs, 2);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn background_scheduler_bounds_sealed_files() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-sched-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 50,
                memtable_threshold: 1_000,
                compaction_auto: true,
                compaction_threshold: 3,
                compaction_interval_ms: 2,
                ..Default::default()
            },
        )?;
        assert!(kv.compaction_scheduler_running());
        // Create sealed files faster than the threshold allows.
        for round in 0..8i64 {
            let pts: Vec<Point> = (0..40)
                .map(|t| Point::new(round * 40 + t, round as f64))
                .collect();
            kv.insert_batch("s", &pts)?;
            kv.flush("s")?;
        }
        // The scheduler must merge the pile back under the threshold.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let n = kv.sealed_file_count("s")?;
            if n <= 3 {
                break;
            }
            if std::time::Instant::now() > deadline {
                return Err(format!("sealed files stuck at {n}").into());
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // The file-count poll can observe the spliced list before the
        // scheduler thread returns from compact_policy and bumps its
        // counters — wait for those too.
        loop {
            let io = kv.io().snapshot();
            if io.compactions_scheduled > 0 && io.compactions_completed > 0 {
                break;
            }
            if std::time::Instant::now() > deadline {
                return Err(format!("compaction counters stuck at {io:?}").into());
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Nothing lost or duplicated by background merging.
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 8 * 40);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn parallel_recovery_restores_every_series_in_write_order() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-precover-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 20,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        let n_series = 12usize;
        {
            let kv = TsKv::open(&dir, config.clone())?;
            for s in 0..n_series {
                let name = format!("series-{s}");
                // Sealed data…
                let pts: Vec<Point> = (0..60).map(|t| Point::new(t, 1.0)).collect();
                kv.insert_batch(&name, &pts)?;
                kv.flush(&name)?;
                // …then unflushed WAL-only state: an overwrite (later
                // write must win after replay), a delete, new points.
                kv.insert(&name, Point::new(10, 99.0))?;
                kv.delete(&name, 20, 29)?;
                kv.insert_batch(&name, &[Point::new(100, 2.0), Point::new(101, 2.0)])?;
            }
            // Simulated crash: drop without flushing.
        }
        let kv = TsKv::open(&dir, config)?;
        assert_eq!(kv.series_names().len(), n_series);
        for s in 0..n_series {
            let name = format!("series-{s}");
            let merged = MergeReader::new(&kv.snapshot(&name)?).collect_merged()?;
            // 60 sealed + 2 new − 10 deleted (20..=29).
            assert_eq!(merged.len(), 52, "{name}");
            // WAL replay preserved write order: the overwrite of t=10
            // (appended after the original) must win.
            let at10 = merged.iter().find(|p| p.t == 10).map(|p| p.v);
            assert_eq!(at10, Some(99.0), "{name}");
            assert!(merged.iter().all(|p| !(20..=29).contains(&p.t)), "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn single_shard_config_still_works() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-oneshard-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                write_shards: 1,
                storage_shards: 1,
                ..Default::default()
            },
        )?;
        let mut batch = WriteBatch::new();
        for s in 0..4 {
            batch.insert_many(&format!("s{s}"), &[Point::new(1, s as f64)]);
        }
        assert_eq!(kv.write_batch(&batch)?, 4);
        assert_eq!(kv.series_names().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn shard_count_is_pinned_at_creation() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-pinned-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let kv = TsKv::open(
                &dir,
                EngineConfig {
                    storage_shards: 4,
                    ..Default::default()
                },
            )?;
            kv.insert("s", Point::new(1, 1.0))?;
            kv.flush_all()?;
        }
        // Reopening with a different configured count must keep the
        // pinned layout (otherwise existing data would be orphaned).
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                storage_shards: 32,
                ..Default::default()
            },
        )?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged, vec![Point::new(1, 1.0)]);
        let mut dirs = 0usize;
        for entry in std::fs::read_dir(&dir)? {
            if entry?.file_type()?.is_dir() {
                dirs += 1;
            }
        }
        assert_eq!(dirs, 4, "pinned shard count must win over config");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn legacy_layout_migrates_on_open() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-legacymig-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let config = EngineConfig {
            points_per_chunk: 50,
            memtable_threshold: 1_000,
            ..Default::default()
        };
        // Seed a legacy one-directory-per-series store by hand: sealed
        // file + mods for "temp", WAL-only state for "hum".
        std::fs::create_dir_all(&dir)?;
        {
            let sdir = dir.join("temp");
            std::fs::create_dir_all(&sdir)?;
            let pts: Vec<Point> = (0..100).map(|t| Point::new(t, 1.0)).collect();
            let versions = [Version(1), Version(2)];
            let mut res =
                EngineInner::seal_points(&config, &sdir.join("00000000.tsfile"), &pts, &versions)?;
            res.mods.append(ModEntry::new(Version(3), 10, 20))?;
            let mut wal = Wal::open_grouped(sdir.join("series.wal"), 0)?;
            wal.append_inserts(&[Point::new(200, 2.0)])?;
            wal.commit(false)?;
            wal.sync()?;
        }
        {
            let sdir = dir.join("hum");
            std::fs::create_dir_all(&sdir)?;
            let mut wal = Wal::open_grouped(sdir.join("series.wal"), 0)?;
            wal.append_inserts(&[Point::new(5, 5.0), Point::new(6, 6.0)])?;
            wal.commit(false)?;
            wal.sync()?;
        }
        let kv = TsKv::open(&dir, config.clone())?;
        assert_eq!(
            kv.series_names(),
            vec!["hum".to_string(), "temp".to_string()]
        );
        assert!(!dir.join("temp").exists(), "legacy dir must be consumed");
        assert!(!dir.join("hum").exists());
        assert!(dir.join(SHARDS_META).exists());
        let temp = MergeReader::new(&kv.snapshot("temp")?).collect_merged()?;
        // 100 sealed − 11 deleted + 1 from the WAL.
        assert_eq!(temp.len(), 100 - 11 + 1);
        assert!(temp.iter().all(|p| !(10..=20).contains(&p.t)));
        let hum = MergeReader::new(&kv.snapshot("hum")?).collect_merged()?;
        assert_eq!(hum, vec![Point::new(5, 5.0), Point::new(6, 6.0)]);
        drop(kv);
        // Migration is one-time: a plain reopen sees the same data.
        let kv = TsKv::open(&dir, config)?;
        let temp = MergeReader::new(&kv.snapshot("temp")?).collect_merged()?;
        assert_eq!(temp.len(), 90);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn multiple_series_are_independent() -> TestResult {
        let (dir, kv) = fresh("multi")?;
        kv.insert("a", Point::new(1, 1.0))?;
        kv.insert("b", Point::new(2, 2.0))?;
        kv.flush_all()?;
        kv.delete("a", 0, 10)?;
        let a = MergeReader::new(&kv.snapshot("a")?).collect_merged()?;
        let b = MergeReader::new(&kv.snapshot("b")?).collect_merged()?;
        assert!(a.is_empty());
        assert_eq!(b, vec![Point::new(2, 2.0)]);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
