//! Full compaction: rewrite a series' sealed files into one
//! non-overlapping, tombstone-free file.
//!
//! The paper measures with compaction *disabled* (Table 4:
//! `NO_COMPACTION`) because overlapping chunks and pending deletes are
//! exactly the hard cases M4-LSM handles; a production store still
//! needs compaction to bound read amplification. This module provides
//! the classic full-merge strategy:
//!
//! 1. Merge every sealed chunk through the same latest-wins semantics
//!    readers use (`M(ℂ, 𝔻)` of Definition 2.7), applying all deletes.
//! 2. Write the merged series as a fresh TsFile whose chunks get new
//!    (higher) version numbers.
//! 3. Atomically swap the file set; old files are unlinked (snapshots
//!    holding their open readers keep working — POSIX semantics).
//!
//! After compaction the store holds only latest points: chunk overlap
//! is zero and no delete entries remain, which is the "easy mode" the
//! `repro --exp compaction` experiment contrasts with the paper's
//! setup.

/// Outcome of one compaction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Old sealed files unlinked (the input generation).
    pub files_removed: usize,
    /// Chunks read during the merge.
    pub chunks_merged: usize,
    /// Live points written to the new file (0 ⇒ everything was deleted
    /// and no output file exists).
    pub points_written: usize,
    /// Delete entries applied and dropped.
    pub deletes_applied: usize,
}

impl CompactionReport {
    pub(crate) fn empty() -> Self {
        CompactionReport { files_removed: 0, chunks_merged: 0, points_written: 0, deletes_applied: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::readers::MergeReader;
    use crate::TsKv;
    use tsfile::types::Point;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn fresh(name: &str) -> crate::Result<(std::path::PathBuf, TsKv)> {
        let dir = std::env::temp_dir().join(format!("tskv-compact-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig { points_per_chunk: 50, memtable_threshold: 200, ..Default::default() },
        )?;
        Ok((dir, kv))
    }

    #[test]
    fn compaction_preserves_merged_series() -> TestResult {
        let (dir, kv) = fresh("preserve")?;
        for t in 0..1_000i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        for t in 300..700i64 {
            kv.insert("s", Point::new(t, 2.0))?; // overwrites
        }
        kv.flush_all()?;
        kv.delete("s", 100, 149)?;
        kv.delete("s", 650, 800)?;

        let before = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        let report = kv.compact("s")?;
        let snap = kv.snapshot("s")?;
        let after = MergeReader::new(&snap).collect_merged()?;

        assert_eq!(before, after, "compaction must not change the logical series");
        assert!(report.files_removed >= 2);
        assert_eq!(report.points_written, before.len());
        assert_eq!(report.deletes_applied, 2);
        assert!(snap.deletes().is_empty(), "tombstones are gone");
        // No chunk may overlap another.
        let chunks = snap.chunks();
        for (i, a) in chunks.iter().enumerate() {
            for b in chunks.iter().skip(i + 1) {
                assert!(!a.time_range().overlaps(&b.time_range()));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compaction_keeps_memtable_untouched() -> TestResult {
        let (dir, kv) = fresh("memtable")?;
        for t in 0..400i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // Buffered-only points.
        for t in 400..450i64 {
            kv.insert("s", Point::new(t, 5.0))?;
        }
        kv.compact("s")?;
        assert_eq!(kv.unflushed_points("s")?, 50);
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 450);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compacting_fully_deleted_series_removes_files() -> TestResult {
        let (dir, kv) = fresh("wipe")?;
        for t in 0..300i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", -10, 10_000)?;
        let report = kv.compact("s")?;
        assert_eq!(report.points_written, 0);
        let snap = kv.snapshot("s")?;
        assert!(snap.chunks().is_empty());
        assert!(MergeReader::new(&snap).collect_merged()?.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn compacting_empty_series_is_noop() -> TestResult {
        let (dir, kv) = fresh("noop")?;
        kv.create_series("s")?;
        let report = kv.compact("s")?;
        assert_eq!(report, CompactionReport::empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn old_snapshot_survives_compaction() -> TestResult {
        let (dir, kv) = fresh("snapshot")?;
        for t in 0..500i64 {
            kv.insert("s", Point::new(t, 3.0))?;
        }
        kv.flush_all()?;
        let old_snap = kv.snapshot("s")?;
        kv.delete("s", 0, 100)?;
        kv.compact("s")?;
        // The pre-compaction snapshot still reads its (unlinked) files.
        let merged = MergeReader::new(&old_snap).collect_merged()?;
        assert_eq!(merged.len(), 500);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn recovery_after_compaction() -> TestResult {
        let (dir, kv) = fresh("recover")?;
        for t in 0..600i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 0, 99)?;
        kv.compact("s")?;
        drop(kv);
        let kv = TsKv::open(
            &dir,
            EngineConfig { points_per_chunk: 50, memtable_threshold: 200, ..Default::default() },
        )?;
        let merged = MergeReader::new(&kv.snapshot("s")?).collect_merged()?;
        assert_eq!(merged.len(), 500);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
