//! Per-series write-ahead log.
//!
//! The paper's experimental setup flushes everything before querying,
//! so IoTDB's WAL never features in its measurements — but a storage
//! engine that silently drops buffered points on restart is not usable.
//! This WAL makes the memtable durable: every insert batch and delete
//! is appended (CRC-framed, torn tails dropped) before it is applied,
//! and the log is truncated once a flush seals its contents into a
//! TsFile.
//!
//! Durability level: records are written to the OS on every append and
//! fsynced when [`Wal::sync`] is called (the engine syncs on flush and
//! on delete). A mid-append crash loses at most the torn tail record,
//! never previously acknowledged state.
//!
//! Record layout: `u8 kind` then fields, then `u32 crc` of everything
//! before it.
//!
//! * kind 0 — insert run: `varint n`, then `n × (varint_i t, f64 v)`.
//! * kind 1 — delete: `varint_i t_ds`, `varint_i t_de`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use tsfile::checksum::crc32;
use tsfile::types::{Point, TimeRange, Timestamp};
use tsfile::varint;

use crate::Result;

/// A replayed WAL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Insert(Vec<Point>),
    Delete(TimeRange),
}

/// Append-only, truncatable per-series log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal { path, file })
    }

    /// Append one insert run.
    pub fn append_inserts(&mut self, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let mut body = Vec::with_capacity(10 + points.len() * 12);
        body.push(0u8);
        varint::write_u64(&mut body, points.len() as u64);
        for p in points {
            varint::write_i64(&mut body, p.t);
            body.extend_from_slice(&p.v.to_le_bytes());
        }
        self.append_framed(body)
    }

    /// Append one delete.
    pub fn append_delete(&mut self, range: TimeRange) -> Result<()> {
        let mut body = Vec::with_capacity(24);
        body.push(1u8);
        varint::write_i64(&mut body, range.start);
        varint::write_i64(&mut body, range.end);
        self.append_framed(body)
    }

    fn append_framed(&mut self, body: Vec<u8>) -> Result<()> {
        let crc = crc32(&body);
        self.file.write_all(&body)?;
        self.file.write_all(&crc.to_le_bytes())?;
        Ok(())
    }

    /// Force written records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Discard all records (called after a successful flush has made
    /// their effects durable in a sealed TsFile).
    pub fn reset(&mut self) -> Result<()> {
        // Recreate rather than truncate-in-place: O_APPEND offsets reset
        // with the new file handle on every platform.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        file.sync_data()?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// Replay the log at `path` (no-op if absent). A torn or corrupt
    /// tail record ends the replay silently; everything before it is
    /// returned in append order.
    pub fn replay<P: AsRef<Path>>(path: P) -> Result<Vec<WalRecord>> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < buf.len() {
            match decode_record(&buf, pos) {
                Some((record, next)) => {
                    out.push(record);
                    pos = next;
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Current size of the log file in bytes.
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Decode one framed record at `pos`; `None` on torn/corrupt data.
fn decode_record(buf: &[u8], start: usize) -> Option<(WalRecord, usize)> {
    let mut pos = start;
    let kind = *buf.get(pos)?;
    pos += 1;
    let record = match kind {
        0 => {
            let n = varint::read_u64(buf, &mut pos).ok()? as usize;
            // A record cannot hold more points than bytes remaining.
            if n > buf.len().saturating_sub(pos) {
                return None;
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let t: Timestamp = varint::read_i64(buf, &mut pos).ok()?;
                let v_bytes = buf.get(pos..pos + 8)?;
                pos += 8;
                points.push(Point::new(t, f64::from_le_bytes(v_bytes.try_into().ok()?)));
            }
            WalRecord::Insert(points)
        }
        1 => {
            let s = varint::read_i64(buf, &mut pos).ok()?;
            let e = varint::read_i64(buf, &mut pos).ok()?;
            WalRecord::Delete(TimeRange::new(s, e))
        }
        _ => return None,
    };
    let crc_bytes = buf.get(pos..pos + 4)?;
    let expected = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(&buf[start..pos]) != expected {
        return None;
    }
    Some((record, pos + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tskv-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        p
    }

    fn pts(raw: &[(i64, f64)]) -> Vec<Point> {
        raw.iter().map(|&(t, v)| Point::new(t, v)).collect()
    }

    #[test]
    fn append_replay_roundtrip() {
        let p = tmp("roundtrip.wal");
        let mut w = Wal::open(&p).unwrap();
        w.append_inserts(&pts(&[(1, 1.0), (2, 2.0)])).unwrap();
        w.append_delete(TimeRange::new(0, 10)).unwrap();
        w.append_inserts(&pts(&[(5, 5.0)])).unwrap();
        w.sync().unwrap();
        drop(w);
        let records = Wal::replay(&p).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Insert(pts(&[(1, 1.0), (2, 2.0)])),
                WalRecord::Delete(TimeRange::new(0, 10)),
                WalRecord::Insert(pts(&[(5, 5.0)])),
            ]
        );
    }

    #[test]
    fn missing_file_replays_empty() {
        assert!(Wal::replay(tmp("missing.wal")).unwrap().is_empty());
    }

    #[test]
    fn reset_clears_log() {
        let p = tmp("reset.wal");
        let mut w = Wal::open(&p).unwrap();
        w.append_inserts(&pts(&[(1, 1.0)])).unwrap();
        assert!(w.len_bytes().unwrap() > 0);
        w.reset().unwrap();
        assert_eq!(w.len_bytes().unwrap(), 0);
        assert!(Wal::replay(&p).unwrap().is_empty());
        // Appending after a reset works (fresh handle).
        w.append_delete(TimeRange::new(1, 2)).unwrap();
        assert_eq!(Wal::replay(&p).unwrap().len(), 1);
    }

    #[test]
    fn torn_tail_dropped() {
        let p = tmp("torn.wal");
        let mut w = Wal::open(&p).unwrap();
        w.append_inserts(&pts(&[(1, 1.0)])).unwrap();
        w.append_inserts(&pts(&[(2, 2.0), (3, 3.0)])).unwrap();
        drop(w);
        let data = std::fs::read(&p).unwrap();
        std::fs::write(&p, &data[..data.len() - 5]).unwrap();
        let records = Wal::replay(&p).unwrap();
        assert_eq!(records, vec![WalRecord::Insert(pts(&[(1, 1.0)]))]);
    }

    #[test]
    fn corrupt_record_ends_replay() {
        let p = tmp("corrupt.wal");
        let mut w = Wal::open(&p).unwrap();
        w.append_inserts(&pts(&[(1, 1.0)])).unwrap();
        w.append_inserts(&pts(&[(2, 2.0)])).unwrap();
        drop(w);
        let mut data = std::fs::read(&p).unwrap();
        let n = data.len();
        data[n - 6] ^= 0xFF; // flip a bit in the second record's body
        std::fs::write(&p, &data).unwrap();
        assert_eq!(Wal::replay(&p).unwrap().len(), 1);
    }

    #[test]
    fn absurd_count_rejected() {
        let p = tmp("absurd.wal");
        // Hand-craft a record claiming u64::MAX points.
        let mut body = vec![0u8];
        varint::write_u64(&mut body, u64::MAX);
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&p, &body).unwrap();
        assert!(Wal::replay(&p).unwrap().is_empty());
    }

    #[test]
    fn empty_insert_is_noop() {
        let p = tmp("empty.wal");
        let mut w = Wal::open(&p).unwrap();
        w.append_inserts(&[]).unwrap();
        assert_eq!(w.len_bytes().unwrap(), 0);
    }
}
