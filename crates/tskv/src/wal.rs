//! Per-series write-ahead log.
//!
//! The paper's experimental setup flushes everything before querying,
//! so IoTDB's WAL never features in its measurements — but a storage
//! engine that silently drops buffered points on restart is not usable.
//! This WAL makes the memtable durable: every insert batch and delete
//! is appended (CRC-framed, torn tails dropped) before it is applied.
//!
//! ## Segments and flush rotation
//!
//! The log is two files: the **active** segment (`series.wal`) covering
//! the current memtable, and an optional **sealed** segment
//! (`series.wal.old`) covering points currently being flushed. When a
//! flush begins, [`Wal::rotate_for_flush`] diverts the log: the active
//! segment becomes the sealed one and a fresh active segment opens.
//! Once the flush's TsFile is durable, [`Wal::discard_sealed`] drops
//! the sealed segment. This keeps the heavy TsFile write outside the
//! engine's series lock (xtask lint L2) without a window where a crash
//! could lose acknowledged writes:
//!
//! * crash mid-flush → the sealed segment still covers the in-flight
//!   points and [`Wal::replay`] reads it before the active segment;
//! * flush failure → the sealed segment survives, and the *next*
//!   rotation folds the active segment onto it so replay order (old
//!   records first) is preserved;
//! * crash after the TsFile is durable but before the discard → the
//!   sealed segment replays points that also exist in the new file;
//!   the merge path dedups same-timestamp points, so reads stay
//!   correct at the cost of a transiently larger memtable.
//!
//! ## Group commit
//!
//! [`Wal::open`] is write-through: every append reaches the OS in one
//! `write_all` syscall, which is what the unit tests and simple callers
//! expect. [`Wal::open_grouped`] buffers framed records in memory up to
//! `batch_bytes` and drains them in a single `write_all` — either when
//! the buffer crosses the threshold or when the engine calls
//! [`Wal::commit`] at the end of a write call, before releasing the
//! shard lock. Because the engine never returns (never *acknowledges*
//! a write) without committing, the durability contract is unchanged:
//! a crash can only lose writes that were never acknowledged.
//! [`Wal::commit`] returns the bytes written through since the last
//! commit so the engine can feed its group-commit counters, and
//! optionally fsyncs per [`crate::config::FsyncPolicy`].
//!
//! Durability level: records are written to the OS on every append
//! (write-through mode) or on every commit (grouped mode) and fsynced
//! when [`Wal::sync`] is called or `commit(true)` runs (the engine
//! syncs on flush and on delete, plus per the configured fsync
//! policy). A mid-append crash loses at most the torn tail record,
//! never previously acknowledged state.
//!
//! Record layout: `u8 kind` then fields, then `u32 crc` of everything
//! before it.
//!
//! * kind 0 — insert run: `varint n`, then `n × (varint_i t, f64 v)`.
//! * kind 1 — delete: `varint κ`, `varint_i t_ds`, `varint_i t_de`.
//!   The version κ lets recovery re-attach the tombstone to sealed
//!   files whose mods log missed it (crash between WAL append and the
//!   mods append).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use tsfile::checksum::crc32;
use tsfile::types::{Point, TimeRange, Timestamp, Version};
use tsfile::varint;

use crate::Result;

/// A replayed WAL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    Insert(Vec<Point>),
    Delete { version: Version, range: TimeRange },
}

/// Append-only, rotatable per-series log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Group-commit threshold: frames buffer in `buf` until it holds at
    /// least this many bytes. `0` = write-through (flush every frame).
    batch_bytes: usize,
    /// Framed records not yet written to the OS.
    buf: Vec<u8>,
    /// Bytes written through since the last [`Wal::commit`]; lets the
    /// commit path report batch sizes even when a large append drained
    /// the buffer early.
    written_since_commit: u64,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path` in write-through
    /// mode: every append reaches the OS immediately.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_grouped(path, 0)
    }

    /// Open (creating if absent) the WAL at `path` in group-commit
    /// mode: appends buffer in memory up to `batch_bytes` and are
    /// drained in one syscall by [`Wal::commit`] (or when the buffer
    /// crosses the threshold). `batch_bytes == 0` is write-through.
    pub fn open_grouped<P: AsRef<Path>>(path: P, batch_bytes: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            file,
            batch_bytes,
            buf: Vec::new(),
            written_since_commit: 0,
        })
    }

    /// Append one insert run.
    pub fn append_inserts(&mut self, points: &[Point]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let mut body = Vec::with_capacity(10 + points.len() * 12);
        body.push(0u8);
        varint::write_u64(&mut body, points.len() as u64);
        for p in points {
            varint::write_i64(&mut body, p.t);
            body.extend_from_slice(&p.v.to_le_bytes());
        }
        self.append_framed(body)
    }

    /// Append one delete with its global version `κ`.
    pub fn append_delete(&mut self, version: Version, range: TimeRange) -> Result<()> {
        let mut body = Vec::with_capacity(32);
        body.push(1u8);
        varint::write_u64(&mut body, version.0);
        varint::write_i64(&mut body, range.start);
        varint::write_i64(&mut body, range.end);
        self.append_framed(body)
    }

    fn append_framed(&mut self, body: Vec<u8>) -> Result<()> {
        let crc = crc32(&body);
        self.buf.extend_from_slice(&body);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        if self.buf.len() >= self.batch_bytes {
            self.flush_buf()?;
        }
        Ok(())
    }

    /// Drain buffered frames to the OS in one `write_all`.
    fn flush_buf(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buf)?;
        self.written_since_commit += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// End a group commit: drain any buffered frames, optionally fsync,
    /// and return the bytes written through since the previous commit
    /// (0 means the batch was empty). The engine calls this before
    /// releasing the shard lock, so acknowledged writes are always in
    /// the OS before the caller sees `Ok`.
    pub fn commit(&mut self, sync: bool) -> Result<u64> {
        self.flush_buf()?;
        let bytes = self.written_since_commit;
        self.written_since_commit = 0;
        if sync && bytes > 0 {
            self.file.sync_data()?;
        }
        Ok(bytes)
    }

    /// Force written records to stable storage (draining the buffer
    /// first in grouped mode).
    pub fn sync(&mut self) -> Result<()> {
        self.flush_buf()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Begin a flush: divert the log so records covering the points
    /// being flushed are kept apart from records for new writes. The
    /// active segment's contents move to the sealed segment and a fresh
    /// active segment opens. If a sealed segment already exists (a
    /// previous flush failed after rotating), the active segment is
    /// folded onto it instead, preserving append order on replay.
    ///
    /// Must be called under the same lock that serializes appends.
    pub fn rotate_for_flush(&mut self) -> Result<()> {
        // Buffered frames belong to the memtable being flushed; they
        // must land in the segment that rotates out.
        self.flush_buf()?;
        let sealed = Self::sealed_path(&self.path);
        if sealed.exists() {
            let mut dst = OpenOptions::new().append(true).open(&sealed)?;
            let mut src = File::open(&self.path)?;
            std::io::copy(&mut src, &mut dst)?;
            dst.sync_data()?;
            self.reset()
        } else {
            std::fs::rename(&self.path, &sealed)?;
            self.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            Ok(())
        }
    }

    /// End a flush: the sealed TsFile now covers the sealed segment's
    /// records, so the segment can go. No-op if none exists.
    pub fn discard_sealed(&mut self) -> Result<()> {
        match std::fs::remove_file(Self::sealed_path(&self.path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Discard all active-segment records (their effects are durable
    /// elsewhere, or the caller is tearing the series down).
    pub fn reset(&mut self) -> Result<()> {
        // Buffered frames cover the same records being discarded.
        self.buf.clear();
        // Recreate rather than truncate-in-place: O_APPEND offsets reset
        // with the new file handle on every platform.
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        file.sync_data()?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// Replay the log at `path` (no-op if absent): first the sealed
    /// segment left by an interrupted flush, then the active segment,
    /// so records come back in append order. A torn or corrupt tail
    /// record ends that segment's replay silently; everything before it
    /// is returned.
    pub fn replay<P: AsRef<Path>>(path: P) -> Result<Vec<WalRecord>> {
        let path = path.as_ref();
        let mut out = Vec::new();
        for segment in [Self::sealed_path(path), path.to_path_buf()] {
            if !segment.exists() {
                continue;
            }
            let mut buf = Vec::new();
            File::open(&segment)?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            while pos < buf.len() {
                match decode_record(&buf, pos) {
                    Some((record, next)) => {
                        out.push(record);
                        pos = next;
                    }
                    None => break,
                }
            }
        }
        Ok(out)
    }

    /// Logical size of the active segment in bytes, counting buffered
    /// (not-yet-written) frames so threshold checks see every append.
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len() + self.buf.len() as u64)
    }

    /// Path of the sealed segment belonging to the WAL at `path`.
    pub fn sealed_path(path: &Path) -> PathBuf {
        let mut p = path.as_os_str().to_os_string();
        p.push(".old");
        PathBuf::from(p)
    }
}

/// Decode one framed record at `pos`; `None` on torn/corrupt data.
fn decode_record(buf: &[u8], start: usize) -> Option<(WalRecord, usize)> {
    let mut pos = start;
    let kind = *buf.get(pos)?;
    pos += 1;
    let record = match kind {
        0 => {
            let n = varint::read_u64(buf, &mut pos).ok()? as usize;
            // A record cannot hold more points than bytes remaining.
            if n > buf.len().saturating_sub(pos) {
                return None;
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let t: Timestamp = varint::read_i64(buf, &mut pos).ok()?;
                let v_bytes = buf.get(pos..pos.checked_add(8)?)?;
                pos += 8;
                points.push(Point::new(t, f64::from_le_bytes(v_bytes.try_into().ok()?)));
            }
            WalRecord::Insert(points)
        }
        1 => {
            let version = Version(varint::read_u64(buf, &mut pos).ok()?);
            let s = varint::read_i64(buf, &mut pos).ok()?;
            let e = varint::read_i64(buf, &mut pos).ok()?;
            WalRecord::Delete {
                version,
                range: TimeRange::new(s, e),
            }
        }
        _ => return None,
    };
    let crc_bytes = buf.get(pos..pos.checked_add(4)?)?;
    let expected = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(buf.get(start..pos)?) != expected {
        return None;
    }
    Some((record, pos + 4))
}

#[cfg(test)]
mod tests {
    use super::*;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tskv-wal-tests");
        std::fs::create_dir_all(&dir).ok();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        std::fs::remove_file(Wal::sealed_path(&p)).ok();
        p
    }

    fn pts(raw: &[(i64, f64)]) -> Vec<Point> {
        raw.iter().map(|&(t, v)| Point::new(t, v)).collect()
    }

    #[test]
    fn append_replay_roundtrip() -> TestResult {
        let p = tmp("roundtrip.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&pts(&[(1, 1.0), (2, 2.0)]))?;
        w.append_delete(Version(7), TimeRange::new(0, 10))?;
        w.append_inserts(&pts(&[(5, 5.0)]))?;
        w.sync()?;
        drop(w);
        let records = Wal::replay(&p)?;
        assert_eq!(
            records,
            vec![
                WalRecord::Insert(pts(&[(1, 1.0), (2, 2.0)])),
                WalRecord::Delete {
                    version: Version(7),
                    range: TimeRange::new(0, 10)
                },
                WalRecord::Insert(pts(&[(5, 5.0)])),
            ]
        );
        Ok(())
    }

    #[test]
    fn missing_file_replays_empty() -> TestResult {
        assert!(Wal::replay(tmp("missing.wal"))?.is_empty());
        Ok(())
    }

    #[test]
    fn reset_clears_log() -> TestResult {
        let p = tmp("reset.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        assert!(w.len_bytes()? > 0);
        w.reset()?;
        assert_eq!(w.len_bytes()?, 0);
        assert!(Wal::replay(&p)?.is_empty());
        // Appending after a reset works (fresh handle).
        w.append_delete(Version(1), TimeRange::new(1, 2))?;
        assert_eq!(Wal::replay(&p)?.len(), 1);
        Ok(())
    }

    #[test]
    fn rotation_diverts_then_discard_drops() -> TestResult {
        let p = tmp("rotate.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        w.rotate_for_flush()?;
        assert_eq!(w.len_bytes()?, 0, "active segment is fresh after rotation");
        w.append_inserts(&pts(&[(2, 2.0)]))?;
        // Replay sees sealed-segment records first.
        let records = Wal::replay(&p)?;
        assert_eq!(
            records,
            vec![
                WalRecord::Insert(pts(&[(1, 1.0)])),
                WalRecord::Insert(pts(&[(2, 2.0)])),
            ]
        );
        w.discard_sealed()?;
        assert!(!Wal::sealed_path(&p).exists());
        assert_eq!(Wal::replay(&p)?, vec![WalRecord::Insert(pts(&[(2, 2.0)]))]);
        Ok(())
    }

    #[test]
    fn second_rotation_folds_active_onto_surviving_sealed_segment() -> TestResult {
        let p = tmp("fold.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        w.rotate_for_flush()?; // flush #1 starts…
        w.append_inserts(&pts(&[(2, 2.0)]))?;
        w.rotate_for_flush()?; // …fails; flush #2 rotates with .old present
        w.append_inserts(&pts(&[(3, 3.0)]))?;
        // Append order must survive both rotations.
        let records = Wal::replay(&p)?;
        assert_eq!(
            records,
            vec![
                WalRecord::Insert(pts(&[(1, 1.0)])),
                WalRecord::Insert(pts(&[(2, 2.0)])),
                WalRecord::Insert(pts(&[(3, 3.0)])),
            ]
        );
        Ok(())
    }

    #[test]
    fn discard_without_sealed_segment_is_noop() -> TestResult {
        let p = tmp("nodiscard.wal");
        let mut w = Wal::open(&p)?;
        w.discard_sealed()?;
        Ok(())
    }

    #[test]
    fn torn_tail_dropped() -> TestResult {
        let p = tmp("torn.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        w.append_inserts(&pts(&[(2, 2.0), (3, 3.0)]))?;
        drop(w);
        let data = std::fs::read(&p)?;
        let keep = data.len() - 5;
        std::fs::write(&p, data.get(..keep).ok_or("short wal")?)?;
        let records = Wal::replay(&p)?;
        assert_eq!(records, vec![WalRecord::Insert(pts(&[(1, 1.0)]))]);
        Ok(())
    }

    #[test]
    fn corrupt_record_ends_replay() -> TestResult {
        let p = tmp("corrupt.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        w.append_inserts(&pts(&[(2, 2.0)]))?;
        drop(w);
        let mut data = std::fs::read(&p)?;
        let n = data.len();
        let byte = data.get_mut(n - 6).ok_or("short wal")?;
        *byte ^= 0xFF; // flip a bit in the second record's body
        std::fs::write(&p, &data)?;
        assert_eq!(Wal::replay(&p)?.len(), 1);
        Ok(())
    }

    #[test]
    fn absurd_count_rejected() -> TestResult {
        let p = tmp("absurd.wal");
        // Hand-craft a record claiming u64::MAX points.
        let mut body = vec![0u8];
        varint::write_u64(&mut body, u64::MAX);
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&p, &body)?;
        assert!(Wal::replay(&p)?.is_empty());
        Ok(())
    }

    #[test]
    fn empty_insert_is_noop() -> TestResult {
        let p = tmp("empty.wal");
        let mut w = Wal::open(&p)?;
        w.append_inserts(&[])?;
        assert_eq!(w.len_bytes()?, 0);
        Ok(())
    }

    #[test]
    fn grouped_mode_buffers_until_commit() -> TestResult {
        let p = tmp("grouped.wal");
        let mut w = Wal::open_grouped(&p, 1 << 20)?;
        w.append_inserts(&pts(&[(1, 1.0), (2, 2.0)]))?;
        w.append_delete(Version(3), TimeRange::new(0, 5))?;
        // Nothing has reached the OS yet…
        assert_eq!(std::fs::metadata(&p)?.len(), 0);
        // …but the logical length counts the buffered frames.
        assert!(w.len_bytes()? > 0);
        assert!(Wal::replay(&p)?.is_empty());
        let bytes = w.commit(false)?;
        assert!(bytes > 0);
        assert_eq!(std::fs::metadata(&p)?.len(), bytes);
        assert_eq!(
            Wal::replay(&p)?,
            vec![
                WalRecord::Insert(pts(&[(1, 1.0), (2, 2.0)])),
                WalRecord::Delete {
                    version: Version(3),
                    range: TimeRange::new(0, 5)
                },
            ]
        );
        // A second commit with nothing new reports an empty batch.
        assert_eq!(w.commit(true)?, 0);
        Ok(())
    }

    #[test]
    fn grouped_mode_writes_through_past_threshold() -> TestResult {
        let p = tmp("grouped_threshold.wal");
        let mut w = Wal::open_grouped(&p, 16)?;
        // One record larger than the threshold drains immediately.
        w.append_inserts(&pts(&[(1, 1.0), (2, 2.0), (3, 3.0)]))?;
        assert!(std::fs::metadata(&p)?.len() > 0);
        // commit still reports everything written since the last one.
        assert!(w.commit(false)? > 0);
        Ok(())
    }

    #[test]
    fn rotation_drains_buffered_frames_into_sealed_segment() -> TestResult {
        let p = tmp("grouped_rotate.wal");
        let mut w = Wal::open_grouped(&p, 1 << 20)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        w.rotate_for_flush()?;
        // The buffered record rotated out with the sealed segment.
        assert_eq!(Wal::replay(&p)?, vec![WalRecord::Insert(pts(&[(1, 1.0)]))]);
        assert!(Wal::sealed_path(&p).exists());
        assert_eq!(w.len_bytes()?, 0);
        Ok(())
    }

    #[test]
    fn reset_drops_buffered_frames() -> TestResult {
        let p = tmp("grouped_reset.wal");
        let mut w = Wal::open_grouped(&p, 1 << 20)?;
        w.append_inserts(&pts(&[(1, 1.0)]))?;
        w.reset()?;
        assert_eq!(w.commit(false)?, 0);
        assert!(Wal::replay(&p)?.is_empty());
        Ok(())
    }
}
