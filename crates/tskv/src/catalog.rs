//! Interned series identities.
//!
//! Production deployments scale *series count*, not points-per-series:
//! a fleet of devices each exporting a handful of signals easily
//! reaches 10⁵–10⁶ distinct series. Keying every engine map on the
//! series name means a full string hash (and often a clone) on every
//! hot-path lookup, and a `Vec<String>` materialization on every
//! scheduler sweep. The catalog fixes the unit of identity instead:
//! each name is interned exactly once into a dense [`SeriesId`] (a
//! `u32`), and every internal structure — shard maps, flush queues,
//! compaction candidate lists, change events, the decoded-chunk cache —
//! is keyed on that id. Names survive only at the API boundary, where
//! they are resolved once per request.
//!
//! ## Persistence
//!
//! The name↔id mapping must survive restarts: sealed data files and
//! shared-WAL records are tagged with ids, so losing the mapping orphans
//! the data. Interning appends one CRC-framed record to `catalog.log`
//! at the store root *before* the id is published; recovery replays the
//! log and rebuilds both directions of the map. Ids are allocated
//! densely (`0, 1, 2, …` in intern order), which recovery verifies — a
//! gap or out-of-order id means the log was tampered with or torn
//! mid-file, and the store refuses to open rather than silently
//! re-binding data to the wrong series.
//!
//! Record layout: `u32 id (LE) | u16 name_len (LE) | name bytes |
//! u32 crc` where the CRC covers everything before it. A torn tail
//! (incomplete or CRC-failing final record) is truncated on open, the
//! same contract as the data WAL: a crash mid-intern loses only the
//! never-acknowledged registration.
//!
//! Appends are written through to the OS immediately (a crash loses
//! nothing acknowledged short of power failure) but fsynced lazily:
//! [`SeriesCatalog::sync_if_dirty`] runs on the flush path before any
//! data file referencing a new id is sealed, so a power loss can never
//! leave a data file whose id the catalog forgot. Interning a million
//! series therefore costs a million buffered appends and *one* fsync.
//!
//! ## Concurrency
//!
//! Lookups ([`SeriesCatalog::resolve`]) take one striped read lock —
//! no allocation, no global point of contention. Interning serializes
//! on the log mutex (appends must hit the file in id order) with a
//! double-check so racing interners of the same name agree on one id.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tsfile::checksum::crc32;

use crate::stats::IoStats;
use crate::{Result, TsKvError};

/// Dense interned identity of one series. Allocation order: the first
/// name interned into a store is id 0, the next id 1, and so on —
/// recovery re-derives the same ids from the catalog log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

impl SeriesId {
    /// The id as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SeriesId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Number of read-lock stripes in the name→id table. Fixed: stripes
/// bound contention, not capacity.
const NAME_STRIPES: usize = 64;

/// Name of the catalog log file at the store root.
pub const CATALOG_LOG: &str = "catalog.log";

struct LogState {
    file: File,
}

/// The interning table: name→id (striped), id→name (dense), and the
/// append-only persistence log.
pub struct SeriesCatalog {
    stripes: Vec<RwLock<HashMap<Arc<str>, SeriesId>>>,
    names: RwLock<Vec<Arc<str>>>,
    log: Mutex<LogState>,
    dirty: AtomicBool,
    limit: u64,
    io: Arc<IoStats>,
}

impl std::fmt::Debug for SeriesCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesCatalog")
            .field("len", &self.len())
            .field("limit", &self.limit)
            .finish()
    }
}

fn stripe_of(name: &str) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    (h.finish() as usize) % NAME_STRIPES
}

/// Encode one catalog record into `out`.
fn encode_record(out: &mut Vec<u8>, id: u32, name: &str) {
    let start = out.len();
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
    let crc = crc32(out.get(start..).unwrap_or(&[]));
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decode one record at `pos`; `None` on a torn or corrupt tail.
fn decode_record(buf: &[u8], pos: usize) -> Option<(u32, String, usize)> {
    let id_bytes = buf.get(pos..pos.checked_add(4)?)?;
    let id = u32::from_le_bytes(id_bytes.try_into().ok()?);
    let len_at = pos.checked_add(4)?;
    let len_bytes = buf.get(len_at..len_at.checked_add(2)?)?;
    let name_len = u16::from_le_bytes(len_bytes.try_into().ok()?) as usize;
    let name_at = len_at.checked_add(2)?;
    let name_end = name_at.checked_add(name_len)?;
    let name = std::str::from_utf8(buf.get(name_at..name_end)?).ok()?;
    let crc_end = name_end.checked_add(4)?;
    let crc_bytes = buf.get(name_end..crc_end)?;
    let expected = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(buf.get(pos..name_end)?) != expected {
        return None;
    }
    Some((id, name.to_string(), crc_end))
}

impl SeriesCatalog {
    /// Open (creating if absent) the catalog backed by `root/catalog.log`,
    /// replaying every existing registration. A torn final record is
    /// truncated away; a non-dense id sequence is a hard error.
    pub fn open(root: &Path, limit: u64, io: Arc<IoStats>) -> Result<SeriesCatalog> {
        let path = root.join(CATALOG_LOG);
        let mut existing: Vec<(u32, String)> = Vec::new();
        let mut good_bytes = 0u64;
        let mut truncate_tail = false;
        if path.exists() {
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let mut pos = 0usize;
            while pos < buf.len() {
                match decode_record(&buf, pos) {
                    Some((id, name, next)) => {
                        existing.push((id, name));
                        pos = next;
                    }
                    None => {
                        truncate_tail = true;
                        break;
                    }
                }
            }
            good_bytes = pos as u64;
        }
        if truncate_tail {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good_bytes)?;
            f.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;

        let mut stripes: Vec<RwLock<HashMap<Arc<str>, SeriesId>>> =
            Vec::with_capacity(NAME_STRIPES);
        for _ in 0..NAME_STRIPES {
            stripes.push(RwLock::new(HashMap::new()));
        }
        let mut names: Vec<Arc<str>> = Vec::with_capacity(existing.len());
        for (id, name) in existing {
            if id as usize != names.len() {
                return Err(TsKvError::Corrupt(format!(
                    "catalog log: expected id {}, found {id} ({name:?})",
                    names.len()
                )));
            }
            let arc: Arc<str> = Arc::from(name.as_str());
            let prev = stripes
                .get(stripe_of(&name))
                .map(|s| s.write().insert(Arc::clone(&arc), SeriesId(id)));
            if matches!(prev, Some(Some(_))) {
                return Err(TsKvError::Corrupt(format!(
                    "catalog log: name {name:?} registered twice"
                )));
            }
            names.push(arc);
        }
        Ok(SeriesCatalog {
            stripes,
            names: RwLock::new(names),
            log: Mutex::new(LogState { file }),
            dirty: AtomicBool::new(false),
            limit,
            io,
        })
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.names.read().len()
    }

    /// Whether no series is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up an existing id without interning. One striped read-lock
    /// hash probe; records a catalog hit or miss.
    pub fn resolve(&self, name: &str) -> Option<SeriesId> {
        let found = self
            .stripes
            .get(stripe_of(name))
            .and_then(|s| s.read().get(name).copied());
        match found {
            Some(id) => {
                self.io.record_catalog_hit();
                Some(id)
            }
            None => {
                self.io.record_catalog_miss();
                None
            }
        }
    }

    /// Intern `name`, appending to the log if it is new. Racing callers
    /// agree on one id; the record reaches the OS before the id is
    /// published.
    pub fn intern(&self, name: &str) -> Result<SeriesId> {
        if let Some(id) = self.resolve(name) {
            return Ok(id);
        }
        let mut log = self.log.lock();
        // Double-check: another interner may have won the race between
        // our miss and taking the log lock.
        if let Some(id) = self
            .stripes
            .get(stripe_of(name))
            .and_then(|s| s.read().get(name).copied())
        {
            return Ok(id);
        }
        let next = self.names.read().len() as u64;
        if next >= self.limit {
            return Err(TsKvError::CatalogFull { limit: self.limit });
        }
        let id = SeriesId(next as u32);
        let mut rec = Vec::with_capacity(10 + name.len());
        encode_record(&mut rec, id.0, name);
        log.file.write_all(&rec)?;
        self.dirty.store(true, Ordering::Release);
        let arc: Arc<str> = Arc::from(name);
        // Publish id→name before name→id so a resolve that wins the
        // race can always map its id back to a name.
        self.names.write().push(Arc::clone(&arc));
        if let Some(stripe) = self.stripes.get(stripe_of(name)) {
            stripe.write().insert(arc, id);
        }
        Ok(id)
    }

    /// The name bound to `id`, if allocated.
    pub fn name_of(&self, id: SeriesId) -> Option<Arc<str>> {
        self.names.read().get(id.index()).cloned()
    }

    /// All registered names in id order (the facade's `series_names`).
    pub fn names_snapshot(&self) -> Vec<Arc<str>> {
        self.names.read().clone()
    }

    /// Fsync the log if any intern happened since the last sync. Called
    /// on the flush path before sealing a data file, so on-disk data
    /// never references an id the catalog could forget.
    pub fn sync_if_dirty(&self) -> Result<()> {
        if self.dirty.swap(false, Ordering::AcqRel) {
            let log = self.log.lock();
            log.file.sync_data()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Tests assert by panicking; the workspace deny-set targets
    // library code.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tskv-catalog-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(root: &Path) -> SeriesCatalog {
        SeriesCatalog::open(root, 1 << 20, Arc::new(IoStats::default())).unwrap()
    }

    #[test]
    fn intern_is_dense_and_idempotent() {
        let dir = tmp("dense");
        let c = open(&dir);
        assert_eq!(c.intern("a").unwrap(), SeriesId(0));
        assert_eq!(c.intern("b").unwrap(), SeriesId(1));
        assert_eq!(c.intern("a").unwrap(), SeriesId(0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.resolve("b"), Some(SeriesId(1)));
        assert_eq!(c.resolve("zzz"), None);
        assert_eq!(&*c.name_of(SeriesId(0)).unwrap(), "a");
        assert!(c.name_of(SeriesId(9)).is_none());
    }

    #[test]
    fn reopen_recovers_mapping() {
        let dir = tmp("reopen");
        {
            let c = open(&dir);
            for i in 0..100 {
                c.intern(&format!("series.{i}")).unwrap();
            }
        }
        let c = open(&dir);
        assert_eq!(c.len(), 100);
        assert_eq!(c.resolve("series.42"), Some(SeriesId(42)));
        // New interns continue the dense sequence.
        assert_eq!(c.intern("fresh").unwrap(), SeriesId(100));
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp("torn");
        {
            let c = open(&dir);
            c.intern("a").unwrap();
            c.intern("b").unwrap();
        }
        let path = dir.join(CATALOG_LOG);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, data.get(..data.len() - 3).unwrap()).unwrap();
        let c = open(&dir);
        assert_eq!(c.len(), 1);
        assert_eq!(c.resolve("a"), Some(SeriesId(0)));
        assert_eq!(c.resolve("b"), None);
        // The torn record is gone from disk; re-interning works.
        assert_eq!(c.intern("b").unwrap(), SeriesId(1));
    }

    #[test]
    fn gapped_ids_refuse_to_open() {
        let dir = tmp("gap");
        let mut buf = Vec::new();
        encode_record(&mut buf, 0, "a");
        encode_record(&mut buf, 2, "c");
        std::fs::write(dir.join(CATALOG_LOG), &buf).unwrap();
        assert!(matches!(
            SeriesCatalog::open(&dir, 1 << 20, Arc::new(IoStats::default())),
            Err(TsKvError::Corrupt(_))
        ));
    }

    #[test]
    fn limit_is_enforced() {
        let dir = tmp("limit");
        let c = SeriesCatalog::open(&dir, 2, Arc::new(IoStats::default())).unwrap();
        c.intern("a").unwrap();
        c.intern("b").unwrap();
        assert!(matches!(
            c.intern("c"),
            Err(TsKvError::CatalogFull { limit: 2 })
        ));
        // Existing names still intern fine at the limit.
        assert_eq!(c.intern("a").unwrap(), SeriesId(0));
    }

    #[test]
    fn hit_miss_counters_flow_to_stats() {
        let dir = tmp("counters");
        let io = Arc::new(IoStats::default());
        let c = SeriesCatalog::open(&dir, 16, Arc::clone(&io)).unwrap();
        c.intern("a").unwrap();
        c.resolve("a");
        c.resolve("a");
        c.resolve("nope");
        let snap = io.snapshot();
        assert_eq!(snap.catalog_hits, 2);
        // intern's initial resolve missed once, plus the explicit miss.
        assert_eq!(snap.catalog_misses, 2);
    }

    #[test]
    fn sync_if_dirty_only_syncs_once() {
        let dir = tmp("sync");
        let c = open(&dir);
        c.intern("a").unwrap();
        c.sync_if_dirty().unwrap();
        // Second call is a no-op (dirty flag cleared) — just must not fail.
        c.sync_if_dirty().unwrap();
    }

    #[test]
    fn racing_interns_agree() {
        let dir = tmp("race");
        let c = Arc::new(open(&dir));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| c.intern(&format!("s.{i}")).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        let ids: Vec<Vec<SeriesId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let first = ids.first().unwrap();
        for w in ids.iter().skip(1) {
            assert_eq!(w, first);
        }
        assert_eq!(c.len(), 50);
    }
}
