//! Multi-series write batches.
//!
//! A [`WriteBatch`] accumulates points for any number of series and is
//! applied in one [`crate::TsKv::write_batch`] call: the engine groups
//! the touched series by shard, takes each stripe's write lock once,
//! and drains every series' WAL frames in a single group-commit
//! syscall. Building the batch does no I/O and takes no locks, so
//! producers can assemble batches concurrently and hand them to the
//! engine at their own cadence.
//!
//! Within one series, points keep insertion order (later duplicates
//! overwrite, same as [`crate::TsKv::insert_batch`]). Order *between*
//! series in a batch is not meaningful: each series' points are applied
//! atomically under its shard lock, but two series in different shards
//! may be applied in either order relative to concurrent writers.

use std::collections::HashMap;

use tsfile::types::Point;

/// A buffered set of writes across one or more series.
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    /// Per-series point runs, in first-touch order.
    entries: Vec<(String, Vec<Point>)>,
    /// Series name → index into `entries`.
    index: HashMap<String, usize>,
    /// Total points across all series.
    len: usize,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue one point for `series`.
    pub fn insert(&mut self, series: &str, p: Point) {
        self.insert_many(series, std::slice::from_ref(&p));
    }

    /// Queue a run of points for `series` (any time order; duplicates
    /// overwrite at apply time). Empty runs are ignored.
    pub fn insert_many(&mut self, series: &str, points: &[Point]) {
        if points.is_empty() {
            return;
        }
        let idx = match self.index.get(series) {
            Some(&i) => i,
            None => {
                self.entries.push((series.to_string(), Vec::new()));
                let i = self.entries.len() - 1;
                self.index.insert(series.to_string(), i);
                i
            }
        };
        if let Some((_, run)) = self.entries.get_mut(idx) {
            run.extend_from_slice(points);
            self.len += points.len();
        }
    }

    /// Total queued points across all series.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no points are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct series touched.
    pub fn series_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterate the queued `(series, points)` runs in first-touch order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[Point])> {
        self.entries.iter().map(|(n, p)| (n.as_str(), p.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_groups_points_by_series_in_first_touch_order() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.insert("b", Point::new(1, 1.0));
        b.insert_many("a", &[Point::new(2, 2.0), Point::new(3, 3.0)]);
        b.insert("b", Point::new(4, 4.0));
        b.insert_many("a", &[]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.series_count(), 2);
        let runs: Vec<(&str, usize)> = b.entries().map(|(n, p)| (n, p.len())).collect();
        assert_eq!(runs, vec![("b", 2), ("a", 2)]);
        let b_pts: Vec<i64> = b
            .entries()
            .find(|(n, _)| *n == "b")
            .map(|(_, p)| p.iter().map(|p| p.t).collect())
            .unwrap_or_default();
        assert_eq!(b_pts, vec![1, 4]);
    }
}
