//! Global version number allocation.
//!
//! The paper's `κ` (Definition 2.4/2.5) is "a global incremental number
//! assigned to each chunk or delete to distinguish the append order of
//! updates and deletes". Chunks and deletes draw from the same counter.

use std::sync::atomic::{AtomicU64, Ordering};

use tsfile::types::Version;

/// Thread-safe monotone allocator for version numbers.
#[derive(Debug)]
pub struct VersionAllocator {
    next: AtomicU64,
}

impl VersionAllocator {
    /// Start allocating from `first` (use 1 for a fresh store; recovery
    /// passes max-seen + 1).
    pub fn new(first: u64) -> Self {
        VersionAllocator {
            next: AtomicU64::new(first.max(1)),
        }
    }

    /// Allocate the next version.
    pub fn next(&self) -> Version {
        Version(self.next.fetch_add(1, Ordering::SeqCst))
    }

    /// The highest version allocated so far (0 if none).
    pub fn current(&self) -> Version {
        Version(self.next.load(Ordering::SeqCst).saturating_sub(1))
    }

    /// Ensure future allocations are strictly greater than `seen`
    /// (recovery: raise past versions found on disk).
    pub fn observe(&self, seen: Version) {
        let mut cur = self.next.load(Ordering::SeqCst);
        while cur <= seen.0 {
            match self
                .next
                .compare_exchange(cur, seen.0 + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Default for VersionAllocator {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_incrementally() {
        let a = VersionAllocator::default();
        assert_eq!(a.current(), Version(0));
        assert_eq!(a.next(), Version(1));
        assert_eq!(a.next(), Version(2));
        assert_eq!(a.current(), Version(2));
    }

    #[test]
    fn observe_raises_floor() {
        let a = VersionAllocator::default();
        a.observe(Version(41));
        assert_eq!(a.next(), Version(42));
        // Observing an already-passed version is a no-op.
        a.observe(Version(10));
        assert_eq!(a.next(), Version(43));
    }

    #[test]
    fn zero_start_clamped_to_one() {
        let a = VersionAllocator::new(0);
        assert_eq!(a.next(), Version(1));
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let a = Arc::new(VersionAllocator::default());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || (0..1000).map(|_| a.next().0).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            let versions = match h.join() {
                Ok(vs) => vs,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            for v in versions {
                assert!(seen.insert(v), "duplicate version {v}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }
}
