//! MergeReader: the merge function `M(ℂ, 𝔻)` of Definition 2.7.
//!
//! Loads every chunk overlapping the requested range, k-way merges the
//! sorted runs by time, resolves same-timestamp collisions by highest
//! version (later writes overwrite earlier ones), and drops points
//! covered by a later-versioned delete. This is the full-cost path the
//! M4-UDF baseline sits on: all overlapping chunks are read, decoded
//! and heap-merged whether or not their points end up in the output.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use tsfile::types::{Point, TimeRange, Timestamp, Version};

use crate::chunk::ChunkHandle;

use crate::delete::DeleteSweep;
use crate::snapshot::SeriesSnapshot;
use crate::Result;

/// K-way merging reader over a snapshot.
#[derive(Debug)]
pub struct MergeReader<'a> {
    snapshot: &'a SeriesSnapshot,
    range: TimeRange,
}

/// Heap entry: min-heap by time, tie-broken by *descending* version so
/// the latest write at a timestamp surfaces first.
struct HeapEntry {
    t: Timestamp,
    version: Version,
    run: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.version == other.version
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert time, keep version ascending
        // so the max-heap pops (smallest t, largest version) first.
        other.t.cmp(&self.t).then(self.version.cmp(&other.version))
    }
}

impl<'a> MergeReader<'a> {
    /// Merge the whole series.
    pub fn new(snapshot: &'a SeriesSnapshot) -> Self {
        MergeReader {
            snapshot,
            range: TimeRange::new(Timestamp::MIN, Timestamp::MAX),
        }
    }

    /// Merge only points within `range` (inclusive). Chunks that do not
    /// overlap the range are skipped entirely (their metadata suffices
    /// to prune them — even the baseline gets this basic pruning, as
    /// IoTDB's SeriesReader does).
    pub fn with_range(snapshot: &'a SeriesSnapshot, range: TimeRange) -> Self {
        MergeReader { snapshot, range }
    }

    /// The chunks this reader would load: every chunk overlapping the
    /// requested range, cloned out so callers may fan the loads across
    /// threads without borrowing the snapshot's chunk list.
    pub fn plan(&self) -> Vec<ChunkHandle> {
        self.snapshot
            .chunks_overlapping(self.range)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Materialize the merged, latest-points-only series in time order.
    pub fn collect_merged(&self) -> Result<Vec<Point>> {
        // Load the overlapping pages of all overlapping chunks. Pages
        // of one chunk are time-disjoint sorted runs sharing the
        // chunk's version, so feeding them to the k-way merge as
        // independent runs is exact — and pages outside the range are
        // never decoded.
        let chunks = self.plan();
        let mut runs: Vec<(Version, Arc<Vec<Point>>)> = Vec::with_capacity(chunks.len());
        for c in &chunks {
            for (_, pts) in self.snapshot.read_points_in(c, self.range)? {
                runs.push((c.version, pts));
            }
        }
        Ok(self.merge_runs(&runs))
    }

    /// K-way merge pre-loaded runs (one per planned chunk, any order):
    /// latest version wins a same-timestamp collision, and points
    /// covered by a later-versioned delete are dropped. Pure CPU — the
    /// parallel M4-UDF path loads the runs through a worker pool and
    /// feeds them here.
    pub fn merge_runs(&self, runs: &[(Version, Arc<Vec<Point>>)]) -> Vec<Point> {
        self.merge_runs_in(runs, self.range)
    }

    /// [`MergeReader::merge_runs`] restricted to the time segment
    /// `seg` (inclusive, intersected with the reader's range).
    ///
    /// A point's visibility depends only on information at its own
    /// timestamp — the highest-versioned write there and the deletes
    /// covering it — so merging disjoint time segments independently
    /// and concatenating in time order yields exactly the full merge.
    /// This is what lets the parallel M4-UDF path shard the k-way merge
    /// itself across the worker pool, not just the chunk loads.
    pub fn merge_runs_in(&self, runs: &[(Version, Arc<Vec<Point>>)], seg: TimeRange) -> Vec<Point> {
        let lo = self.range.start.max(seg.start);
        let hi = self.range.end.min(seg.end);
        if lo > hi {
            return Vec::new();
        }
        let mut deletes = DeleteSweep::new(self.snapshot.deletes());

        // Start each cursor at the first point inside the segment; the
        // heap never holds a point past its end.
        let mut cursors: Vec<usize> = runs
            .iter()
            .map(|(_, pts)| pts.partition_point(|p| p.t < lo))
            .collect();
        let mut heap = BinaryHeap::with_capacity(runs.len());
        for (i, (version, pts)) in runs.iter().enumerate() {
            if let Some(p) = pts.get(cursors[i]) {
                if p.t <= hi {
                    heap.push(HeapEntry {
                        t: p.t,
                        version: *version,
                        run: i,
                    });
                }
            }
        }

        let mut out = Vec::new();
        let mut last_t: Option<Timestamp> = None;
        while let Some(entry) = heap.pop() {
            let (version, pts) = &runs[entry.run];
            let p = pts[cursors[entry.run]];
            cursors[entry.run] += 1;
            if let Some(next) = pts.get(cursors[entry.run]) {
                if next.t <= hi {
                    heap.push(HeapEntry {
                        t: next.t,
                        version: *version,
                        run: entry.run,
                    });
                }
            }
            // Same timestamp as an already-emitted (higher-version)
            // point: this one was overwritten.
            if last_t == Some(p.t) {
                continue;
            }
            if deletes.is_deleted(p.t, *version) {
                // A deleted point still consumes the timestamp slot:
                // an older-version point at the same timestamp must not
                // resurface (the delete covers it too, since it has an
                // even smaller version).
                last_t = Some(p.t);
                continue;
            }
            last_t = Some(p.t);
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::TsKv;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    fn fresh(name: &str) -> crate::Result<(std::path::PathBuf, TsKv)> {
        let dir = std::env::temp_dir().join(format!("tskv-merge-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 100,
                memtable_threshold: 100,
                ..Default::default()
            },
        )?;
        Ok((dir, kv))
    }

    #[test]
    fn merges_overlapping_chunks_latest_wins() -> TestResult {
        let (dir, kv) = fresh("overwrite")?;
        // Batch 1: t in 0..100, v = 1.
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // Batch 2 overwrites t in 50..100 with v = 2 (overlapping chunk).
        for t in 50..100i64 {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        kv.flush_all()?;

        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 100);
        assert!(merged.iter().take(50).all(|p| p.v == 1.0));
        assert!(merged.iter().skip(50).all(|p| p.v == 2.0));
        assert!(merged.windows(2).all(|w| w[0].t < w[1].t));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn deletes_apply_only_to_older_versions() -> TestResult {
        let (dir, kv) = fresh("deletes")?;
        for t in 0..100i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 20, 40)?;
        // Re-insert part of the deleted range afterwards (newer version).
        for t in 30..=35i64 {
            kv.insert("s", Point::new(t, 9.0))?;
        }
        kv.flush_all()?;

        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        // 0..20 (20) + 41..100 (59) + re-inserted 30..=35 (6)
        assert_eq!(merged.len(), 85);
        assert!(merged
            .iter()
            .all(|p| !(20..=40).contains(&p.t) || p.v == 9.0));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn range_filter_prunes_chunks() -> TestResult {
        let (dir, kv) = fresh("range")?;
        for t in 0..1000i64 {
            kv.insert("s", Point::new(t, t as f64))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let before = snap.io().snapshot();
        let merged = MergeReader::with_range(&snap, TimeRange::new(250, 349)).collect_merged()?;
        assert_eq!(merged.len(), 100);
        assert_eq!(merged.first().map(|p| p.t), Some(250));
        let delta = snap.io().snapshot() - before;
        // Only 2 of the 10 chunks overlap [250, 349].
        assert_eq!(delta.chunks_loaded, 2);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn empty_snapshot_merges_empty() -> TestResult {
        let (dir, kv) = fresh("empty")?;
        kv.create_series("s")?;
        let snap = kv.snapshot("s")?;
        assert!(MergeReader::new(&snap).collect_merged()?.is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn memtable_points_visible_and_latest() -> TestResult {
        let (dir, kv) = fresh("memtable")?;
        for t in 0..50i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        // Unflushed overwrites + fresh points.
        for t in 40..60i64 {
            kv.insert("s", Point::new(t, 7.0))?;
        }
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert_eq!(merged.len(), 60);
        assert!(merged.iter().filter(|p| p.t >= 40).all(|p| p.v == 7.0));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn segment_merges_concatenate_to_full_merge() -> TestResult {
        let (dir, kv) = fresh("segments")?;
        // Overlapping history + deletes + a re-insert, so segments cut
        // through overwrites and tombstones.
        for t in 0..1000i64 {
            kv.insert("s", Point::new(t, 1.0))?;
        }
        kv.flush_all()?;
        for t in 300..700i64 {
            kv.insert("s", Point::new(t, 2.0))?;
        }
        kv.flush_all()?;
        kv.delete("s", 450, 550)?;
        for t in 500..=520i64 {
            kv.insert("s", Point::new(t, 3.0))?;
        }
        kv.flush_all()?;

        let snap = kv.snapshot("s")?;
        let reader = MergeReader::new(&snap);
        let plan = reader.plan();
        let mut runs = Vec::new();
        for c in &plan {
            runs.push((c.version, snap.read_points(c)?));
        }
        let full = reader.merge_runs(&runs);
        // Any partition of the time axis must concatenate to the full
        // merge — including cuts inside the deleted/re-inserted window.
        for bounds in [
            vec![0, 1000],
            vec![0, 450, 500, 521, 1000],
            vec![0, 333, 666, 1000],
        ] {
            let mut cat = Vec::new();
            for w in bounds.windows(2) {
                cat.extend(reader.merge_runs_in(&runs, TimeRange::new(w[0], w[1] - 1)));
            }
            assert_eq!(cat, full, "bounds {bounds:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn delete_does_not_resurrect_older_point() -> TestResult {
        let (dir, kv) = fresh("resurrect")?;
        // v1 chunk: point at t=10 value 1.
        kv.insert("s", Point::new(10, 1.0))?;
        kv.flush_all()?;
        // v2 chunk: overwrite t=10 with value 2.
        kv.insert("s", Point::new(10, 2.0))?;
        kv.flush_all()?;
        // v3 delete covering t=10: erases BOTH versions; the old value
        // must not resurface.
        kv.delete("s", 10, 10)?;
        let snap = kv.snapshot("s")?;
        let merged = MergeReader::new(&snap).collect_merged()?;
        assert!(merged.is_empty(), "got {merged:?}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
