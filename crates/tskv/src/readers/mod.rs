//! The three readers of the paper's Figure 15 system diagram.
//!
//! * [`MetadataReader`] — chunk metadata only, no chunk-body I/O.
//! * [`DataReader`] — loads and decodes chunk bodies (full or
//!   timestamp-only/partial).
//! * [`MergeReader`] — merges all chunks and applies deletes, producing
//!   the latest-points-only series `M(ℂ, 𝔻)`; the machinery M4-UDF
//!   relies on and M4-LSM is designed to avoid.

mod data;
mod merge;
mod metadata;

pub use data::DataReader;
pub use merge::MergeReader;
pub use metadata::MetadataReader;
