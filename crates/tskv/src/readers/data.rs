//! DataReader: chunk-body loads, full and partial.

use std::sync::Arc;

use tsfile::types::{Point, Timestamp};

use crate::chunk::ChunkHandle;
use crate::snapshot::SeriesSnapshot;
use crate::Result;

/// Loads chunk data through a snapshot, recording I/O counters.
///
/// Corresponds to the three data-read operations in the paper's
/// Table 1: full loads for metadata recalculation (case c), and
/// timestamp-only / partial loads for existence probes and boundary
/// searches (cases a and b).
#[derive(Debug, Clone, Copy)]
pub struct DataReader<'a> {
    snapshot: &'a SeriesSnapshot,
}

impl<'a> DataReader<'a> {
    pub fn new(snapshot: &'a SeriesSnapshot) -> Self {
        DataReader { snapshot }
    }

    /// Full load: all points of a chunk (Table 1 case c). The `Arc` may
    /// be shared with the engine's decoded-chunk cache.
    pub fn read_points(&self, chunk: &ChunkHandle) -> Result<Arc<Vec<Point>>> {
        self.snapshot.read_points(chunk)
    }

    /// Timestamp-only load of the whole column.
    pub fn read_timestamps(&self, chunk: &ChunkHandle) -> Result<Vec<Timestamp>> {
        self.snapshot.read_timestamps(chunk, None)
    }

    /// Partial timestamp load: decode stops once past `until`
    /// (Figure 7(b)'s partial scan for cases a and b).
    pub fn read_timestamps_until(
        &self,
        chunk: &ChunkHandle,
        until: Timestamp,
    ) -> Result<Vec<Timestamp>> {
        self.snapshot.read_timestamps(chunk, Some(until))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::TsKv;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn full_and_partial_reads_count_io() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-dr-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 1000,
                memtable_threshold: 1000,
                ..Default::default()
            },
        )?;
        for i in 0..1000i64 {
            kv.insert("s", Point::new(i * 100, i as f64))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let dr = DataReader::new(&snap);
        let chunk = snap.chunks().first().ok_or("no chunks")?;

        let pts = dr.read_points(chunk)?;
        assert_eq!(pts.len(), 1000);

        let ts = dr.read_timestamps(chunk)?;
        assert_eq!(ts.len(), 1000);

        let partial = dr.read_timestamps_until(chunk, 5_000)?;
        assert!(partial.len() < 100, "partial decode stops early");

        let io = snap.io().snapshot();
        assert_eq!(io.chunks_loaded, 3);
        assert_eq!(io.points_decoded, 1000);
        assert_eq!(io.timestamps_decoded, 1000 + partial.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
