//! MetadataReader: chunk metadata access with zero chunk-body I/O.

use tsfile::types::TimeRange;

use crate::chunk::ChunkHandle;
use crate::snapshot::SeriesSnapshot;

/// Serves chunk metadata (version, statistics, step index) from a
/// snapshot. Footers are parsed at file-open time, so every method here
/// is pure in-memory work — this is what makes M4-LSM's candidate
/// generation free of chunk loads.
#[derive(Debug, Clone, Copy)]
pub struct MetadataReader<'a> {
    snapshot: &'a SeriesSnapshot,
}

impl<'a> MetadataReader<'a> {
    pub fn new(snapshot: &'a SeriesSnapshot) -> Self {
        MetadataReader { snapshot }
    }

    /// All chunks in the snapshot.
    pub fn all(&self) -> &'a [ChunkHandle] {
        self.snapshot.chunks()
    }

    /// Chunks whose time interval overlaps `range` (Algorithm 1 line 5:
    /// "find the chunks ℂ'' ⊆ ℂ having time intervals overlapping
    /// with I_i").
    pub fn overlapping(&self, range: TimeRange) -> Vec<&'a ChunkHandle> {
        self.snapshot.chunks_overlapping(range)
    }

    /// All deletes in the snapshot.
    pub fn deletes(&self) -> &'a [tsfile::ModEntry] {
        self.snapshot.deletes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::TsKv;
    use tsfile::types::Point;

    type TestResult = std::result::Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn overlapping_filters_by_interval() -> TestResult {
        let dir = std::env::temp_dir().join(format!("tskv-mdr-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = TsKv::open(
            &dir,
            EngineConfig {
                points_per_chunk: 10,
                memtable_threshold: 10,
                ..Default::default()
            },
        )?;
        for i in 0..100i64 {
            kv.insert("s", Point::new(i, i as f64))?;
        }
        kv.flush_all()?;
        let snap = kv.snapshot("s")?;
        let r = MetadataReader::new(&snap);
        assert_eq!(r.all().len(), 10);
        let hits = r.overlapping(TimeRange::new(25, 34));
        assert_eq!(hits.len(), 2); // chunks [20..29] and [30..39]
        assert!(r.overlapping(TimeRange::new(1000, 2000)).is_empty());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
