//! Fixture self-tests: each file under `tests/fixtures/` violates
//! exactly one rule family, and the lint must (a) flag it through the
//! library API, (b) exit non-zero on it through the CLI, and (c) stay
//! clean — exit zero — on the real workspace.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{lint_single_file, Rule, Violation};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint a fixture and assert every violation belongs to `rule`.
fn lint_fixture(name: &str, rule: Rule) -> Vec<Violation> {
    let v = lint_single_file(&fixture(name)).unwrap();
    assert!(!v.is_empty(), "{name}: expected at least one violation");
    for violation in &v {
        assert_eq!(
            violation.rule,
            rule,
            "{name}: expected only {} violations, got {violation:?}",
            rule.code()
        );
    }
    v
}

#[test]
fn l1_fixture_flags_every_panic_path_class() {
    let v = lint_fixture("l1_panic_paths.rs", Rule::L1);
    let has = |needle: &str| v.iter().any(|v| v.message.contains(needle));
    assert!(has(".unwrap()"), "{v:?}");
    assert!(has(".expect()"), "{v:?}");
    assert!(has("panic!"), "{v:?}");
    assert!(has("unreachable!"), "{v:?}");
    assert!(has("indexing"), "{v:?}");
    assert_eq!(v.len(), 5, "one finding per class: {v:?}");
}

#[test]
fn l2_fixture_flags_guard_across_chunk_load() {
    let v = lint_fixture("l2_guard_across_io.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("read_chunk") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_guard_across_cache_decode_and_pool() {
    let v = lint_fixture("l2_guard_across_cache.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("decode_chunk_body") && v.message.contains("guard")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("run_indexed") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_scheduler_guard_across_compact() {
    let v = lint_fixture("l2_scheduler_lock_phase.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("compact") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_conn_pool_guard_across_spawn_io() {
    let v = lint_fixture("l2_conn_pool_guard.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("File") && v.message.contains("guard")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("create") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l3_fixture_flags_infallible_decode_entry_point() {
    let v = lint_fixture("l3_infallible_decode.rs", Rule::L3);
    assert!(
        v.iter().any(|v| v.message.contains("decode_frame")),
        "{v:?}"
    );
}

#[test]
fn l4_fixture_flags_bare_numeric_cast() {
    let v = lint_fixture("l4_unchecked_cast.rs", Rule::L4);
    assert!(v.iter().any(|v| v.message.contains("as u32")), "{v:?}");
}

#[test]
fn workspace_lints_clean_through_library() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let v = xtask::run_lint(&root).unwrap();
    assert!(v.is_empty(), "workspace must lint clean: {v:#?}");
}

#[test]
fn cli_exits_nonzero_on_each_fixture() {
    for name in [
        "l1_panic_paths.rs",
        "l2_guard_across_io.rs",
        "l2_guard_across_cache.rs",
        "l2_scheduler_lock_phase.rs",
        "l2_conn_pool_guard.rs",
        "l3_infallible_decode.rs",
        "l4_unchecked_cast.rs",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .arg("lint")
            .arg("--file")
            .arg(fixture(name))
            .status()
            .unwrap();
        assert!(
            !status.success(),
            "{name}: CLI must exit non-zero on a violating file"
        );
    }
}

#[test]
fn cli_exits_zero_on_workspace() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(&root)
        .status()
        .unwrap();
    assert!(
        status.success(),
        "CLI must exit zero on the clean workspace"
    );
}
