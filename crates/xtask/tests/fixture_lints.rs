//! Fixture self-tests: each file under `tests/fixtures/` violates
//! exactly one rule family (except `l1_alias_call.rs`, which pairs an
//! L1 and an L2 escape), and the lint must (a) flag it through the
//! library API, (b) exit non-zero on it through the CLI, and (c) stay
//! clean — exit zero — on the real workspace.
//!
//! The `*_escape_*` tests additionally run the retired lexical engine
//! (`xtask::lexical`) as an oracle over the four documented lexical
//! blind spots — helper-returned guards, field-stored guards, local
//! fn aliases, and type-alias returns — proving the old engine missed
//! each one and the AST engine catches it.

// Tests assert by panicking; the workspace panic-freedom deny-set
// (root Cargo.toml) is aimed at library code.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::indexing_slicing
)]

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{lint_single_file, FileRules, Rule, Violation};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Run the retired lexical engine over a fixture — the oracle that
/// shows what the pre-AST lint did (and didn't) see.
fn lexical_oracle(name: &str) -> Vec<Violation> {
    let src = std::fs::read_to_string(fixture(name)).unwrap();
    xtask::lexical::lint_source(name, &src, FileRules::all())
}

/// Lint a fixture and assert every violation belongs to `rule`.
fn lint_fixture(name: &str, rule: Rule) -> Vec<Violation> {
    let v = lint_single_file(&fixture(name)).unwrap();
    assert!(!v.is_empty(), "{name}: expected at least one violation");
    for violation in &v {
        assert_eq!(
            violation.rule,
            rule,
            "{name}: expected only {} violations, got {violation:?}",
            rule.code()
        );
    }
    v
}

#[test]
fn l1_fixture_flags_every_panic_path_class() {
    let v = lint_fixture("l1_panic_paths.rs", Rule::L1);
    let has = |needle: &str| v.iter().any(|v| v.message.contains(needle));
    assert!(has(".unwrap()"), "{v:?}");
    assert!(has(".expect()"), "{v:?}");
    assert!(has("panic!"), "{v:?}");
    assert!(has("unreachable!"), "{v:?}");
    assert!(has("indexing"), "{v:?}");
    assert_eq!(v.len(), 5, "one finding per class: {v:?}");
}

#[test]
fn l2_fixture_flags_guard_across_chunk_load() {
    let v = lint_fixture("l2_guard_across_io.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("read_chunk") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_guard_across_cache_decode_and_pool() {
    let v = lint_fixture("l2_guard_across_cache.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("decode_chunk_body") && v.message.contains("guard")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("run_indexed") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_scheduler_guard_across_compact() {
    let v = lint_fixture("l2_scheduler_lock_phase.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("compact") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_compaction_capture_guard_across_merge() {
    let v = lint_fixture("l2_compaction_capture_phase.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("merge_to_file") && v.message.contains("guard")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("read_page_window_raw") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_conn_pool_guard_across_spawn_io() {
    let v = lint_fixture("l2_conn_pool_guard.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("File") && v.message.contains("guard")),
        "{v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("create") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_fixture_flags_bufpool_stripe_guard_across_read() {
    let v = lint_fixture("l2_bufpool_guard.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("read_exact_at") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l3_fixture_flags_infallible_decode_entry_point() {
    let v = lint_fixture("l3_infallible_decode.rs", Rule::L3);
    assert!(
        v.iter().any(|v| v.message.contains("decode_frame")),
        "{v:?}"
    );
}

#[test]
fn l4_fixture_flags_bare_numeric_cast() {
    let v = lint_fixture("l4_unchecked_cast.rs", Rule::L4);
    assert!(v.iter().any(|v| v.message.contains("as u32")), "{v:?}");
}

#[test]
fn l2_escape_helper_returned_guard() {
    // Old engine: no acquire token at the call site → no guard → clean.
    let old = lexical_oracle("l2_helper_guard.rs");
    assert!(old.is_empty(), "lexical engine must miss this: {old:?}");
    // New engine: `lock_map` has a returns-guard summary.
    let v = lint_fixture("l2_helper_guard.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("read_chunk") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l2_escape_guard_stored_in_field() {
    // Old engine: a statement temporary that "dies" at the `;`.
    let old = lexical_oracle("l2_field_guard.rs");
    assert!(old.is_empty(), "lexical engine must miss this: {old:?}");
    // New engine: assignment into a field promotes the guard to
    // function scope.
    let v = lint_fixture("l2_field_guard.rs", Rule::L2);
    assert!(
        v.iter()
            .any(|v| v.message.contains("read_chunk") && v.message.contains("guard")),
        "{v:?}"
    );
}

#[test]
fn l1_l2_escape_local_fn_alias() {
    // Old engine: no `.unwrap()` / `File::open(` call-site tokens.
    let old = lexical_oracle("l1_alias_call.rs");
    assert!(old.is_empty(), "lexical engine must miss this: {old:?}");
    // New engine: FnAlias dataflow — one L1 panic and one L2
    // I/O-under-guard finding, both through the alias.
    let v = lint_single_file(&fixture("l1_alias_call.rs")).unwrap();
    assert!(
        v.iter()
            .any(|v| v.rule == Rule::L1 && v.message.contains("unwrap")),
        "aliased unwrap must be flagged as L1: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.rule == Rule::L2
            && v.message.contains("File::open")
            && v.message.contains("guard")),
        "aliased File::open under a guard must be flagged as L2: {v:?}"
    );
    for violation in &v {
        assert!(
            matches!(violation.rule, Rule::L1 | Rule::L2),
            "only the two alias findings expected: {violation:?}"
        );
    }
}

#[test]
fn l3_escape_type_alias_return() {
    // Old engine, both failure directions: it flagged the Result
    // alias (false positive) and passed `Vec<Result<..>>` (miss).
    let old = lexical_oracle("l3_type_alias.rs");
    assert!(
        old.iter().any(|v| v.message.contains("decode_frames")),
        "lexical engine should false-positive on the alias: {old:?}"
    );
    assert!(
        !old.iter().any(|v| v.message.contains("read_all_rows")),
        "lexical engine should miss the eager container: {old:?}"
    );
    // New engine: alias resolves to Result (clean); Vec head flagged.
    let v = lint_fixture("l3_type_alias.rs", Rule::L3);
    assert!(
        v.iter().any(|v| v.message.contains("read_all_rows")),
        "{v:?}"
    );
    assert!(
        !v.iter().any(|v| v.message.contains("decode_frames")),
        "alias of Result must not be flagged: {v:?}"
    );
}

#[test]
fn l5_fixture_flags_blocking_call_on_accept_path() {
    let v = lint_fixture("l5_blocking_accept.rs", Rule::L5);
    assert!(
        v.iter().any(|v| v.message.contains("write_frame")),
        "direct blocking write must be flagged: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("accept_loop")),
        "transitive blocking through handle_connection must reach accept_loop: {v:?}"
    );
}

#[test]
fn l5_fixture_flags_blocking_call_on_push_path() {
    let v = lint_fixture("l5_blocking_push.rs", Rule::L5);
    assert!(
        v.iter()
            .any(|v| v.message.contains("write_frame") && v.message.contains("enqueue_push")),
        "direct blocking write in enqueue_push must be flagged: {v:?}"
    );
    assert!(
        v.iter().any(|v| v.message.contains("broadcast_delta")),
        "transitive blocking through enqueue_push must reach broadcast_delta: {v:?}"
    );
}

#[test]
fn l6_fixture_flags_subscription_counter_drift() {
    let v = lint_fixture("l6_sub_counter_drift.rs", Rule::L6);
    assert!(
        v.iter()
            .any(|v| v.message.contains("deltas_coalesced") && v.message.contains("incremented")),
        "dead coalesce counter must be flagged: {v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("resyncs") && v.message.contains("encode")),
        "unencoded resync counter must be flagged: {v:?}"
    );
    assert_eq!(
        v.len(),
        2,
        "the three disciplined subscription counters must not be flagged: {v:?}"
    );
}

#[test]
fn l6_fixture_flags_dead_and_unencoded_counters() {
    let v = lint_fixture("l6_counter_drift.rs", Rule::L6);
    assert!(
        v.iter()
            .any(|v| v.message.contains("dropped") && v.message.contains("incremented")),
        "dead counter must be flagged: {v:?}"
    );
    assert!(
        v.iter()
            .any(|v| v.message.contains("retries") && v.message.contains("encode")),
        "unencoded counter must be flagged: {v:?}"
    );
    assert_eq!(
        v.len(),
        2,
        "the disciplined `forwarded` counter must not be flagged: {v:?}"
    );
}

#[test]
fn phased_negative_fixture_clean_under_both_engines() {
    let v = lint_single_file(&fixture("l2_phased_negative.rs")).unwrap();
    assert!(v.is_empty(), "AST engine false positive: {v:?}");
    let old = lexical_oracle("l2_phased_negative.rs");
    assert!(old.is_empty(), "lexical engine false positive: {old:?}");
}

#[test]
fn workspace_lints_clean_through_library() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let v = xtask::run_lint(&root).unwrap();
    assert!(v.is_empty(), "workspace must lint clean: {v:#?}");
}

#[test]
fn cli_exits_nonzero_on_each_fixture() {
    for name in [
        "l1_panic_paths.rs",
        "l2_guard_across_io.rs",
        "l2_guard_across_cache.rs",
        "l2_scheduler_lock_phase.rs",
        "l2_compaction_capture_phase.rs",
        "l2_conn_pool_guard.rs",
        "l2_bufpool_guard.rs",
        "l3_infallible_decode.rs",
        "l4_unchecked_cast.rs",
        "l2_helper_guard.rs",
        "l2_field_guard.rs",
        "l1_alias_call.rs",
        "l3_type_alias.rs",
        "l5_blocking_accept.rs",
        "l5_blocking_push.rs",
        "l6_counter_drift.rs",
        "l6_sub_counter_drift.rs",
    ] {
        let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .arg("lint")
            .arg("--file")
            .arg(fixture(name))
            .status()
            .unwrap();
        assert!(
            !status.success(),
            "{name}: CLI must exit non-zero on a violating file"
        );
    }
}

#[test]
fn cli_exits_zero_on_negative_fixture() {
    let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--file")
        .arg(fixture("l2_phased_negative.rs"))
        .status()
        .unwrap();
    assert!(
        status.success(),
        "CLI must exit zero on the phase-disciplined negative fixture"
    );
}

#[test]
fn cli_exits_zero_on_workspace() {
    let root = xtask::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(&root)
        .status()
        .unwrap();
    assert!(
        status.success(),
        "CLI must exit zero on the clean workspace"
    );
}
