//! L2 escape #2 (documented lexical blind spot, now closed): the
//! guard is stored into a *struct field* instead of a `let` binding.
//! The lexical engine modeled `self.held = Some(self.table.read());`
//! as a statement temporary that dies at the `;`, so the I/O on the
//! next line looked guard-free. The AST engine promotes a guard
//! assigned into a field to function scope (conservatively: it cannot
//! see when another method drops it), so the `read_chunk` below is
//! flagged.

struct PinnedCompactor {
    table: RwLock<Table>,
    held: Option<RwLockReadGuard<'static, Table>>,
}

impl PinnedCompactor {
    /// VIOLATION: the guard parked in `self.held` is live across the
    /// chunk read.
    fn seal_and_reload(&mut self, meta: &ChunkMeta) {
        self.held = Some(self.table.read());
        let chunk = reader::read_chunk(meta);
        self.absorb(chunk);
    }
}
