//! L1 fixture: one site per panic-path class, nothing else. This file
//! is never compiled — the fixture self-test lexes it and asserts that
//! every site below is flagged (and that no other rule fires).

pub struct Frame;

pub fn unwrap_site(input: Option<Frame>) -> Frame {
    input.unwrap()
}

pub fn expect_site(input: Option<Frame>) -> Frame {
    input.expect("frame present")
}

pub fn panic_site(kind: u8) {
    if kind == 0 {
        panic!("zero frame kind");
    }
}

pub fn unreachable_site(kind: u8) {
    match kind {
        0 => {}
        _ => unreachable!(),
    }
}

pub fn indexing_site(buf: &Vec<u8>) -> u8 {
    buf[0]
}
