//! L2 fixture: a cache guard held across (a) a chunk-body decode and
//! (b) a worker-pool fan-out — the shapes the extended recognizers
//! (`decode_chunk_body`, `run_indexed`) must reject. Names avoid the
//! L3 fallible prefixes and there are no panic sites or casts, so only
//! L2 may fire.

struct Cache;

impl Cache {
    fn fill(&self) {
        let inner = self.map.lock();
        let pts = decode_chunk_body(inner.body(), inner.meta());
        keep(pts);
    }

    fn fan_out(&self) {
        let inner = self.map.lock();
        let out = run_indexed(4, inner.jobs(), work);
        keep(out);
    }
}

fn keep<T>(_: T) {}
fn work(_: usize) {}
