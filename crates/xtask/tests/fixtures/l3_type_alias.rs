//! Escape #4 (documented lexical blind spot, now closed), in both
//! directions at once:
//!
//! - `decode_frames` returns a type alias of `Result`. The lexical
//!   engine looked for literal `Result`/`Option` tokens in the return
//!   type and FALSELY FLAGGED this (the alias hides the tokens); the
//!   AST engine resolves `DecodeResult` through the alias table and
//!   passes it.
//! - `read_all_rows` returns `Vec<Result<...>>`. The lexical engine
//!   saw the `Result` token and FALSELY PASSED it; the AST engine
//!   judges the resolved *head* (`Vec` — an eager, infallible
//!   container) and flags it.

pub type DecodeResult = Result<Vec<u64>, CorruptFrame>;

/// Clean: `DecodeResult` is `Result` after alias resolution.
pub fn decode_frames(buf: &[u8]) -> DecodeResult {
    Ok(Vec::new())
}

/// VIOLATION: fallible-looking tokens, infallible eager container —
/// a corrupt row cannot stop this function from "succeeding".
pub fn read_all_rows(buf: &[u8]) -> Vec<Result<u64, CorruptFrame>> {
    Vec::new()
}
