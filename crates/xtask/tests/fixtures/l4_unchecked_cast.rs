//! L4 fixture: a bare truncating `as` conversion in codec-style code.
//! The audited helpers in `tsfile::cast` are the only sanctioned way
//! to narrow; this shape must be flagged. Private fn with a
//! non-fallible-prefix name, so only L4 may fire.

fn narrow_length(raw: u64) -> u32 {
    raw as u32
}
