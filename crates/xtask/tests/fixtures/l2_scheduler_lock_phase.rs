//! L2 fixture: a shard read guard held across a compaction call — the
//! phase discipline the background compaction scheduler must keep
//! (collect candidates under a short guard, drop it, *then* compact
//! each one off-lock). The `compact` recognizer must reject the fused
//! form below. Names avoid the L3 fallible prefixes and there are no
//! panic sites, indexing, or casts, so only L2 may fire.

struct Scheduler;

impl Scheduler {
    fn tick(&self) {
        let shard = self.shards.read();
        for name in shard.candidates() {
            let report = compact(name);
            keep(report);
        }
    }
}

fn keep<T>(_: T) {}
