//! L2 escape #1 (documented lexical blind spot, now closed): the
//! guard is acquired through a *helper method*, so no `.lock()` /
//! `.read()` token appears at the acquisition site in the caller. The
//! lexical engine only recognized literal acquire tokens and passed
//! this file; the AST engine computes a `returns_guard` summary for
//! `lock_map` (tail expression `self.inner.lock()` and the
//! `MutexGuard` return type) and tracks the binding to the I/O call.

struct ChunkCache {
    inner: Mutex<Table>,
    reader: Reader,
}

impl ChunkCache {
    /// The helper every call site uses instead of a raw `.lock()`.
    fn lock_map(&self) -> MutexGuard<'_, Table> {
        self.inner.lock()
    }

    /// VIOLATION: `g` is a lock guard (via the helper) and is still
    /// live when `read_chunk` performs file I/O.
    fn refill(&self, meta: &ChunkMeta) {
        let mut g = self.lock_map();
        let chunk = self.reader.read_chunk(meta);
        g.put(meta.idx, chunk);
    }
}
