//! L3 fixture: a public decode entry point returning a bare value.
//! Corrupt input has nowhere to surface but a panic, which is exactly
//! what the fallible-API scan must reject. No guard, panic site or
//! cast, so only L3 may fire.

pub fn decode_frame(buf: &Vec<u8>) -> Vec<u32> {
    let _ = buf;
    Vec::new()
}
