//! L5 fixture: blocking socket I/O on the subscription push/broadcast
//! path. `broadcast_delta` runs on the dispatcher thread under the
//! registry lock; the real code hands encoded deltas to per-connection
//! writer threads through a bounded queue precisely so the dispatcher
//! never touches a socket. Here `enqueue_push` writes the frame
//! synchronously instead — one slow consumer that never drains its
//! socket stalls delta delivery to every dashboard. Both the direct
//! frame write and the transitive `broadcast_delta → enqueue_push`
//! edge must be flagged (the blocking fact propagates through the
//! call-graph summary).

fn broadcast_delta(shared: &Shared) {
    for conn in shared.conns() {
        enqueue_push(shared, conn);
    }
}

/// VIOLATION: the push frame is written on the dispatcher thread
/// instead of being queued for the connection's writer thread.
fn enqueue_push(shared: &Shared, conn: &Conn) {
    let frame = shared.delta_frame(conn);
    wire::write_frame(&mut conn.stream(), &frame);
}
