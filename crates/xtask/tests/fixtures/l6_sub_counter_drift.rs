//! L6 fixture: the five subscription counters, two of them broken.
//!
//! - `deltas_coalesced` is declared but never incremented — the
//!   coalescing path exists but forgot its accounting, so the counter
//!   reads 0 forever and hides exactly the slow-consumer pressure it
//!   was added to expose.
//! - `resyncs` is incremented on a live path but missing from the
//!   `encode*` wire surface — it moves locally and is invisible to
//!   the Stats RPC, so remote dashboards cannot see resync storms.
//! - `subs_active`, `subs_deduped` and `deltas_pushed` are
//!   disciplined end-to-end (incremented in `pub` recorders, encoded,
//!   decoded) and must NOT be flagged.

pub struct SubStats {
    subs_active: AtomicU64,
    subs_deduped: AtomicU64,
    deltas_pushed: AtomicU64,
    deltas_coalesced: AtomicU64,
    resyncs: AtomicU64,
}

impl SubStats {
    pub fn record_sub_attached(&self) {
        self.subs_active.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_sub_deduped(&self) {
        self.subs_deduped.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_delta_pushed(&self) {
        self.deltas_pushed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_resync(&self) {
        self.resyncs.fetch_add(1, Ordering::Relaxed);
    }
}

fn encode_sub_stats(out: &mut Vec<u8>, s: &SubSnapshot) {
    put_u64(out, s.subs_active);
    put_u64(out, s.subs_deduped);
    put_u64(out, s.deltas_pushed);
    put_u64(out, s.deltas_coalesced);
}

fn decode_sub_stats(c: &mut Cursor) -> SubSnapshot {
    SubSnapshot {
        subs_active: c.u64(),
        subs_deduped: c.u64(),
        deltas_pushed: c.u64(),
        deltas_coalesced: c.u64(),
    }
}
