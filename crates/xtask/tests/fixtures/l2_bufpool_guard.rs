//! L2 fixture: the buffer-pool shape the thread-local freelist in
//! `tsfile::bufpool` deliberately avoids — a lock-striped pool whose
//! stripe guard is still live when the borrowed buffer is filled by a
//! positional read. Holding the stripe lock across `read_exact_at`
//! serializes every concurrent chunk load behind one freelist mutex,
//! exactly the fused lock+I/O section the scan must reject. Names
//! avoid the L3 fallible prefixes and there are no panic sites,
//! indexing, or casts, so only L2 may fire.

struct StripedPool;

impl StripedPool {
    fn fill_buffer(&self, offset: u64) {
        let mut stripe = self.stripes.lock();
        let buf = stripe.pop_buffer();
        self.file.read_exact_at(buf, offset);
        stripe.push_buffer(buf);
    }
}
