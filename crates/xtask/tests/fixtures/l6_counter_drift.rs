//! L6 fixture: counter drift, both halves of the discipline.
//!
//! - `dropped` is declared but never incremented anywhere — a dead
//!   counter that will read 0 forever and hide the regressions it was
//!   added to catch.
//! - `retries` is incremented on a live path but never written by the
//!   `encode*` wire function — it moves locally and is invisible to
//!   remote observers.
//! - `forwarded` is disciplined end-to-end (incremented in a `pub`
//!   recorder, encoded, decoded) and must NOT be flagged.

pub struct RelayStats {
    forwarded: AtomicU64,
    dropped: AtomicU64,
    retries: AtomicU64,
}

impl RelayStats {
    pub fn record_forwarded(&self) {
        self.forwarded.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }
}

fn encode_relay_stats(out: &mut Vec<u8>, s: &RelaySnapshot) {
    put_u64(out, s.forwarded);
}

fn decode_relay_stats(c: &mut Cursor) -> RelaySnapshot {
    RelaySnapshot {
        forwarded: c.u64(),
    }
}
