//! L2 fixture: connection-pool guard phasing. The tsnet server's worker
//! registry lock must be acquired *after* the worker thread is spawned
//! and released before any socket/file I/O — registering under a live
//! guard while the spawn closure opens its log fuses registry mutation
//! with I/O and serializes every accept behind it. The `File`/`create`
//! recognizers must reject the fused form below. Names avoid the L3
//! fallible prefixes and there are no panic sites, indexing, or casts,
//! so only L2 may fire.

struct Acceptor;

impl Acceptor {
    fn adopt(&self, conn: Conn) {
        let mut pool = self.workers.lock();
        let log = File::create(self.log_path(&conn));
        pool.push(spawn_worker(conn, log));
    }
}

fn spawn_worker<C, L>(_: C, _: L) {}
