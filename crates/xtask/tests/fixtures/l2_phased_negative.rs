//! NEGATIVE fixture: phase-disciplined lock usage that must stay
//! clean under every engine. Guards are confined to a snapshot phase
//! (block scope or explicit `drop`) and all file I/O happens after
//! the guard is provably dead. A false positive here means the
//! dataflow's lifetime model regressed.

struct PhasedStore {
    map: RwLock<Table>,
}

impl PhasedStore {
    /// Phase 1 snapshots under the lock inside a block; phase 2 does
    /// unlocked I/O. The guard dies at the block's closing brace.
    fn flush_phased(&self, meta: &ChunkMeta) {
        let pending = {
            let m = self.map.read();
            m.snapshot_pending()
        };
        let chunk = reader::read_chunk(meta);
        self.merge_unlocked(pending, chunk);
    }

    /// Explicit `drop` ends the guard before the I/O.
    fn tick(&self, meta: &ChunkMeta) {
        let g = self.map.read();
        let due = g.due_count();
        drop(g);
        if due > 0 {
            let points = reader::read_points(meta);
            self.absorb(points);
        }
    }
}
