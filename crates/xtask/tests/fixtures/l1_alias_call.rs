//! Escape #3 (documented lexical blind spot, now closed): calls
//! through a *local function alias*. `Option::unwrap` bound to a
//! variable and `File::open` bound to a variable carry their panic /
//! I/O behavior to every call through the alias, but no `.unwrap()`
//! or `File::open(` token appears at the call site, so the lexical
//! engine passed this file entirely. The AST dataflow tracks
//! `FnAlias` values through `let` bindings.

struct SegmentJournal {
    state: Mutex<Vec<u64>>,
}

/// VIOLATION (L1): the aliased `Option::unwrap` panics on `None`,
/// reached via `take_or_die(counts)`.
fn tally(counts: Option<u64>) -> u64 {
    let take_or_die = Option::unwrap;
    take_or_die(counts)
}

impl SegmentJournal {
    /// VIOLATION (L2): `opener` is `File::open`; calling it while the
    /// state lock guard is live is I/O under a guard.
    fn append_segment(&self, path: &str) {
        let opener = File::open;
        let g = self.state.lock();
        let file = opener(path);
        self.register(g, file);
    }
}
