//! L5 fixture: blocking socket I/O on the accept/dispatch path. The
//! accept loop hands each connection to `handle_connection`
//! *synchronously*, and `handle_connection` writes a banner frame on
//! the same thread — a client that never drains its socket parks the
//! accept loop and starves every other connection. Both the direct
//! frame write and the transitive `accept_loop → handle_connection`
//! edge must be flagged (the blocking fact propagates through the
//! call-graph summary).

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                handle_connection(shared, stream);
            }
            Err(_) => {
                thread::sleep(Duration::from_millis(shared.config.poll_ms));
            }
        }
    }
}

/// VIOLATION: an unbounded socket write on the dispatch thread.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let banner = shared.banner_frame();
    wire::write_frame(&mut stream, &banner);
}
