//! L2 fixture: a lock guard held across a chunk load. The guard is
//! let-bound (lives to scope end), and `read_chunk` runs before it
//! dies — exactly the shape the lock-discipline scan must reject.
//! Names avoid the L3 fallible prefixes and there are no panic sites
//! or casts, so only L2 may fire.

struct Store;

impl Store {
    fn warm_cache(&self) {
        let guard = self.series.read();
        let pts = self.files.read_chunk(guard.meta());
        keep(pts);
    }
}

fn keep<T>(_: T) {}
