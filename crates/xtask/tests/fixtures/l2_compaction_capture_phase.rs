//! L2 fixture: the shard write guard held across compaction execution
//! — the fused form the engine's phased compaction must never regress
//! to. The real sequence is capture (locked, metadata only) → classify
//! + merge (unlocked file I/O) → install (locked splice); below, the
//! capture guard survives into `merge_to_file` and into the raw page
//! window read, and both must be flagged. Names avoid the L3 fallible
//! prefixes where possible and there are no panic sites, indexing, or
//! casts, so only L2 may fire.

struct Engine;

impl Engine {
    /// Capture and merge fused under one guard: the merge does file
    /// I/O (`merge_to_file`) while the shard map is still locked.
    fn compact_fused(&self, name: &str) {
        let store = self.shards.write();
        let chunks = store.capture(name);
        let outcome = execute::merge_to_file(&self.config, &chunks);
        store.install(outcome);
    }

    /// Same regression one layer down: copying a clean page window
    /// straight off disk while holding the capture guard.
    fn copy_fused(&self, meta: &ChunkMeta) {
        let store = self.shards.write();
        let window = store.clean_window(meta);
        let raw = self.reader.read_page_window_raw(meta, window);
        store.stash(raw);
    }
}
