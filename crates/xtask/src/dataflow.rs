//! Intraprocedural guard dataflow.
//!
//! Tracks lock/RefCell guard values through `let` bindings, moves,
//! shadowing, field stores, destructuring, branches, and temporaries
//! with drop-rule-faithful lifetimes:
//!
//! - a `let`-bound guard lives to the end of its block scope;
//! - a shadowed guard binding keeps the *old* guard alive to scope end
//!   (shadowing is not a drop);
//! - `let g2 = g;` moves — one guard, new name; `drop(g)` kills it;
//! - `let _ = x.lock();` drops immediately (`_` binds nothing);
//! - a guard stored into a field (`self.held = Some(g)`) is kept live
//!   to the end of the function (conservative);
//! - statement temporaries (`x.lock().get(k)`) die at the `;`, plain
//!   `if` condition temporaries die before the branches run, and
//!   `match`/`if let` scrutinee temporaries live through the arms;
//! - closures handed to `spawn` run on another thread: outer guards
//!   are not live inside them, and their own body is analyzed as a
//!   fresh context.
//!
//! Guard *sources* are zero-arg acquire methods (`.lock()`, `.read()`,
//! ...), workspace functions whose summary says they return a guard
//! (helper-returned guards), and local aliases of either. I/O *sinks*
//! are the L2 callee list plus any workspace function whose summary
//! reaches I/O transitively. Local function aliases (`let f =
//! File::open; f(p)`) resolve through the binding to both sink and
//! panic facts — the escape hatches DESIGN.md §6 documented for the
//! lexical engine.
//!
//! Known over/under-approximations, by choice: a guard returned from a
//! branch of an `if`/`match` that is not the first guard-yielding
//! branch decays to a statement temporary; field-read guards
//! (`self.held` used in a *different* method) are not re-tracked.

use crate::ast::{Block, Expr, FnItem, Stmt};
use crate::callgraph::is_spawn_call;
use crate::report::Rule;
use crate::summaries::{Summaries, ACQUIRE_METHODS, IO_DECODE_CALLEES};

/// One event from the dataflow pass (L2 guard-across-I/O, or L1
/// panic-through-alias).
#[derive(Debug)]
pub struct Finding {
    pub rule: Rule,
    pub line: u32,
    pub message: String,
}

#[derive(Debug, Clone)]
enum Value {
    Guard(usize),
    /// A function value bound to a local: path segments of the target.
    FnAlias(Vec<String>),
    Other,
}

struct GuardInfo {
    via: String,
    line: u32,
}

#[derive(Default)]
struct Scope {
    bindings: Vec<(String, Value)>,
    /// Guards alive to scope end without a (current) name: shadowed-
    /// away values, destructured temporaries, and — in the outermost
    /// scope — field-stored guards.
    anon: Vec<usize>,
}

struct Flow<'a, 'b> {
    sums: &'a Summaries<'a>,
    sink: &'b mut dyn FnMut(Finding),
    /// Emit L2 findings (L1 alias findings are always emitted).
    check_l2: bool,
    guards: Vec<GuardInfo>,
    alive: Vec<bool>,
    scopes: Vec<Scope>,
    /// Guards owned by the statement currently being evaluated.
    temps: Vec<usize>,
    reported: Vec<(u32, String)>,
}

/// Run the guard dataflow over one function body.
pub fn analyze_fn(f: &FnItem, sums: &Summaries, check_l2: bool, sink: &mut dyn FnMut(Finding)) {
    let Some(body) = &f.body else { return };
    let mut flow = Flow {
        sums,
        sink,
        check_l2,
        guards: Vec::new(),
        alive: Vec::new(),
        scopes: Vec::new(),
        temps: Vec::new(),
        reported: Vec::new(),
    };
    flow.eval_block(body);
}

impl Flow<'_, '_> {
    // ----------------------------------------------------- guard state

    fn new_guard(&mut self, via: &str, line: u32) -> usize {
        self.guards.push(GuardInfo {
            via: via.to_string(),
            line,
        });
        self.alive.push(true);
        self.temps.push(self.guards.len() - 1);
        self.guards.len() - 1
    }

    fn kill(&mut self, id: usize) {
        if let Some(a) = self.alive.get_mut(id) {
            *a = false;
        }
    }

    /// Transfer a guard out of the temp pool (it found an owner).
    fn untemp(&mut self, id: usize) {
        if let Some(pos) = self.temps.iter().rposition(|&t| t == id) {
            self.temps.remove(pos);
        }
    }

    fn checkpoint(&self) -> usize {
        self.temps.len()
    }

    /// Statement/region end: temporaries created since `chk` die.
    fn kill_temps(&mut self, chk: usize) {
        while self.temps.len() > chk {
            if let Some(id) = self.temps.pop() {
                self.kill(id);
            }
        }
    }

    /// Region end where the temporaries *escape* into the enclosing
    /// function scope instead of dying (field stores, destructuring).
    fn promote_temps(&mut self, chk: usize, to_function_scope: bool) {
        while self.temps.len() > chk {
            if let Some(id) = self.temps.pop() {
                let idx = if to_function_scope {
                    0
                } else {
                    self.scopes.len() - 1
                };
                if let Some(s) = self.scopes.get_mut(idx) {
                    s.anon.push(id);
                }
            }
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(Scope::default());
    }

    fn pop_scope(&mut self) {
        if let Some(scope) = self.scopes.pop() {
            for (_, v) in scope.bindings {
                if let Value::Guard(id) = v {
                    self.kill(id);
                }
            }
            for id in scope.anon {
                self.kill(id);
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter().rev() {
            for (n, v) in scope.bindings.iter().rev() {
                if n == name {
                    return Some(v.clone());
                }
            }
        }
        None
    }

    /// Bind in the *current* scope. A guard shadowed in the same scope
    /// stays alive (anonymous) to scope end — shadowing is not a drop.
    fn bind(&mut self, name: &str, value: Value) {
        if let Value::Guard(id) = value {
            self.untemp(id);
        }
        let Some(scope) = self.scopes.last_mut() else {
            return;
        };
        if let Some(pos) = scope.bindings.iter().position(|(n, _)| n == name) {
            let (_, old) = scope.bindings.remove(pos);
            if let Value::Guard(old_id) = old {
                scope.anon.push(old_id);
            }
        }
        scope.bindings.push((name.to_string(), value));
    }

    /// Remove a binding in any scope (moves, `drop`).
    fn remove_binding(&mut self, name: &str) -> Option<Value> {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(pos) = scope.bindings.iter().rposition(|(n, _)| n == name) {
                return Some(scope.bindings.remove(pos).1);
            }
        }
        None
    }

    /// All currently-live guards, as (display-name, line) pairs.
    fn live_guards(&self) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        let mut seen = Vec::new();
        let mut add = |id: usize, name: Option<&str>, flow: &Flow| {
            if !flow.alive.get(id).copied().unwrap_or(false) || seen.contains(&id) {
                return;
            }
            seen.push(id);
            let g = &flow.guards[id];
            let display = match name {
                Some(n) => format!("{n}: {}", g.via),
                None => g.via.clone(),
            };
            out.push((display, g.line));
        };
        for scope in &self.scopes {
            for (n, v) in &scope.bindings {
                if let Value::Guard(id) = v {
                    add(*id, Some(n), self);
                }
            }
            for &id in &scope.anon {
                add(id, None, self);
            }
        }
        for &id in &self.temps {
            add(id, None, self);
        }
        out
    }

    // -------------------------------------------------------- reporting

    fn report_io(&mut self, display: &str, reason: &str, line: u32, alias: Option<&str>) {
        if !self.check_l2 {
            return;
        }
        let key = (line, display.to_string());
        if self.reported.contains(&key) {
            return;
        }
        let live = self.live_guards();
        if live.is_empty() {
            return;
        }
        self.reported.push(key);
        let alias_note = alias
            .map(|a| format!(" (called via local alias `{a}`)"))
            .unwrap_or_default();
        let why = if reason == format!("`{display}`") {
            String::new()
        } else {
            format!(" (reaches I/O via {reason})")
        };
        for (guard_name, guard_line) in live {
            (self.sink)(Finding {
                rule: Rule::L2,
                line,
                message: format!(
                    "`{display}`{alias_note} (file I/O / chunk decode{why}) reached while a \
                     `{guard_name}` guard from line {guard_line} is live; narrow the guard's scope"
                ),
            });
        }
    }

    fn report_alias_panic(&mut self, alias: &str, target: &str, line: u32) {
        (self.sink)(Finding {
            rule: Rule::L1,
            line,
            message: format!(
                "`{alias}` aliases `{target}`, which may panic — the call on this line is a \
                 panic path in non-test code; propagate a typed error instead"
            ),
        });
    }

    /// Does a call to `name` count as an I/O sink? Returns the reason.
    fn io_reason_for(&self, name: &str) -> Option<String> {
        self.sums.io_reason(name)
    }

    // ------------------------------------------------------- evaluation

    /// Evaluate a block; the tail expression's value (and its
    /// temporaries) escape to the caller's region.
    fn eval_block(&mut self, b: &Block) -> Value {
        self.push_scope();
        let n = b.stmts.len();
        let mut result = Value::Other;
        for (i, stmt) in b.stmts.iter().enumerate() {
            let tail = i + 1 == n;
            match stmt {
                Stmt::Expr(e) if tail => {
                    // Tail value escapes: no checkpoint.
                    result = self.eval(e);
                }
                _ => {
                    let chk = self.checkpoint();
                    self.stmt(stmt);
                    self.kill_temps(chk);
                }
            }
        }
        // The scope's named/anon guards die; the escaping tail value
        // must survive the pop if it is a guard.
        if let Value::Guard(id) = result {
            // Make sure the guard is owned by temps (caller region),
            // not by a binding in the dying scope.
            let owned_by_scope = self.scopes.last().is_some_and(|s| {
                s.bindings
                    .iter()
                    .any(|(_, v)| matches!(v, Value::Guard(g) if *g == id))
            });
            if owned_by_scope {
                // `{ let g = x.lock(); g }` — move out of the binding.
                if let Some(s) = self.scopes.last_mut() {
                    s.bindings
                        .retain(|(_, v)| !matches!(v, Value::Guard(g) if *g == id));
                }
                self.temps.push(id);
            }
        }
        self.pop_scope();
        result
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let {
                pats,
                init,
                else_block,
                ..
            } => {
                let chk = self.checkpoint();
                let val = init.as_ref().map(|e| {
                    // `let g2 = g;` is a move: unbind the source.
                    if let Expr::Path(segs, _) = e {
                        if segs.len() == 1 && self.lookup(&segs[0]).is_some() {
                            return self.remove_binding(&segs[0]).unwrap_or(Value::Other);
                        }
                    }
                    self.eval(e)
                });
                if let Some(blk) = else_block {
                    self.eval_block(blk);
                }
                match (pats.len(), val) {
                    (0, _) | (_, None) => {
                        // `let _ = ...` or no init: temporaries die now.
                        self.kill_temps(chk);
                    }
                    (1, Some(v)) => {
                        let is_guard = matches!(v, Value::Guard(_));
                        self.bind(&pats[0], v);
                        if is_guard {
                            self.kill_temps(chk);
                        } else {
                            // `let n = x.lock().len();` — the guard was
                            // a temporary; it dies at the `;`.
                            self.kill_temps(chk);
                        }
                    }
                    (_, Some(v)) => {
                        // Destructuring: names bind opaquely, and any
                        // guard created in the initializer is kept to
                        // scope end (conservative).
                        if let Value::Guard(id) = v {
                            self.untemp(id);
                            if let Some(s) = self.scopes.last_mut() {
                                s.anon.push(id);
                            }
                        }
                        for p in pats {
                            self.bind(p, Value::Other);
                        }
                        self.promote_temps(chk, false);
                    }
                }
            }
            Stmt::Expr(e) => {
                self.eval(e);
            }
            Stmt::Item(item) => {
                // A nested fn is its own context.
                if let crate::ast::Item::Fn(f) = item {
                    analyze_fn(f, self.sums, self.check_l2, self.sink);
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Value {
        match e {
            Expr::Path(segs, _) => {
                if segs.len() == 1 {
                    if let Some(v) = self.lookup(&segs[0]) {
                        return v;
                    }
                }
                Value::FnAlias(segs.clone())
            }
            Expr::Lit(_) => Value::Other,
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
            } => {
                self.eval(recv);
                let spawn = is_spawn_call(e);
                for a in args {
                    if spawn && matches!(a, Expr::Closure { .. }) {
                        self.eval_isolated_closure(a);
                    } else {
                        self.eval(a);
                    }
                }
                if ACQUIRE_METHODS.contains(&method.as_str()) && args.is_empty() {
                    let id = self.new_guard(method, *line);
                    return Value::Guard(id);
                }
                if self.sums.returns_guard(method) {
                    let id = self.new_guard(&format!("{method}()"), *line);
                    return Value::Guard(id);
                }
                if let Some(reason) = self.io_reason_for(method) {
                    self.report_io(method, &reason, *line, None);
                }
                Value::Other
            }
            Expr::Call { callee, args, line } => {
                let spawn = is_spawn_call(e);
                let mut result = Value::Other;
                if let Expr::Path(segs, _) = &**callee {
                    result = self.eval_path_call(segs, args, *line);
                } else {
                    self.eval(callee);
                }
                for a in args {
                    if spawn && matches!(a, Expr::Closure { .. }) {
                        self.eval_isolated_closure(a);
                    } else {
                        self.eval(a);
                    }
                }
                result
            }
            Expr::Field { base, .. } => {
                self.eval(base);
                Value::Other
            }
            Expr::Index { base, index, .. } => {
                self.eval(base);
                self.eval(index);
                Value::Other
            }
            Expr::Un(inner) => self.eval(inner),
            Expr::Try(inner, _) => self.eval(inner),
            Expr::Cast { expr, .. } => {
                self.eval(expr);
                Value::Other
            }
            Expr::Block(b) => self.eval_block(b),
            Expr::If {
                cond,
                pats,
                then,
                els,
                ..
            } => {
                let plain = pats.is_empty();
                let chk = self.checkpoint();
                let scrutinee = self.eval(cond);
                if plain {
                    // Plain-`if` condition temporaries die before the
                    // branches run.
                    self.kill_temps(chk);
                }
                self.push_scope();
                if !plain {
                    let is_guard = matches!(scrutinee, Value::Guard(_));
                    if pats.len() == 1 && is_guard {
                        let v = scrutinee.clone();
                        self.bind(&pats[0], v);
                    } else {
                        for p in pats {
                            self.bind(p, Value::Other);
                        }
                    }
                }
                let then_val = self.eval_block_inline(then);
                self.pop_scope();
                let els_val = els.as_ref().map(|e| self.eval(e));
                // If-let scrutinee temporaries die after the whole if.
                if !plain {
                    // Guards bound into the branch scope were killed by
                    // pop_scope already; remaining temporaries die here
                    // unless they are the result value.
                    match (&then_val, &els_val) {
                        (Value::Guard(_), _) | (_, Some(Value::Guard(_))) => {}
                        _ => self.kill_temps(chk),
                    }
                }
                if let Value::Guard(_) = then_val {
                    return then_val;
                }
                if let Some(Value::Guard(id)) = els_val {
                    return Value::Guard(id);
                }
                Value::Other
            }
            Expr::While {
                cond, pats, body, ..
            } => {
                let chk = self.checkpoint();
                self.eval(cond);
                if pats.is_empty() {
                    self.kill_temps(chk);
                }
                self.push_scope();
                for p in pats {
                    self.bind(p, Value::Other);
                }
                self.eval_block_inline(body);
                self.pop_scope();
                self.kill_temps(chk);
                Value::Other
            }
            Expr::Loop(body) => {
                self.eval_block(body);
                Value::Other
            }
            Expr::For { pats, iter, body } => {
                // Iterator temporaries (e.g. `m.lock().iter()`) live
                // through the whole loop body: no kill until after.
                let chk = self.checkpoint();
                self.eval(iter);
                self.push_scope();
                for p in pats {
                    self.bind(p, Value::Other);
                }
                self.eval_block_inline(body);
                self.pop_scope();
                self.kill_temps(chk);
                Value::Other
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                // Scrutinee temporaries live through all arms.
                let chk = self.checkpoint();
                let scr = self.eval(scrutinee);
                let mut result = Value::Other;
                for arm in arms {
                    self.push_scope();
                    if arm.pats.len() == 1 {
                        if let Value::Guard(id) = scr {
                            // Binding moves the guard into the arm —
                            // model as a shared view (alive either way).
                            self.bind(&arm.pats[0], Value::Guard(id));
                        } else {
                            self.bind(&arm.pats[0], Value::Other);
                        }
                    } else {
                        for p in &arm.pats {
                            self.bind(p, Value::Other);
                        }
                    }
                    // Re-arm guards killed by a previous arm's scope
                    // pop: each arm sees the scrutinee live.
                    if let Value::Guard(id) = scr {
                        if let Some(a) = self.alive.get_mut(id) {
                            *a = true;
                        }
                    }
                    let v = self.eval_block_tailless(&arm.body);
                    if matches!(v, Value::Guard(_)) && matches!(result, Value::Other) {
                        result = v;
                    }
                    self.pop_scope();
                }
                if let Value::Guard(id) = scr {
                    if let Some(a) = self.alive.get_mut(id) {
                        *a = true;
                    }
                }
                match result {
                    Value::Guard(_) => result,
                    _ => {
                        self.kill_temps(chk);
                        Value::Other
                    }
                }
            }
            Expr::Closure { params, body, .. } => {
                // Non-spawn closure: analyzed inline (it may run on
                // this thread while the guards are held).
                self.push_scope();
                for p in params {
                    self.bind(p, Value::Other);
                }
                let v = self.eval(body);
                self.pop_scope();
                v
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.eval(a);
                }
                Value::Other
            }
            Expr::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.eval(v);
                }
                Value::Other
            }
            Expr::Assign { lhs, rhs, line: _ } => {
                let chk = self.checkpoint();
                let val = self.eval(rhs);
                match &**lhs {
                    Expr::Field { .. } => {
                        // Guard stored into a field: function lifetime.
                        if let Value::Guard(id) = val {
                            self.untemp(id);
                            if let Some(s) = self.scopes.first_mut() {
                                s.anon.push(id);
                            }
                        }
                        self.promote_temps(chk, true);
                        self.eval(lhs);
                    }
                    Expr::Path(segs, _) if segs.len() == 1 => {
                        self.bind(&segs[0], val);
                        self.kill_temps(chk);
                    }
                    other => {
                        self.eval(other);
                        self.kill_temps(chk);
                    }
                }
                Value::Other
            }
            Expr::Binary { lhs, rhs } => {
                self.eval(lhs);
                self.eval(rhs);
                Value::Other
            }
            Expr::Return(v, _) => {
                if let Some(v) = v {
                    self.eval(v);
                }
                Value::Other
            }
            Expr::Break(v) => {
                if let Some(v) = v {
                    self.eval(v);
                }
                Value::Other
            }
            Expr::Tuple(exprs, _) => {
                for x in exprs {
                    self.eval(x);
                }
                Value::Other
            }
            Expr::Unknown(_) => Value::Other,
        }
    }

    /// A block evaluated *without* a fresh temp region of its own (the
    /// enclosing construct owns the region). Used for branch bodies.
    fn eval_block_inline(&mut self, b: &Block) -> Value {
        self.eval_block(b)
    }

    /// A match-arm body: expression or block.
    fn eval_block_tailless(&mut self, e: &Expr) -> Value {
        self.eval(e)
    }

    /// Path call `a::b::c(args)`: alias resolution, drop(), guard
    /// helpers, I/O sinks.
    fn eval_path_call(&mut self, segs: &[String], args: &[Expr], line: u32) -> Value {
        let Some(last) = segs.last() else {
            return Value::Other;
        };
        // `drop(g)` / `mem::drop(g)` releases by name.
        if last == "drop" && args.len() == 1 {
            if let Expr::Path(arg_segs, _) = &args[0] {
                if arg_segs.len() == 1 {
                    if let Some(Value::Guard(id)) = self.remove_binding(&arg_segs[0]) {
                        self.kill(id);
                        return Value::Other;
                    }
                }
            }
        }
        // Local alias: `let f = File::open; f(p)`.
        if segs.len() == 1 {
            if let Some(Value::FnAlias(target)) = self.lookup(last) {
                let display = target.join("::");
                let target_last = target.last().cloned().unwrap_or_default();
                if matches!(target_last.as_str(), "unwrap" | "expect")
                    || self.sums.may_panic(&target_last)
                {
                    self.report_alias_panic(last, &display, line);
                }
                if let Some(reason) = target
                    .iter()
                    .find(|s| IO_DECODE_CALLEES.contains(&s.as_str()))
                    .map(|s| format!("`{s}`"))
                    .or_else(|| self.io_reason_for(&target_last))
                {
                    self.report_io(&display, &reason, line, Some(last));
                }
                if self.sums.returns_guard(&target_last) {
                    let id = self.new_guard(&format!("{target_last}()"), line);
                    return Value::Guard(id);
                }
                return Value::Other;
            }
        }
        // Direct path call: `File::open(p)`, `helper(x)`.
        let display = segs.join("::");
        if let Some(reason) = segs
            .iter()
            .find(|s| IO_DECODE_CALLEES.contains(&s.as_str()))
            .map(|s| format!("`{s}`"))
            .or_else(|| self.io_reason_for(last))
        {
            self.report_io(&display, &reason, line, None);
        }
        if self.sums.returns_guard(last) {
            let id = self.new_guard(&format!("{last}()"), line);
            return Value::Guard(id);
        }
        Value::Other
    }

    /// A closure that runs on another thread: fresh guard context, no
    /// outer guards live, its own guards analyzed independently.
    fn eval_isolated_closure(&mut self, e: &Expr) {
        let Expr::Closure { params, body, .. } = e else {
            return;
        };
        let mut inner = Flow {
            sums: self.sums,
            sink: self.sink,
            check_l2: self.check_l2,
            guards: Vec::new(),
            alive: Vec::new(),
            scopes: Vec::new(),
            temps: Vec::new(),
            reported: Vec::new(),
        };
        inner.push_scope();
        for p in params {
            inner.bind(p, Value::Other);
        }
        inner.eval(body);
        inner.pop_scope();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;
    use crate::ast::parse_file;
    use crate::callgraph;

    fn findings(src: &str) -> Vec<Finding> {
        let files = vec![("t.rs".to_string(), parse_file(src).unwrap())];
        let graph = callgraph::build(&files);
        let sums = Summaries::compute(graph);
        let mut out = Vec::new();
        let mut fns = Vec::new();
        crate::ast::collect_fns(&files[0].1.items, &mut fns);
        for (_, f) in fns {
            analyze_fn(f, &sums, true, &mut |fd| out.push(fd));
        }
        out
    }

    fn l2(src: &str) -> Vec<Finding> {
        findings(src)
            .into_iter()
            .filter(|f| f.rule == Rule::L2)
            .collect()
    }

    #[test]
    fn let_guard_across_io_fires_and_scope_exit_clears() {
        assert!(
            !l2("fn f(&self) { let g = self.map.read(); self.reader.read_chunk(m); }").is_empty()
        );
        assert!(
            l2("fn f(&self) { { let g = self.map.read(); } self.reader.read_chunk(m); }")
                .is_empty()
        );
        assert!(
            l2("fn f(&self) { let g = self.map.read(); drop(g); self.reader.read_chunk(m); }")
                .is_empty()
        );
    }

    #[test]
    fn shadowing_keeps_old_guard_alive() {
        let v = l2("fn f(&self) { let g = self.a.lock(); let g = 1; self.reader.read_chunk(m); }");
        assert!(!v.is_empty(), "shadowed guard still held");
    }

    #[test]
    fn move_keeps_one_guard() {
        let v = l2("fn f(&self) { let g = self.a.lock(); let g2 = g; drop(g2); self.reader.read_chunk(m); }");
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
    }

    #[test]
    fn helper_returned_guard_tracked_at_call_site() {
        let src = "impl S { fn series(&self) { self.inner.lock() } fn f(&self) { let g = self.series(); self.reader.read_chunk(m); } }";
        let v = l2(src);
        assert!(!v.is_empty(), "helper-returned guard must be tracked");
    }

    #[test]
    fn field_stored_guard_lives_to_function_end() {
        let src = "fn f(&mut self) { { self.held = Some(self.a.lock()); } File::open(p); }";
        assert!(!l2(src).is_empty());
    }

    #[test]
    fn statement_temp_dies_at_semicolon() {
        assert!(l2("fn f(&self) { let n = self.map.read().len(); File::open(p); }").is_empty());
        assert!(!l2("fn f(&self) { self.map.read().do_io(File::open(p)); }").is_empty());
    }

    #[test]
    fn plain_if_condition_temp_dies_before_branch() {
        assert!(l2("fn f(&self) { if self.m.read().is_empty() { File::open(p); } }").is_empty());
    }

    #[test]
    fn match_scrutinee_temp_lives_through_arms() {
        let v = l2("fn f(&self) { match self.m.read().get(k) { Some(x) => { File::open(p); } None => {} } }");
        assert!(!v.is_empty());
    }

    #[test]
    fn transitive_io_through_helper_fires() {
        let src = "fn helper(&self) { self.io2(); } fn io2(&self) { self.reader.read_chunk(m); } fn f(&self) { let g = self.m.lock(); self.helper(); }";
        let v = l2(src);
        assert!(!v.is_empty(), "I/O two helpers deep must fire");
    }

    #[test]
    fn spawned_closure_isolated_both_ways() {
        assert!(l2("fn f(&self) { let g = self.m.lock(); std::thread::spawn(move || { File::open(p); }); }").is_empty());
        assert!(!l2("fn f(&self) { std::thread::spawn(move || { let g = self.m.lock(); File::open(p); }); }").is_empty());
    }

    #[test]
    fn alias_io_and_alias_panic() {
        let v = findings("fn f(&self) { let f = File::open; let g = self.m.read(); f(p); }");
        assert!(
            v.iter()
                .any(|f| f.rule == Rule::L2 && f.message.contains("File::open")),
            "{:?}",
            v.iter().map(|f| &f.message).collect::<Vec<_>>()
        );
        let v = findings("fn f(o: Option<u8>) { let f = Option::unwrap; f(o); }");
        assert!(v
            .iter()
            .any(|f| f.rule == Rule::L1 && f.message.contains("unwrap")));
    }

    #[test]
    fn sanctioned_wal_append_under_guard_passes() {
        assert!(l2("fn append(&self) { self.file.write_all(b); } fn f(&self) { let g = self.m.lock(); self.wal.append(rec); }").is_empty());
    }
}
