//! CLI for the repo-specific lints: `cargo run -p xtask -- lint`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {
            let mut root: Option<PathBuf> = None;
            let mut single_file: Option<PathBuf> = None;
            let mut json = false;
            let mut out: Option<PathBuf> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage("--root needs a path"),
                    },
                    "--file" => match it.next() {
                        Some(p) => single_file = Some(PathBuf::from(p)),
                        None => return usage("--file needs a path"),
                    },
                    "--json" => json = true,
                    "--out" => match it.next() {
                        Some(p) => out = Some(PathBuf::from(p)),
                        None => return usage("--out needs a path"),
                    },
                    other => return usage(&format!("unknown flag `{other}`")),
                }
            }
            if out.is_some() && !json {
                return usage("--out only makes sense with --json");
            }
            run(root, single_file, json, out)
        }
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("missing command"),
    }
}

fn run(
    root: Option<PathBuf>,
    single_file: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
) -> ExitCode {
    let result = if let Some(file) = single_file {
        // Single-file runs skip the allowlist and workspace graph; the
        // report wraps the violations so --json works here too.
        xtask::lint_single_file(&file).map(|violations| xtask::LintReport {
            violations,
            files_analyzed: 1,
            fallback_files: Vec::new(),
        })
    } else {
        let root =
            root.or_else(|| xtask::find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR"))));
        let Some(root) = root else {
            eprintln!("xtask lint: could not locate the workspace root; pass --root");
            return ExitCode::FAILURE;
        };
        xtask::run_lint_report(&root)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        let rendered = xtask::report::render_json(&report);
        match out {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &rendered) {
                    eprintln!("xtask lint: write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "xtask lint: wrote {} ({} violation(s), {} file(s) analyzed)",
                    path.display(),
                    report.violations.len(),
                    report.files_analyzed
                );
            }
            None => print!("{rendered}"),
        }
        return if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if report.clean() {
        println!(
            "xtask lint: clean (L1 panic-freedom, L2 lock discipline, L3 fallible decode API, \
             L4 cast audit, L5 accept-path blocking ban, L6 counter discipline; {} file(s), \
             {} lexical fallback(s))",
            report.files_analyzed,
            report.fallback_files.len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            println!("{}:{}: [{}] {}", v.path, v.line, v.rule.code(), v.message);
            if !v.excerpt.is_empty() {
                println!("    > {}", v.excerpt);
            }
        }
        println!("xtask lint: {} violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("xtask: {problem}");
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root <workspace-root>] [--file <file.rs>] \
         [--json [--out <report.json>]]"
    );
    ExitCode::FAILURE
}
