//! CLI for the repo-specific lints: `cargo run -p xtask -- lint`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {
            let mut root: Option<PathBuf> = None;
            let mut single_file: Option<PathBuf> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--root" => match it.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage("--root needs a path"),
                    },
                    "--file" => match it.next() {
                        Some(p) => single_file = Some(PathBuf::from(p)),
                        None => return usage("--file needs a path"),
                    },
                    other => return usage(&format!("unknown flag `{other}`")),
                }
            }
            run(root, single_file)
        }
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("missing command"),
    }
}

fn run(root: Option<PathBuf>, single_file: Option<PathBuf>) -> ExitCode {
    let result = if let Some(file) = single_file {
        xtask::lint_single_file(&file)
    } else {
        let root = root.or_else(|| {
            xtask::find_workspace_root(&PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        });
        let Some(root) = root else {
            eprintln!("xtask lint: could not locate the workspace root; pass --root");
            return ExitCode::FAILURE;
        };
        xtask::run_lint(&root)
    };
    match result {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean (L1 panic-freedom, L2 lock discipline, L3 fallible decode API, L4 cast audit)");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{}:{}: [{}] {}", v.path, v.line, v.rule.code(), v.message);
                if !v.excerpt.is_empty() {
                    println!("    > {}", v.excerpt);
                }
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("xtask: {problem}");
    eprintln!("usage: cargo run -p xtask -- lint [--root <workspace-root>] [--file <file.rs>]");
    ExitCode::FAILURE
}
