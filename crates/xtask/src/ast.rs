//! Token trees and a tolerant Rust parser, built over the lexer.
//!
//! `parse_file` lexes, strips test code, groups tokens into delimiter
//! trees, and parses items/statements/expressions. It is deliberately
//! forgiving: unknown constructs are skipped with resynchronization,
//! and only *delimiter imbalance* is a hard error (which sends the
//! file to the lexical fallback engine). The AST is shaped for the
//! lint rules, not for fidelity: types are kept as token lists,
//! operators lose precedence, and patterns reduce to binding names.

use crate::lexer::{lex, strip_test_code, Tok, TokKind};

/// One node of the delimiter tree: a leaf token or a `()`/`[]`/`{}`
/// group with its contents.
#[derive(Debug, Clone)]
pub enum Tree {
    Leaf(Tok),
    Group(Group),
}

#[derive(Debug, Clone)]
pub struct Group {
    pub delim: char,
    pub line: u32,
    pub trees: Vec<Tree>,
}

impl Tree {
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group(g) => g.line,
        }
    }

    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.ident(),
            Tree::Group(_) => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(c))
    }

    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Leaf(_) => None,
        }
    }

    pub fn group_with(&self, delim: char) -> Option<&Group> {
        self.group().filter(|g| g.delim == delim)
    }
}

/// Group a flat token stream into delimiter trees. Errors on
/// imbalance — the signal to fall back to the lexical engine.
pub fn build_trees(toks: &[Tok]) -> Result<Vec<Tree>, String> {
    // (delim, line, children) per open group; index 0 is the root.
    let mut stack: Vec<(char, u32, Vec<Tree>)> = vec![('\0', 0, Vec::new())];
    for t in toks {
        match t.kind {
            TokKind::Open(c) => stack.push((c, t.line, Vec::new())),
            TokKind::Close(c) => {
                let Some((open, line, trees)) = stack.pop() else {
                    return Err(format!("line {}: unbalanced `{c}`", t.line));
                };
                if close_of(open) != c || stack.is_empty() {
                    return Err(format!("line {}: `{open}` closed by `{c}`", t.line));
                }
                let group = Tree::Group(Group {
                    delim: open,
                    line,
                    trees,
                });
                if let Some(top) = stack.last_mut() {
                    top.2.push(group);
                }
            }
            _ => {
                if let Some(top) = stack.last_mut() {
                    top.2.push(Tree::Leaf(t.clone()));
                }
            }
        }
    }
    if stack.len() != 1 {
        let open_line = stack.last().map(|s| s.1).unwrap_or(0);
        return Err(format!("line {open_line}: unclosed delimiter"));
    }
    Ok(stack.pop().map(|s| s.2).unwrap_or_default())
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

// ---------------------------------------------------------------- items

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` with no restriction.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`.
    Restricted,
    Private,
}

#[derive(Debug)]
pub enum Item {
    Fn(FnItem),
    Impl {
        /// Last path segment of the implemented type.
        type_name: String,
        items: Vec<Item>,
    },
    Mod {
        name: String,
        items: Vec<Item>,
    },
    Struct(StructItem),
    TypeAlias {
        name: String,
        /// Flattened tokens of the aliased type.
        ty: Vec<String>,
        line: u32,
    },
    Trait {
        name: String,
        items: Vec<Item>,
    },
    Other,
}

#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub vis: Vis,
    /// Has a `self` receiver.
    pub is_method: bool,
    /// Flattened tokens of the return type (empty = no `->`).
    pub ret: Vec<String>,
    pub line: u32,
    pub body: Option<Block>,
}

#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    /// (field name, flattened type tokens, line) for named fields.
    pub fields: Vec<(String, Vec<String>, u32)>,
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

#[derive(Debug)]
pub enum Stmt {
    Let {
        /// Binding names introduced by the pattern.
        pats: Vec<String>,
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block.
        else_block: Option<Block>,
        line: u32,
    },
    Expr(Expr),
    Item(Item),
}

#[derive(Debug)]
pub enum Expr {
    /// Path segments: `x` is `["x"]`, `File::open` is `["File","open"]`.
    Path(Vec<String>, u32),
    Lit(u32),
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    MethodCall {
        recv: Box<Expr>,
        method: String,
        args: Vec<Expr>,
        line: u32,
    },
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    /// Any prefix operator (`&`, `&mut`, `*`, `!`, `-`) — transparent
    /// for analysis.
    Un(Box<Expr>),
    Try(Box<Expr>, u32),
    Cast {
        expr: Box<Expr>,
        /// Head identifier of the target type (`u64`, `MyAlias`).
        ty: String,
        line: u32,
    },
    Block(Block),
    If {
        cond: Box<Expr>,
        /// Bindings from `if let` patterns (empty for plain `if`).
        pats: Vec<String>,
        then: Block,
        els: Option<Box<Expr>>,
        line: u32,
    },
    While {
        cond: Box<Expr>,
        pats: Vec<String>,
        body: Block,
    },
    Loop(Block),
    For {
        pats: Vec<String>,
        iter: Box<Expr>,
        body: Block,
    },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
        line: u32,
    },
    Closure {
        params: Vec<String>,
        body: Box<Expr>,
        line: u32,
    },
    Macro {
        /// Last path segment of the macro name.
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
        line: u32,
    },
    Assign {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Binary {
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Return(Option<Box<Expr>>, u32),
    Break(Option<Box<Expr>>),
    Tuple(Vec<Expr>, u32),
    Unknown(u32),
}

#[derive(Debug)]
pub struct Arm {
    pub pats: Vec<String>,
    pub body: Expr,
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path(_, l)
            | Expr::Lit(l)
            | Expr::Call { line: l, .. }
            | Expr::MethodCall { line: l, .. }
            | Expr::Field { line: l, .. }
            | Expr::Index { line: l, .. }
            | Expr::Try(_, l)
            | Expr::Cast { line: l, .. }
            | Expr::If { line: l, .. }
            | Expr::Match { line: l, .. }
            | Expr::Closure { line: l, .. }
            | Expr::Macro { line: l, .. }
            | Expr::StructLit { line: l, .. }
            | Expr::Assign { line: l, .. }
            | Expr::Return(_, l)
            | Expr::Tuple(_, l)
            | Expr::Unknown(l) => *l,
            Expr::Un(e) | Expr::Break(Some(e)) => e.line(),
            Expr::Binary { lhs, .. } => lhs.line(),
            Expr::Block(b)
            | Expr::Loop(b)
            | Expr::While { body: b, .. }
            | Expr::For { body: b, .. } => b.stmts.first().map_or(0, stmt_line),
            Expr::Break(None) => 0,
        }
    }
}

fn stmt_line(s: &Stmt) -> u32 {
    match s {
        Stmt::Let { line, .. } => *line,
        Stmt::Expr(e) => e.line(),
        Stmt::Item(_) => 0,
    }
}

/// Parsed file: the top-level item list.
#[derive(Debug, Default)]
pub struct FileAst {
    pub items: Vec<Item>,
}

/// Lex, strip test code, and parse. `Err` only on delimiter
/// imbalance — callers fall back to the lexical engine then.
pub fn parse_file(src: &str) -> Result<FileAst, String> {
    let toks = strip_test_code(&lex(src));
    let trees = build_trees(&toks)?;
    Ok(FileAst {
        items: parse_items(&trees),
    })
}

// ------------------------------------------------------------- parsing

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "mod",
    "use",
    "type",
    "const",
    "static",
    "trait",
    "extern",
    "macro_rules",
    "union",
];

fn parse_items(trees: &[Tree]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        let before = i;
        if let Some(item) = parse_item(trees, &mut i) {
            items.push(item);
        }
        if i == before {
            i += 1; // resync: skip one tree
        }
    }
    items
}

/// Parse one item starting at `*i`; advances `*i` past whatever it
/// consumed. Returns `None` for tokens that start no recognizable
/// item (caller resyncs).
fn parse_item(trees: &[Tree], i: &mut usize) -> Option<Item> {
    skip_attrs(trees, i);
    let vis = parse_vis(trees, i);
    // Qualifiers before `fn`.
    while matches!(
        trees.get(*i).and_then(Tree::ident),
        Some("const" | "unsafe" | "async" | "default")
    ) {
        // `const NAME: ...` is an item, not a qualifier; only treat
        // `const` as a qualifier when `fn` follows.
        if trees.get(*i).and_then(Tree::ident) == Some("const")
            && trees.get(*i + 1).and_then(Tree::ident) != Some("fn")
        {
            break;
        }
        *i += 1;
    }
    if trees.get(*i).and_then(Tree::ident) == Some("extern")
        && trees.get(*i + 2).and_then(Tree::ident) == Some("fn")
    {
        *i += 2; // extern "C" fn
    }
    match trees.get(*i).and_then(Tree::ident) {
        Some("fn") => {
            *i += 1;
            Some(parse_fn(trees, i, vis))
        }
        Some("impl") => {
            *i += 1;
            Some(parse_impl(trees, i))
        }
        Some("mod") => {
            *i += 1;
            let name = trees
                .get(*i)
                .and_then(Tree::ident)
                .unwrap_or("")
                .to_string();
            *i += 1;
            match trees.get(*i) {
                Some(Tree::Group(g)) if g.delim == '{' => {
                    let items = parse_items(&g.trees);
                    *i += 1;
                    Some(Item::Mod { name, items })
                }
                _ => {
                    skip_to_semi(trees, i);
                    Some(Item::Other)
                }
            }
        }
        Some("struct") => {
            *i += 1;
            Some(parse_struct(trees, i))
        }
        Some("type") => {
            *i += 1;
            let line = trees.get(*i).map_or(0, Tree::line);
            let name = trees
                .get(*i)
                .and_then(Tree::ident)
                .unwrap_or("")
                .to_string();
            *i += 1;
            skip_generics(trees, i);
            let mut ty = Vec::new();
            if trees.get(*i).is_some_and(|t| t.is_punct('=')) {
                *i += 1;
                while *i < trees.len() && !trees[*i].is_punct(';') {
                    flatten_into(&trees[*i], &mut ty);
                    *i += 1;
                }
            }
            skip_to_semi(trees, i);
            Some(Item::TypeAlias { name, ty, line })
        }
        Some("trait") => {
            *i += 1;
            let name = trees
                .get(*i)
                .and_then(Tree::ident)
                .unwrap_or("")
                .to_string();
            *i += 1;
            // Skip generics / supertrait bounds / where clause.
            while *i < trees.len()
                && trees[*i].group_with('{').is_none()
                && !trees[*i].is_punct(';')
            {
                *i += 1;
            }
            match trees.get(*i) {
                Some(Tree::Group(g)) if g.delim == '{' => {
                    let items = parse_items(&g.trees);
                    *i += 1;
                    Some(Item::Trait { name, items })
                }
                _ => {
                    skip_to_semi(trees, i);
                    Some(Item::Other)
                }
            }
        }
        Some("enum" | "union") => {
            *i += 1;
            // name, generics, then braces (or `;`).
            while *i < trees.len()
                && trees[*i].group_with('{').is_none()
                && !trees[*i].is_punct(';')
            {
                *i += 1;
            }
            *i += 1;
            Some(Item::Other)
        }
        Some("use" | "static" | "extern") => {
            skip_to_semi(trees, i);
            Some(Item::Other)
        }
        Some("const") => {
            // `const NAME: T = init;`
            skip_to_semi(trees, i);
            Some(Item::Other)
        }
        Some("macro_rules") => {
            *i += 1; // macro_rules
            *i += 1; // !
            *i += 1; // name
            *i += 1; // body group
            Some(Item::Other)
        }
        _ => None,
    }
}

fn parse_fn(trees: &[Tree], i: &mut usize, vis: Vis) -> Item {
    let line = trees.get(*i).map_or(0, Tree::line);
    let name = trees
        .get(*i)
        .and_then(Tree::ident)
        .unwrap_or("")
        .to_string();
    *i += 1;
    skip_generics(trees, i);
    let mut is_method = false;
    if let Some(g) = trees.get(*i).and_then(|t| t.group_with('(')) {
        // `self` appears before the first top-level comma in a receiver.
        for t in &g.trees {
            if t.is_punct(',') {
                break;
            }
            if t.ident() == Some("self") {
                is_method = true;
                break;
            }
        }
        *i += 1;
    }
    // Return type: `-> ...` up to `{`, `;` or `where`.
    let mut ret = Vec::new();
    if trees.get(*i).is_some_and(|t| t.is_punct('-'))
        && trees.get(*i + 1).is_some_and(|t| t.is_punct('>'))
    {
        *i += 2;
        while *i < trees.len() {
            let t = &trees[*i];
            if t.is_punct(';') || t.ident() == Some("where") || t.group_with('{').is_some() {
                break;
            }
            flatten_into(t, &mut ret);
            *i += 1;
        }
    }
    // Where clause.
    while *i < trees.len() && trees[*i].group_with('{').is_none() && !trees[*i].is_punct(';') {
        *i += 1;
    }
    let body = match trees.get(*i) {
        Some(Tree::Group(g)) if g.delim == '{' => {
            let b = parse_block(g);
            *i += 1;
            Some(b)
        }
        _ => {
            skip_to_semi(trees, i);
            None
        }
    };
    Item::Fn(FnItem {
        name,
        vis,
        is_method,
        ret,
        line,
        body,
    })
}

fn parse_impl(trees: &[Tree], i: &mut usize) -> Item {
    // Header tokens up to the body brace; the implemented type is the
    // last path segment after `for` (trait impls) or after `impl`.
    skip_generics(trees, i);
    let mut last_ident_after_for: Option<String> = None;
    let mut last_ident: Option<String> = None;
    let mut saw_for = false;
    while *i < trees.len() {
        match &trees[*i] {
            Tree::Group(g) if g.delim == '{' => {
                let items = parse_items(&g.trees);
                *i += 1;
                let type_name = if saw_for {
                    last_ident_after_for
                } else {
                    last_ident
                }
                .unwrap_or_default();
                return Item::Impl { type_name, items };
            }
            t if t.ident() == Some("for") => {
                saw_for = true;
                *i += 1;
            }
            t if t.ident() == Some("where") => {
                // Stop recording names; scan on to the body.
                while *i < trees.len() && trees[*i].group_with('{').is_none() {
                    *i += 1;
                }
            }
            t => {
                if let Some(id) = t.ident() {
                    if id.chars().next().is_some_and(char::is_uppercase) {
                        if saw_for {
                            last_ident_after_for = Some(id.to_string());
                        } else {
                            last_ident = Some(id.to_string());
                        }
                    }
                }
                *i += 1;
            }
        }
    }
    Item::Other
}

fn parse_struct(trees: &[Tree], i: &mut usize) -> Item {
    let line = trees.get(*i).map_or(0, Tree::line);
    let name = trees
        .get(*i)
        .and_then(Tree::ident)
        .unwrap_or("")
        .to_string();
    *i += 1;
    skip_generics(trees, i);
    // Skip a where clause if present.
    while *i < trees.len() && trees[*i].group().is_none() && !trees[*i].is_punct(';') {
        *i += 1;
    }
    match trees.get(*i) {
        Some(Tree::Group(g)) if g.delim == '{' => {
            let fields = parse_struct_fields(&g.trees);
            *i += 1;
            Item::Struct(StructItem { name, fields, line })
        }
        Some(Tree::Group(g)) if g.delim == '(' => {
            // Tuple struct: skip `(...)` and `;`.
            *i += 1;
            skip_to_semi(trees, i);
            Item::Struct(StructItem {
                name,
                fields: Vec::new(),
                line,
            })
        }
        _ => {
            skip_to_semi(trees, i);
            Item::Struct(StructItem {
                name,
                fields: Vec::new(),
                line,
            })
        }
    }
}

fn parse_struct_fields(trees: &[Tree]) -> Vec<(String, Vec<String>, u32)> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        skip_attrs(trees, &mut i);
        parse_vis(trees, &mut i);
        let Some(name) = trees.get(i).and_then(Tree::ident) else {
            i += 1;
            continue;
        };
        let line = trees[i].line();
        let name = name.to_string();
        i += 1;
        if !trees.get(i).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        i += 1;
        let mut ty = Vec::new();
        let mut angle = 0i32;
        while i < trees.len() {
            let t = &trees[i];
            if t.is_punct(',') && angle == 0 {
                i += 1;
                break;
            }
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            }
            flatten_into(t, &mut ty);
            i += 1;
        }
        fields.push((name, ty, line));
    }
    fields
}

fn skip_attrs(trees: &[Tree], i: &mut usize) {
    while trees.get(*i).is_some_and(|t| t.is_punct('#')) {
        let mut j = *i + 1;
        if trees.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if trees.get(j).and_then(|t| t.group_with('[')).is_some() {
            *i = j + 1;
        } else {
            break;
        }
    }
}

fn parse_vis(trees: &[Tree], i: &mut usize) -> Vis {
    if trees.get(*i).and_then(Tree::ident) != Some("pub") {
        return Vis::Private;
    }
    *i += 1;
    if trees.get(*i).and_then(|t| t.group_with('(')).is_some() {
        *i += 1;
        return Vis::Restricted;
    }
    Vis::Pub
}

/// Skip `<...>` generics starting at `*i`, `->`-aware (for `Fn() -> T`
/// bounds inside the angle brackets).
fn skip_generics(trees: &[Tree], i: &mut usize) {
    if !trees.get(*i).is_some_and(|t| t.is_punct('<')) {
        return;
    }
    let mut depth = 0i32;
    while *i < trees.len() {
        let t = &trees[*i];
        if t.is_punct('-') && trees.get(*i + 1).is_some_and(|t| t.is_punct('>')) {
            *i += 2; // `->` inside bounds: not a closer
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                *i += 1;
                return;
            }
        }
        *i += 1;
    }
}

fn skip_to_semi(trees: &[Tree], i: &mut usize) {
    while *i < trees.len() && !trees[*i].is_punct(';') {
        *i += 1;
    }
    if *i < trees.len() {
        *i += 1;
    }
}

fn flatten_into(tree: &Tree, out: &mut Vec<String>) {
    match tree {
        Tree::Leaf(t) => match &t.kind {
            TokKind::Ident(s) => out.push(s.clone()),
            TokKind::Punct(c) => out.push(c.to_string()),
            TokKind::Lit => out.push("<lit>".to_string()),
            _ => {}
        },
        Tree::Group(g) => {
            out.push(g.delim.to_string());
            for t in &g.trees {
                flatten_into(t, out);
            }
            out.push(close_of(g.delim).to_string());
        }
    }
}

// ---------------------------------------------------------- statements

fn parse_block(group: &Group) -> Block {
    Block {
        stmts: parse_stmts(&group.trees),
    }
}

fn parse_stmts(trees: &[Tree]) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        let before = i;
        skip_attrs(trees, &mut i);
        if trees.get(i).is_some_and(|t| t.is_punct(';')) {
            i += 1;
            continue;
        }
        match trees.get(i).and_then(Tree::ident) {
            Some("let") => {
                i += 1;
                stmts.push(parse_let(trees, &mut i));
            }
            Some(kw)
                if ITEM_KEYWORDS.contains(&kw)
                    && kw != "union"
                    // `impl Trait` in expr position doesn't occur in
                    // statements; `match`/`if` are not item keywords.
                    =>
            {
                if let Some(item) = parse_item(trees, &mut i) {
                    stmts.push(Stmt::Item(item));
                }
            }
            Some("pub") => {
                if let Some(item) = parse_item(trees, &mut i) {
                    stmts.push(Stmt::Item(item));
                }
            }
            _ => {
                let e = parse_expr(trees, &mut i, true);
                stmts.push(Stmt::Expr(e));
                if trees.get(i).is_some_and(|t| t.is_punct(';')) {
                    i += 1;
                }
            }
        }
        if i == before {
            i += 1; // resync
        }
    }
    stmts
}

fn parse_let(trees: &[Tree], i: &mut usize) -> Stmt {
    let line = trees.get(*i).map_or(0, Tree::line);
    // Pattern (and optional type ascription) up to top-level `=`,
    // skipping `==`/`=>`/`<=`/`>=`/`..=` composites.
    let pat_start = *i;
    let mut angle = 0i32;
    while *i < trees.len() {
        let t = &trees[*i];
        if t.is_punct(';') {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        }
        if t.is_punct('=') && angle <= 0 {
            let prev_composite = *i > pat_start
                && matches!(
                    &trees[*i - 1],
                    Tree::Leaf(p) if p.is_punct('<') || p.is_punct('>') || p.is_punct('!') || p.is_punct('.') || p.is_punct('=')
                );
            let next_composite = trees
                .get(*i + 1)
                .is_some_and(|t| t.is_punct('=') || t.is_punct('>'));
            if !prev_composite && !next_composite {
                break;
            }
        }
        *i += 1;
    }
    let pat_trees = &trees[pat_start..*i];
    // Split off a `: Type` ascription at top level (not `::`).
    let mut pat_end = pat_trees.len();
    let mut depth = 0i32;
    for (j, t) in pat_trees.iter().enumerate() {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(':') && depth == 0 {
            let double = pat_trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
                || (j > 0 && pat_trees[j - 1].is_punct(':'));
            if !double {
                pat_end = j;
                break;
            }
        }
    }
    let pats = extract_bindings(&pat_trees[..pat_end]);
    let mut init = None;
    let mut else_block = None;
    if trees.get(*i).is_some_and(|t| t.is_punct('=')) {
        *i += 1;
        init = Some(parse_expr(trees, i, true));
        if trees.get(*i).and_then(Tree::ident) == Some("else") {
            *i += 1;
            if let Some(g) = trees.get(*i).and_then(|t| t.group_with('{')) {
                else_block = Some(parse_block(g));
                *i += 1;
            }
        }
    }
    if trees.get(*i).is_some_and(|t| t.is_punct(';')) {
        *i += 1;
    }
    Stmt::Let {
        pats,
        init,
        else_block,
        line,
    }
}

const PAT_KEYWORDS: &[&str] = &["mut", "ref", "box", "_", "move", "if", "in"];

/// Binding names in a pattern: lowercase/underscore-leading idents that
/// are not keywords and not path segments (`a::b`). Uppercase idents
/// are types/variants. Over-approximates struct-pattern shorthand.
pub fn extract_bindings(trees: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    collect_bindings(trees, &mut out);
    out
}

fn collect_bindings(trees: &[Tree], out: &mut Vec<String>) {
    for (j, t) in trees.iter().enumerate() {
        match t {
            Tree::Group(g) => collect_bindings(&g.trees, out),
            Tree::Leaf(tok) => {
                let Some(id) = tok.ident() else { continue };
                if PAT_KEYWORDS.contains(&id) || id == "self" {
                    continue;
                }
                if !id.starts_with(|c: char| c.is_lowercase() || c == '_') {
                    continue;
                }
                // Path segment: `seg::...` or `...::seg`.
                let next_colons = trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && trees.get(j + 2).is_some_and(|t| t.is_punct(':'));
                let prev_colons =
                    j >= 2 && trees[j - 1].is_punct(':') && trees[j - 2].is_punct(':');
                if next_colons || prev_colons {
                    continue;
                }
                // `field: subpat` struct-pattern key with a renamed
                // binding: the key is not a binding.
                let renames = trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && !trees.get(j + 2).is_some_and(|t| t.is_punct(':'));
                if renames {
                    continue;
                }
                if !out.contains(&id.to_string()) {
                    out.push(id.to_string());
                }
            }
        }
    }
}

// --------------------------------------------------------- expressions

/// Parse one expression starting at `*i`. Stops (without consuming) at
/// top-level `;`, `,`, or `=>`. When `allow_struct` is false, a brace
/// group terminates the expression (if/match/for headers).
fn parse_expr(trees: &[Tree], i: &mut usize, allow_struct: bool) -> Expr {
    let mut e = parse_prefix(trees, i, allow_struct);
    while let Some(t) = trees.get(*i) {
        // Postfix.
        if t.is_punct('.') {
            *i += 1;
            let line = trees.get(*i).map_or(0, Tree::line);
            match trees.get(*i) {
                Some(Tree::Leaf(tok)) => match &tok.kind {
                    TokKind::Ident(name) => {
                        let name = name.clone();
                        *i += 1;
                        // Turbofish: `.collect::<Vec<_>>()`.
                        if trees.get(*i).is_some_and(|t| t.is_punct(':'))
                            && trees.get(*i + 1).is_some_and(|t| t.is_punct(':'))
                        {
                            *i += 2;
                            skip_generics(trees, i);
                        }
                        if let Some(g) = trees.get(*i).and_then(|t| t.group_with('(')) {
                            let args = parse_comma_exprs(&g.trees);
                            *i += 1;
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: name,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                    }
                    TokKind::Lit => {
                        // Tuple index `.0`.
                        *i += 1;
                        e = Expr::Field {
                            base: Box::new(e),
                            name: "0".to_string(),
                            line,
                        };
                    }
                    _ => {
                        // `..` range — treat the rest as a fresh expr.
                        *i += 1;
                        let rhs = parse_expr(trees, i, allow_struct);
                        e = Expr::Binary {
                            lhs: Box::new(e),
                            rhs: Box::new(rhs),
                        };
                    }
                },
                _ => break,
            }
            continue;
        }
        if let Some(g) = t.group_with('(') {
            let args = parse_comma_exprs(&g.trees);
            let line = g.line;
            *i += 1;
            e = Expr::Call {
                callee: Box::new(e),
                args,
                line,
            };
            continue;
        }
        if let Some(g) = t.group_with('[') {
            let line = g.line;
            let mut j = 0usize;
            let idx = parse_expr(&g.trees, &mut j, true);
            *i += 1;
            e = Expr::Index {
                base: Box::new(e),
                index: Box::new(idx),
                line,
            };
            continue;
        }
        if t.is_punct('?') {
            let line = t.line();
            *i += 1;
            e = Expr::Try(Box::new(e), line);
            continue;
        }
        if t.ident() == Some("as") {
            let line = t.line();
            *i += 1;
            let ty = parse_cast_type(trees, i);
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
                line,
            };
            continue;
        }
        // Statement/argument boundary.
        if t.is_punct(';') || t.is_punct(',') {
            break;
        }
        if t.is_punct('=') && trees.get(*i + 1).is_some_and(|t| t.is_punct('>')) {
            break; // `=>` belongs to a match arm
        }
        // Assignment (plain `=`, not `==`).
        if t.is_punct('=') && !trees.get(*i + 1).is_some_and(|t| t.is_punct('=')) {
            let line = t.line();
            *i += 1;
            let rhs = parse_expr(trees, i, allow_struct);
            e = Expr::Assign {
                lhs: Box::new(e),
                rhs: Box::new(rhs),
                line,
            };
            continue;
        }
        // Binary operators (incl. compound assignment and ranges) —
        // fold right, precedence-free.
        if matches!(t, Tree::Leaf(tok) if matches!(tok.kind, TokKind::Punct(c) if "+-*/%&|^<>!=.".contains(c)))
        {
            // Consume the operator run (`==`, `<<=`, `..=`, ...).
            while trees.get(*i).is_some_and(|t| {
                matches!(t, Tree::Leaf(tok) if matches!(tok.kind, TokKind::Punct(c) if "+-*/%&|^<>=.".contains(c)))
            }) {
                *i += 1;
            }
            // A brace after a range end in a `for`/`if` header: stop.
            if !allow_struct && trees.get(*i).is_some_and(|t| t.group_with('{').is_some()) {
                break;
            }
            if *i >= trees.len() || trees[*i].is_punct(';') || trees[*i].is_punct(',') {
                break; // trailing `..` in struct update / open range
            }
            let rhs = parse_expr(trees, i, allow_struct);
            e = Expr::Binary {
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
            continue;
        }
        break;
    }
    e
}

fn parse_prefix(trees: &[Tree], i: &mut usize, allow_struct: bool) -> Expr {
    let Some(t) = trees.get(*i) else {
        return Expr::Unknown(0);
    };
    let line = t.line();
    // Prefix operators.
    if t.is_punct('&') || t.is_punct('*') || t.is_punct('!') || t.is_punct('-') {
        *i += 1;
        while matches!(trees.get(*i).and_then(Tree::ident), Some("mut")) {
            *i += 1;
        }
        return Expr::Un(Box::new(parse_prefix_chain(trees, i, allow_struct)));
    }
    if let Some(kw) = t.ident() {
        match kw {
            "if" => {
                *i += 1;
                return parse_if(trees, i, line);
            }
            "while" => {
                *i += 1;
                let (cond, pats) = parse_cond(trees, i);
                let body = parse_brace_block(trees, i);
                return Expr::While {
                    cond: Box::new(cond),
                    pats,
                    body,
                };
            }
            "loop" => {
                *i += 1;
                return Expr::Loop(parse_brace_block(trees, i));
            }
            "for" => {
                *i += 1;
                let start = *i;
                while *i < trees.len() && trees[*i].ident() != Some("in") {
                    *i += 1;
                }
                let pats = extract_bindings(&trees[start..*i]);
                *i += 1; // `in`
                let iter = parse_expr(trees, i, false);
                let body = parse_brace_block(trees, i);
                return Expr::For {
                    pats,
                    iter: Box::new(iter),
                    body,
                };
            }
            "match" => {
                *i += 1;
                let scrutinee = parse_expr(trees, i, false);
                let arms = match trees.get(*i) {
                    Some(Tree::Group(g)) if g.delim == '{' => {
                        *i += 1;
                        parse_arms(&g.trees)
                    }
                    _ => Vec::new(),
                };
                return Expr::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                    line,
                };
            }
            "return" => {
                *i += 1;
                let value = if expr_follows(trees, *i) {
                    Some(Box::new(parse_expr(trees, i, allow_struct)))
                } else {
                    None
                };
                return Expr::Return(value, line);
            }
            "break" => {
                *i += 1;
                // Skip a loop label.
                if matches!(trees.get(*i), Some(Tree::Leaf(t)) if t.kind == TokKind::Lit) {
                    *i += 1;
                }
                let value = if expr_follows(trees, *i) {
                    Some(Box::new(parse_expr(trees, i, allow_struct)))
                } else {
                    None
                };
                return Expr::Break(value);
            }
            "continue" => {
                *i += 1;
                if matches!(trees.get(*i), Some(Tree::Leaf(t)) if t.kind == TokKind::Lit) {
                    *i += 1;
                }
                return Expr::Break(None);
            }
            "move" => {
                *i += 1;
                return parse_prefix(trees, i, allow_struct); // closure follows
            }
            "unsafe" => {
                *i += 1;
                return Expr::Block(parse_brace_block(trees, i));
            }
            _ => {
                return parse_path_expr(trees, i, allow_struct);
            }
        }
    }
    // Closures: `|args| body` or `||`.
    if t.is_punct('|') {
        *i += 1;
        let start = *i;
        if trees.get(*i).is_some_and(|t| t.is_punct('|')) {
            *i += 1; // `||` empty params
        } else {
            while *i < trees.len() && !trees[*i].is_punct('|') {
                *i += 1;
            }
            *i += 1; // closing `|`
        }
        let params = extract_bindings(&trees[start..(*i).saturating_sub(1).max(start)]);
        // Optional `-> Type`.
        if trees.get(*i).is_some_and(|t| t.is_punct('-'))
            && trees.get(*i + 1).is_some_and(|t| t.is_punct('>'))
        {
            *i += 2;
            while *i < trees.len() && trees[*i].group_with('{').is_none() {
                *i += 1;
            }
        }
        let body = parse_expr(trees, i, allow_struct);
        return Expr::Closure {
            params,
            body: Box::new(body),
            line,
        };
    }
    match t {
        Tree::Leaf(tok) if tok.kind == TokKind::Lit => {
            *i += 1;
            Expr::Lit(line)
        }
        Tree::Group(g) if g.delim == '(' => {
            let exprs = parse_comma_exprs(&g.trees);
            *i += 1;
            match exprs.len() {
                1 => exprs.into_iter().next().unwrap_or(Expr::Unknown(line)),
                _ => Expr::Tuple(exprs, line),
            }
        }
        Tree::Group(g) if g.delim == '[' => {
            let exprs = parse_comma_exprs(&g.trees);
            *i += 1;
            Expr::Tuple(exprs, line)
        }
        Tree::Group(g) if g.delim == '{' => {
            let b = parse_block(g);
            *i += 1;
            Expr::Block(b)
        }
        _ => {
            *i += 1;
            Expr::Unknown(line)
        }
    }
}

/// Prefix with postfix applied, for unary operands (`&x.lock()` must
/// wrap the whole method chain, not just `x`).
fn parse_prefix_chain(trees: &[Tree], i: &mut usize, allow_struct: bool) -> Expr {
    let mut e = parse_prefix(trees, i, allow_struct);
    while let Some(t) = trees.get(*i) {
        if t.is_punct('.')
            || t.group_with('(').is_some()
            || t.group_with('[').is_some()
            || t.is_punct('?')
        {
            // Re-enter the postfix loop via parse_expr's machinery:
            // simplest is to handle `.`/calls here identically.
            let save = *i;
            let post = parse_expr_postfix_once(trees, i, e);
            match post {
                Ok(next) => {
                    e = next;
                    continue;
                }
                Err(orig) => {
                    *i = save;
                    e = orig;
                    break;
                }
            }
        }
        break;
    }
    e
}

/// Apply exactly one postfix step; returns Err(original) if none applies.
fn parse_expr_postfix_once(trees: &[Tree], i: &mut usize, e: Expr) -> Result<Expr, Expr> {
    let Some(t) = trees.get(*i) else {
        return Err(e);
    };
    if t.is_punct('.') {
        *i += 1;
        let line = trees.get(*i).map_or(0, Tree::line);
        if let Some(Tree::Leaf(tok)) = trees.get(*i) {
            if let TokKind::Ident(name) = &tok.kind {
                let name = name.clone();
                *i += 1;
                if trees.get(*i).is_some_and(|t| t.is_punct(':'))
                    && trees.get(*i + 1).is_some_and(|t| t.is_punct(':'))
                {
                    *i += 2;
                    skip_generics(trees, i);
                }
                if let Some(g) = trees.get(*i).and_then(|t| t.group_with('(')) {
                    let args = parse_comma_exprs(&g.trees);
                    *i += 1;
                    return Ok(Expr::MethodCall {
                        recv: Box::new(e),
                        method: name,
                        args,
                        line,
                    });
                }
                return Ok(Expr::Field {
                    base: Box::new(e),
                    name,
                    line,
                });
            }
            if tok.kind == TokKind::Lit {
                *i += 1;
                return Ok(Expr::Field {
                    base: Box::new(e),
                    name: "0".to_string(),
                    line,
                });
            }
        }
        return Err(e);
    }
    if let Some(g) = t.group_with('(') {
        let args = parse_comma_exprs(&g.trees);
        let line = g.line;
        *i += 1;
        return Ok(Expr::Call {
            callee: Box::new(e),
            args,
            line,
        });
    }
    if let Some(g) = t.group_with('[') {
        let line = g.line;
        let mut j = 0usize;
        let idx = parse_expr(&g.trees, &mut j, true);
        *i += 1;
        return Ok(Expr::Index {
            base: Box::new(e),
            index: Box::new(idx),
            line,
        });
    }
    if t.is_punct('?') {
        let line = t.line();
        *i += 1;
        return Ok(Expr::Try(Box::new(e), line));
    }
    Err(e)
}

fn expr_follows(trees: &[Tree], i: usize) -> bool {
    match trees.get(i) {
        None => false,
        Some(t) => !(t.is_punct(';') || t.is_punct(',')),
    }
}

fn parse_if(trees: &[Tree], i: &mut usize, line: u32) -> Expr {
    let (cond, pats) = parse_cond(trees, i);
    let then = parse_brace_block(trees, i);
    let mut els = None;
    if trees.get(*i).and_then(Tree::ident) == Some("else") {
        *i += 1;
        if trees.get(*i).and_then(Tree::ident) == Some("if") {
            let line2 = trees[*i].line();
            *i += 1;
            els = Some(Box::new(parse_if(trees, i, line2)));
        } else {
            els = Some(Box::new(Expr::Block(parse_brace_block(trees, i))));
        }
    }
    Expr::If {
        cond: Box::new(cond),
        pats,
        then,
        els,
        line,
    }
}

/// Condition of `if`/`while`, handling `let PAT = scrutinee` forms.
/// Returns the scrutinee/condition expression and any pattern bindings.
fn parse_cond(trees: &[Tree], i: &mut usize) -> (Expr, Vec<String>) {
    if trees.get(*i).and_then(Tree::ident) == Some("let") {
        *i += 1;
        let start = *i;
        // Pattern up to top-level `=`.
        while *i < trees.len() {
            let t = &trees[*i];
            if t.is_punct('=')
                && !trees
                    .get(*i + 1)
                    .is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
                && !(*i > start
                    && matches!(&trees[*i - 1], Tree::Leaf(p) if p.is_punct('=') || p.is_punct('<') || p.is_punct('>') || p.is_punct('!') || p.is_punct('.')))
            {
                break;
            }
            *i += 1;
        }
        let pats = extract_bindings(&trees[start..*i]);
        *i += 1; // `=`
        let scrutinee = parse_expr(trees, i, false);
        return (scrutinee, pats);
    }
    (parse_expr(trees, i, false), Vec::new())
}

fn parse_brace_block(trees: &[Tree], i: &mut usize) -> Block {
    match trees.get(*i) {
        Some(Tree::Group(g)) if g.delim == '{' => {
            let b = parse_block(g);
            *i += 1;
            b
        }
        _ => Block::default(),
    }
}

fn parse_comma_exprs(trees: &[Tree]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        let before = i;
        let e = parse_expr(trees, &mut i, true);
        out.push(e);
        if trees.get(i).is_some_and(|t| t.is_punct(',')) {
            i += 1;
        }
        if i == before {
            i += 1; // resync
        }
    }
    out
}

fn parse_arms(trees: &[Tree]) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        skip_attrs(trees, &mut i);
        // Pattern (and optional `if` guard) up to `=>`.
        let start = i;
        while i < trees.len() {
            if trees[i].is_punct('=') && trees.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                break;
            }
            i += 1;
        }
        if i >= trees.len() {
            break;
        }
        let pats = extract_bindings(&trees[start..i]);
        i += 2; // `=>`
        let body = parse_expr(trees, &mut i, true);
        arms.push(Arm { pats, body });
        if trees.get(i).is_some_and(|t| t.is_punct(',')) {
            i += 1;
        }
    }
    arms
}

fn parse_path_expr(trees: &[Tree], i: &mut usize, allow_struct: bool) -> Expr {
    let line = trees.get(*i).map_or(0, Tree::line);
    let mut segs = Vec::new();
    while let Some(id) = trees.get(*i).and_then(Tree::ident) {
        segs.push(id.to_string());
        *i += 1;
        if trees.get(*i).is_some_and(|t| t.is_punct(':'))
            && trees.get(*i + 1).is_some_and(|t| t.is_punct(':'))
        {
            *i += 2;
            // Turbofish in path position: `Vec::<u8>::new`.
            if trees.get(*i).is_some_and(|t| t.is_punct('<')) {
                skip_generics(trees, i);
                if !(trees.get(*i).is_some_and(|t| t.is_punct(':'))
                    && trees.get(*i + 1).is_some_and(|t| t.is_punct(':')))
                {
                    break;
                }
                *i += 2;
            }
            continue;
        }
        break;
    }
    // Macro invocation: `name!(...)` / `name![...]` / `name!{...}`.
    if trees.get(*i).is_some_and(|t| t.is_punct('!')) {
        if let Some(g) = trees.get(*i + 1).and_then(Tree::group) {
            let name = segs.last().cloned().unwrap_or_default();
            let args = parse_comma_exprs(&g.trees);
            *i += 2;
            return Expr::Macro { name, args, line };
        }
    }
    // Struct literal: `Path { field: expr, .. }`.
    if allow_struct {
        if let Some(g) = trees.get(*i).and_then(|t| t.group_with('{')) {
            let starts_upper = segs
                .last()
                .and_then(|s| s.chars().next())
                .is_some_and(char::is_uppercase);
            if starts_upper {
                let fields = parse_struct_lit_fields(&g.trees);
                *i += 1;
                return Expr::StructLit {
                    path: segs,
                    fields,
                    line,
                };
            }
        }
    }
    if segs.is_empty() {
        *i += 1;
        return Expr::Unknown(line);
    }
    Expr::Path(segs, line)
}

fn parse_struct_lit_fields(trees: &[Tree]) -> Vec<(String, Expr)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        let before = i;
        skip_attrs(trees, &mut i);
        // `..base` functional update.
        if trees.get(i).is_some_and(|t| t.is_punct('.')) {
            while i < trees.len() && !trees[i].is_punct(',') {
                i += 1;
            }
            i += 1;
            continue;
        }
        let Some(name) = trees.get(i).and_then(Tree::ident) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        i += 1;
        let value = if trees.get(i).is_some_and(|t| t.is_punct(':')) {
            i += 1;
            parse_expr(trees, &mut i, true)
        } else {
            // Shorthand `Foo { x }`.
            Expr::Path(vec![name.clone()], 0)
        };
        out.push((name, value));
        if trees.get(i).is_some_and(|t| t.is_punct(',')) {
            i += 1;
        }
        if i == before {
            i += 1;
        }
    }
    out
}

fn parse_cast_type(trees: &[Tree], i: &mut usize) -> String {
    // Leading `&`/`*`/`mut`/`const`/`dyn`.
    while trees.get(*i).is_some_and(|t| {
        t.is_punct('&') || t.is_punct('*') || matches!(t.ident(), Some("mut" | "const" | "dyn"))
    }) {
        *i += 1;
    }
    let mut head = String::new();
    while let Some(id) = trees.get(*i).and_then(Tree::ident) {
        head = id.to_string();
        *i += 1;
        if trees.get(*i).is_some_and(|t| t.is_punct(':'))
            && trees.get(*i + 1).is_some_and(|t| t.is_punct(':'))
        {
            *i += 2;
            continue;
        }
        break;
    }
    if trees.get(*i).is_some_and(|t| t.is_punct('<')) {
        skip_generics(trees, i);
    }
    head
}

// ------------------------------------------------------------- walking

/// Pre-order walk over every expression in a block, including
/// closure bodies, match arms, nested blocks, and nested items' fns.
pub fn walk_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block(b, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(item) => walk_item(item, f),
        }
    }
}

pub fn walk_item(item: &Item, f: &mut impl FnMut(&Expr)) {
    match item {
        Item::Fn(func) => {
            if let Some(b) = &func.body {
                walk_block(b, f);
            }
        }
        Item::Impl { items, .. } | Item::Mod { items, .. } | Item::Trait { items, .. } => {
            for it in items {
                walk_item(it, f);
            }
        }
        _ => {}
    }
}

pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Un(inner) | Expr::Try(inner, _) => walk_expr(inner, f),
        Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::Block(b) | Expr::Loop(b) => walk_block(b, f),
        Expr::If {
            cond, then, els, ..
        } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                walk_expr(&arm.body, f);
            }
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for (_, v) in fields {
                walk_expr(v, f);
            }
        }
        Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Binary { lhs, rhs } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Return(Some(v), _) | Expr::Break(Some(v)) => walk_expr(v, f),
        Expr::Tuple(exprs, _) => {
            for e in exprs {
                walk_expr(e, f);
            }
        }
        Expr::Path(..)
        | Expr::Lit(_)
        | Expr::Return(None, _)
        | Expr::Break(None)
        | Expr::Unknown(_) => {}
    }
}

/// Every function in a file, with its impl-type context (`None` for
/// free functions). Recurses into mods, impls, and traits.
pub fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<(Option<&'a str>, &'a FnItem)>) {
    for item in items {
        match item {
            Item::Fn(f) => out.push((None, f)),
            Item::Impl { type_name, items } => {
                for it in items {
                    if let Item::Fn(f) = it {
                        out.push((Some(type_name.as_str()), f));
                    } else {
                        collect_fns(std::slice::from_ref(it), out);
                    }
                }
            }
            Item::Mod { items, .. } | Item::Trait { items, .. } => collect_fns(items, out),
            _ => {}
        }
    }
}

/// Every struct in a file, recursing into mods.
pub fn collect_structs<'a>(items: &'a [Item], out: &mut Vec<&'a StructItem>) {
    for item in items {
        match item {
            Item::Struct(s) => out.push(s),
            Item::Mod { items, .. } => collect_structs(items, out),
            _ => {}
        }
    }
}

/// Every type alias in a file, recursing into mods and impls.
pub fn collect_aliases<'a>(items: &'a [Item], out: &mut Vec<(&'a str, &'a [String])>) {
    for item in items {
        match item {
            Item::TypeAlias { name, ty, .. } => out.push((name.as_str(), ty.as_slice())),
            Item::Mod { items, .. } | Item::Impl { items, .. } | Item::Trait { items, .. } => {
                collect_aliases(items, out)
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::indexing_slicing,
        clippy::panic
    )]

    use super::*;

    fn parse(src: &str) -> FileAst {
        parse_file(src).unwrap()
    }

    fn first_fn(ast: &FileAst) -> &FnItem {
        let mut fns = Vec::new();
        collect_fns(&ast.items, &mut fns);
        fns[0].1
    }

    #[test]
    fn parses_fn_signature_and_method() {
        let ast = parse("impl Foo { pub fn read_x(&self, n: usize) -> Result<u64, E> { Ok(0) } }");
        let mut fns = Vec::new();
        collect_fns(&ast.items, &mut fns);
        let (ctx, f) = fns[0];
        assert_eq!(ctx, Some("Foo"));
        assert_eq!(f.name, "read_x");
        assert!(f.is_method);
        assert_eq!(f.vis, Vis::Pub);
        assert_eq!(f.ret.first().map(String::as_str), Some("Result"));
    }

    #[test]
    fn method_chain_and_call_shapes() {
        let ast = parse("fn f() { let g = self.map.read(); x.do_it(a, b); File::open(p); }");
        let f = first_fn(&ast);
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 3);
        match &body.stmts[0] {
            Stmt::Let {
                pats,
                init: Some(Expr::MethodCall { method, recv, .. }),
                ..
            } => {
                assert_eq!(pats, &["g"]);
                assert_eq!(method, "read");
                assert!(matches!(&**recv, Expr::Field { name, .. } if name == "map"));
            }
            other => panic!("{other:?}"),
        }
        match &body.stmts[2] {
            Stmt::Expr(Expr::Call { callee, .. }) => {
                assert!(matches!(&**callee, Expr::Path(segs, _) if segs == &["File", "open"]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_let_and_match_bindings() {
        let ast = parse(
            "fn f() { if let Some(x) = find() { use_it(x); } match v { Ok(y) => y.go(), Err(e) => handle(e), } }",
        );
        let f = first_fn(&ast);
        let body = f.body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Expr(Expr::If { pats, .. }) => assert_eq!(pats, &["x"]),
            other => panic!("{other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Expr(Expr::Match { arms, .. }) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].pats, vec!["y"]);
                assert_eq!(arms[1].pats, vec!["e"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn closures_and_macros_are_walked() {
        let ast =
            parse("fn f() { pool.run(|| item.unwrap()); println!(\"{}\", x.expect(\"e\")); }");
        let f = first_fn(&ast);
        let mut methods = Vec::new();
        walk_block(f.body.as_ref().unwrap(), &mut |e| {
            if let Expr::MethodCall { method, .. } = e {
                methods.push(method.clone());
            }
        });
        assert!(methods.contains(&"unwrap".to_string()));
        assert!(methods.contains(&"expect".to_string()));
    }

    #[test]
    fn casts_and_indexing() {
        let ast = parse("fn f(b: &[u8]) -> u8 { let x = b[0]; let y = n as u32; x }");
        let f = first_fn(&ast);
        let mut saw_index = false;
        let mut cast_ty = String::new();
        walk_block(f.body.as_ref().unwrap(), &mut |e| match e {
            Expr::Index { .. } => saw_index = true,
            Expr::Cast { ty, .. } => cast_ty = ty.clone(),
            _ => {}
        });
        assert!(saw_index);
        assert_eq!(cast_ty, "u32");
    }

    #[test]
    fn type_alias_and_struct_fields() {
        let ast = parse(
            "pub type DecodeResult = Result<Vec<Point>, Corrupt>;\npub struct IoStats { pub chunks_loaded: AtomicU64, pub latency: [AtomicU64; 4] }",
        );
        let mut aliases = Vec::new();
        collect_aliases(&ast.items, &mut aliases);
        assert_eq!(aliases.len(), 1);
        assert_eq!(aliases[0].0, "DecodeResult");
        assert_eq!(aliases[0].1.first().map(String::as_str), Some("Result"));
        let mut structs = Vec::new();
        collect_structs(&ast.items, &mut structs);
        assert_eq!(structs[0].fields.len(), 2);
        assert!(structs[0].fields[1].1.contains(&"[".to_string()));
    }

    #[test]
    fn test_code_is_stripped_before_parse() {
        let ast = parse("#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }\nfn keep() {}");
        let mut fns = Vec::new();
        collect_fns(&ast.items, &mut fns);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].1.name, "keep");
    }

    #[test]
    fn imbalance_is_an_error() {
        assert!(parse_file("fn f() { let x = (1; }").is_err());
    }

    #[test]
    fn shadowing_let_statements_parse_in_order() {
        let ast = parse("fn f() { let g = a.lock(); let g = other(); g.use_it(); }");
        let f = first_fn(&ast);
        let lets = f
            .body
            .as_ref()
            .unwrap()
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Let { .. }))
            .count();
        assert_eq!(lets, 2);
    }
}
