//! Shared finding types: rules, violations, fingerprints, and the
//! machine-readable JSON report emitted by `xtask lint --json`.
//!
//! Fingerprints are stable across unrelated edits: they hash the rule,
//! the path and the *normalized* message (digit runs collapsed, so a
//! guard moving from line 41 to line 43 keeps its identity). The
//! allowlist keys on the same normalization, which is what makes its
//! entries robust to drift on the offending line.

/// Which rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Panic-freedom: no unwrap/expect/panic-family macros, no
    /// indexing in byte-parsing modules, and no panicking std function
    /// reached through a local alias or UFCS path.
    L1,
    /// Lock discipline: no lock/RefCell guard (however obtained —
    /// helper-returned, field-stored, rebound) held across file I/O or
    /// chunk decode.
    L2,
    /// Fallibility: public read/decode entry points return
    /// `Result`/`Option`, resolved through type aliases.
    L3,
    /// Cast audit: no bare `as` numeric conversions in codec layers.
    L4,
    /// Blocking-call ban: designated server-loop functions must not
    /// reach blocking I/O or unbounded waits outside worker contexts.
    L5,
    /// Counter discipline: every declared stats counter is incremented
    /// on a non-test path and surfaced through the wire encoding.
    L6,
    /// Allowlist hygiene: stale or malformed allowlist entries.
    Allowlist,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::Allowlist => "ALLOWLIST",
        }
    }

    pub fn from_code(code: &str) -> Option<Rule> {
        Some(match code {
            "L1" => Rule::L1,
            "L2" => Rule::L2,
            "L3" => Rule::L3,
            "L4" => Rule::L4,
            "L5" => Rule::L5,
            "L6" => Rule::L6,
            "ALLOWLIST" => Rule::Allowlist,
            _ => return None,
        })
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Path relative to the workspace root, forward slashes.
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Trimmed text of the offending source line (display only; the
    /// allowlist matches on the normalized message, not on this).
    pub excerpt: String,
}

impl Violation {
    /// The message with every digit run collapsed to `#`: stable under
    /// line-number drift inside messages ("guard from line 41").
    pub fn normalized_message(&self) -> String {
        normalize(&self.message)
    }

    /// Stable identity of this finding: `rule:path:hash(normalized
    /// message)`. Survives unrelated edits that move the site by a few
    /// lines; changes when the finding itself changes.
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv::new();
        h.write(self.rule.code().as_bytes());
        h.write(b"\x1f");
        h.write(self.path.as_bytes());
        h.write(b"\x1f");
        h.write(self.normalized_message().as_bytes());
        format!(
            "{}-{:016x}",
            self.rule.code().to_ascii_lowercase(),
            h.finish()
        )
    }
}

/// Collapse every run of ASCII digits to a single `#` and squeeze
/// whitespace, so messages differing only in embedded line numbers or
/// counts normalize identically.
pub fn normalize(msg: &str) -> String {
    let mut out = String::with_capacity(msg.len());
    let mut in_digits = false;
    let mut in_space = false;
    for c in msg.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
            in_space = false;
        } else if c.is_whitespace() {
            in_digits = false;
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            in_digits = false;
            in_space = false;
            out.push(c);
        }
    }
    out.trim().to_string()
}

/// 64-bit FNV-1a, enough for stable fingerprints without a dependency.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Summary of one lint run, serialized by [`render_json`].
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Files analyzed with the full AST engine.
    pub files_analyzed: usize,
    /// Files that failed to parse and fell back to the lexical engine.
    pub fallback_files: Vec<String>,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Render the report as deterministic JSON (keys in fixed order, no
/// dependency on a serializer crate).
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(v.rule.code())));
        out.push_str(&format!("\"path\": {}, ", json_str(&v.path)));
        out.push_str(&format!("\"line\": {}, ", v.line));
        out.push_str(&format!("\"message\": {}, ", json_str(&v.message)));
        out.push_str(&format!("\"fingerprint\": {}", json_str(&v.fingerprint())));
        out.push('}');
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"violation_count\": {},\n",
        report.violations.len()
    ));
    out.push_str(&format!(
        "  \"files_analyzed\": {},\n",
        report.files_analyzed
    ));
    out.push_str("  \"fallback_files\": [");
    for (i, f) in report.fallback_files.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(f));
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"clean\": {}\n",
        if report.clean() { "true" } else { "false" }
    ));
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    fn v(rule: Rule, path: &str, line: u32, message: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            message: message.to_string(),
            excerpt: String::new(),
        }
    }

    #[test]
    fn normalization_collapses_digits_and_whitespace() {
        assert_eq!(
            normalize("guard from line 41  held across\tI/O"),
            "guard from line # held across I/O"
        );
        assert_eq!(
            normalize("wire has 19 u64s, struct has 20"),
            normalize("wire has 3 u64s, struct has 4")
        );
    }

    #[test]
    fn fingerprint_stable_under_line_drift() {
        let a = v(
            Rule::L2,
            "crates/tskv/src/engine.rs",
            41,
            "guard from line 41 held",
        );
        let b = v(
            Rule::L2,
            "crates/tskv/src/engine.rs",
            97,
            "guard from line 97 held",
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = v(
            Rule::L1,
            "crates/tskv/src/engine.rs",
            41,
            "guard from line 41 held",
        );
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let report = LintReport {
            violations: vec![v(Rule::L1, "a \"b\".rs", 3, "msg\nline")],
            files_analyzed: 7,
            fallback_files: vec!["weird.rs".to_string()],
        };
        let json = render_json(&report);
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"violation_count\": 1"));
        assert!(json.contains("\"files_analyzed\": 7"));
        assert!(json.contains("\"clean\": false"));
    }
}
