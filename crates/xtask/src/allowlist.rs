//! Parser for `xtask-lint-allowlist.toml` at the workspace root.
//!
//! The file is a sequence of `[[allow]]` tables with four required
//! string keys: `rule`, `path`, `message`, `justification`. Parsed by
//! hand (this workspace builds offline; no toml crate), accepting only
//! that restricted shape.
//!
//! Matching is keyed on the *normalized violation message* — the
//! message with digit runs collapsed, exactly as
//! [`crate::report::Violation::normalized_message`] computes it — not
//! on a substring of the source line. Substring matching proved too
//! wide (one short `contains` could silence every future violation on
//! the file); message-keyed entries suppress exactly one finding shape
//! and go stale the moment the finding changes. Every entry must be
//! *used* by a current violation — stale entries are themselves lint
//! errors — and the whole file is capped below [`MAX_ENTRIES`] entries
//! so the list stays a short, audited document rather than a dumping
//! ground.

use crate::report::{normalize, Rule, Violation};

/// Hard cap (exclusive) on allowlist size.
pub const MAX_ENTRIES: usize = 10;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    /// Path suffix, forward slashes, relative to the workspace root.
    pub path: String,
    /// The violation message this entry suppresses, compared after
    /// normalization (digit runs collapse, whitespace squeezes) so
    /// line-number drift inside the message does not go stale.
    pub message: String,
    pub justification: String,
    /// Line in the allowlist file, for error reporting.
    pub line: u32,
}

impl AllowEntry {
    pub fn matches(&self, v: &Violation) -> bool {
        v.rule.code() == self.rule
            && v.path.ends_with(&self.path)
            && normalize(&self.message) == v.normalized_message()
    }
}

/// Parse the allowlist. Structural problems are returned as
/// `ALLOWLIST` violations (so they fail the lint run like anything
/// else) rather than aborting.
pub fn parse(path_label: &str, content: &str) -> (Vec<AllowEntry>, Vec<Violation>) {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut problems: Vec<Violation> = Vec::new();
    let mut current: Option<(AllowEntry, u32)> = None;

    let mut problem = |line: u32, msg: String, excerpt: &str| {
        problems.push(Violation {
            rule: Rule::Allowlist,
            path: path_label.to_string(),
            line,
            message: msg,
            excerpt: excerpt.trim().to_string(),
        });
    };

    let finalize = |entry: Option<(AllowEntry, u32)>,
                    entries: &mut Vec<AllowEntry>,
                    problem: &mut dyn FnMut(u32, String, &str)| {
        let Some((e, start_line)) = entry else { return };
        let missing: Vec<&str> = [
            ("rule", e.rule.is_empty()),
            ("path", e.path.is_empty()),
            ("message", e.message.is_empty()),
            ("justification", e.justification.is_empty()),
        ]
        .iter()
        .filter_map(|&(k, m)| m.then_some(k))
        .collect();
        if missing.is_empty() {
            if e.justification.trim().len() < 20 {
                problem(
                    start_line,
                    "allowlist justification is too short to be a real rationale \
                         (< 20 chars)"
                        .to_string(),
                    "",
                );
            }
            entries.push(e);
        } else {
            problem(
                start_line,
                format!(
                    "allowlist entry missing required keys: {}",
                    missing.join(", ")
                ),
                "",
            );
        }
    };

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finalize(current.take(), &mut entries, &mut problem);
            current = Some((
                AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    message: String::new(),
                    justification: String::new(),
                    line: line_no,
                },
                line_no,
            ));
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            problem(
                line_no,
                "unrecognized allowlist syntax; expected `[[allow]]` or `key = \"value\"`"
                    .to_string(),
                raw,
            );
            continue;
        };
        let Some((entry, _)) = current.as_mut() else {
            problem(line_no, "key outside an [[allow]] table".to_string(), raw);
            continue;
        };
        match key {
            "rule" => entry.rule = value,
            "path" => entry.path = value.replace('\\', "/"),
            "message" => entry.message = value,
            "contains" => {
                problem(
                    line_no,
                    "legacy `contains` key: allowlist entries now match on the normalized \
                     violation `message`; replace `contains = ...` with the exact message \
                     reported by `xtask lint`"
                        .to_string(),
                    raw,
                );
            }
            "justification" => entry.justification = value,
            other => {
                problem(line_no, format!("unknown allowlist key `{other}`"), raw);
            }
        }
    }
    finalize(current.take(), &mut entries, &mut problem);

    if entries.len() >= MAX_ENTRIES {
        problem(
            0,
            format!(
                "allowlist has {} entries; the budget is < {MAX_ENTRIES}. Fix code instead \
                 of growing the list",
                entries.len()
            ),
            "",
        );
    }
    (entries, problems)
}

/// Parse `key = "value"`; returns None on any other shape.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // Unescape the two sequences the format needs.
    Some((key, inner.replace("\\\"", "\"").replace("\\\\", "\\")))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "L4"
path = "crates/tsfile/src/cast.rs"
message = "`as u64` in a codec layer; use the audited helpers in tsfile::cast (checked, wrapping, or bit-exact by name)"
justification = "cast.rs IS the audited helper module the rule points at"
"#;

    fn violation(rule: Rule, path: &str, message: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 7,
            message: message.to_string(),
            excerpt: String::new(),
        }
    }

    #[test]
    fn parses_valid_entry_and_matches_on_normalized_message() {
        let (entries, problems) = parse("allow.toml", GOOD);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(entries.len(), 1);
        let v = violation(
            Rule::L4,
            "crates/tsfile/src/cast.rs",
            "`as u64` in a codec layer; use the audited helpers in tsfile::cast \
             (checked, wrapping, or bit-exact by name)",
        );
        assert!(entries[0].matches(&v));
        // Different message on the same file does NOT match.
        let other = violation(
            Rule::L4,
            "crates/tsfile/src/cast.rs",
            "`as i64` in a codec layer",
        );
        assert!(!entries[0].matches(&other));
    }

    #[test]
    fn digit_drift_inside_message_still_matches() {
        let src = "[[allow]]\nrule = \"L2\"\npath = \"x.rs\"\n\
                   message = \"`open` reached while a `g: read` guard from line 10 is live; narrow the guard's scope\"\n\
                   justification = \"a justification that is long enough to pass\"\n";
        let (entries, problems) = parse("allow.toml", src);
        assert!(problems.is_empty(), "{problems:?}");
        let v = violation(
            Rule::L2,
            "crates/x.rs",
            "`open` reached while a `g: read` guard from line 42 is live; narrow the guard's scope",
        );
        assert!(
            entries[0].matches(&v),
            "line-number drift must not invalidate the entry"
        );
    }

    #[test]
    fn legacy_contains_key_is_a_problem() {
        let src = "[[allow]]\nrule = \"L1\"\npath = \"x.rs\"\ncontains = \"y\"\n\
                   justification = \"a justification that is long enough to pass\"\n";
        let (entries, problems) = parse("allow.toml", src);
        assert!(entries.is_empty(), "{entries:?}");
        assert!(
            problems
                .iter()
                .any(|p| p.message.contains("legacy `contains`")),
            "{problems:?}"
        );
        // The entry is also incomplete (no message), reported separately.
        assert!(problems
            .iter()
            .any(|p| p.message.contains("missing required keys")));
    }

    #[test]
    fn missing_justification_is_a_problem() {
        let src = "[[allow]]\nrule = \"L1\"\npath = \"x.rs\"\nmessage = \"y\"\n";
        let (entries, problems) = parse("allow.toml", src);
        assert!(entries.is_empty());
        assert_eq!(problems.len(), 1);
        assert!(problems[0].message.contains("justification"));
    }

    #[test]
    fn short_justification_rejected() {
        let src =
            "[[allow]]\nrule = \"L1\"\npath = \"x.rs\"\nmessage = \"y\"\njustification = \"ok\"\n";
        let (_, problems) = parse("allow.toml", src);
        assert!(problems.iter().any(|p| p.message.contains("too short")));
    }

    #[test]
    fn entry_budget_enforced() {
        let mut src = String::new();
        for i in 0..MAX_ENTRIES {
            src.push_str(&format!(
                "[[allow]]\nrule = \"L1\"\npath = \"f{i}.rs\"\nmessage = \"z\"\n\
                 justification = \"a justification that is long enough to pass\"\n"
            ));
        }
        let (_, problems) = parse("allow.toml", &src);
        assert!(problems.iter().any(|p| p.message.contains("budget")));
    }
}
