//! A small Rust lexer, sufficient for lexical lint rules.
//!
//! Produces a flat token stream with line numbers. Comments (including
//! doc comments) are dropped; string/char/number literals collapse to
//! a single [`TokKind::Lit`] so their contents can never trip a rule.
//! The lexer understands nested block comments, raw strings, byte
//! strings, and the lifetime-vs-char-literal ambiguity.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`.`, `!`, `#`, `:`, ...).
    Punct(char),
    /// Opening delimiter: `(`, `[` or `{`.
    Open(char),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(char),
    /// Any literal (string, char, number, lifetime).
    Lit,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
}

impl Tok {
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    pub fn is_open(&self, c: char) -> bool {
        self.kind == TokKind::Open(c)
    }

    pub fn is_close(&self, c: char) -> bool {
        self.kind == TokKind::Close(c)
    }
}

/// Lex `src` into tokens. Never fails: unknown bytes become punct
/// tokens, unterminated literals run to end of input.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1u32;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                i = consume_cooked_string(&chars, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    line: start_line,
                });
            }
            '\'' => {
                let start_line = line;
                i = consume_quote(&chars, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                i = consume_number(&chars, i);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    line: start_line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw / byte string prefixes: r"", r#""#, b"", br"", b''.
                if i < n
                    && matches!(word.as_str(), "r" | "b" | "br" | "rb")
                    && (chars[i] == '"' || chars[i] == '#' || chars[i] == '\'')
                {
                    let start_line = line;
                    i = if chars[i] == '\'' {
                        consume_quote(&chars, i, &mut line)
                    } else {
                        consume_raw_string(&chars, i, &mut line)
                    };
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        line: start_line,
                    });
                } else {
                    toks.push(Tok {
                        kind: TokKind::Ident(word),
                        line,
                    });
                }
            }
            '(' | '[' | '{' => {
                toks.push(Tok {
                    kind: TokKind::Open(c),
                    line,
                });
                i += 1;
            }
            ')' | ']' | '}' => {
                toks.push(Tok {
                    kind: TokKind::Close(c),
                    line,
                });
                i += 1;
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Consume `"..."` starting at the opening quote; returns index past
/// the closing quote.
fn consume_cooked_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consume a raw string starting at `#` or `"` (the `r`/`br` prefix is
/// already consumed); returns index past the closing delimiter.
fn consume_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= chars.len() || chars[i] != '"' {
        return i; // not actually a raw string; bail without consuming more
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < chars.len() && chars[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Consume either a char/byte literal or a lifetime, starting at `'`.
fn consume_quote(chars: &[char], i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    // Lifetime: 'ident not closed by a quote right after one char.
    if i + 1 < n && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_') {
        // Peek: 'x' is a char literal; 'x anything-else is a lifetime.
        if !(i + 2 < n && chars[i + 2] == '\'') {
            let mut j = i + 1;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            return j;
        }
    }
    // Char literal (possibly escaped).
    let mut j = i + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Consume a numeric literal. Loose: accepts suffixes, hex, exponents;
/// stops before `..` so ranges lex as two punct tokens.
fn consume_number(chars: &[char], mut i: usize) -> usize {
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c.is_alphanumeric() || c == '_' {
            // Exponent sign: 1e-9 / 1E+9.
            if (c == 'e' || c == 'E')
                && i + 1 < n
                && (chars[i + 1] == '+' || chars[i + 1] == '-')
                && i + 2 < n
                && chars[i + 2].is_ascii_digit()
            {
                i += 2;
            }
            i += 1;
        } else if c == '.' && i + 1 < n && chars[i + 1].is_ascii_digit() {
            i += 1; // decimal point, not a range
        } else {
            break;
        }
    }
    i
}

/// Remove test-only code from a token stream: items annotated with any
/// attribute mentioning `test` (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(any(test, ...))]`, `#[tokio::test]`, ...) and everything in a
/// file carrying an inner `#![cfg(test)]`.
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        if toks[i].is_punct('#') {
            let inner = i + 1 < n && toks[i + 1].is_punct('!');
            let bracket = i + if inner { 2 } else { 1 };
            if bracket < n && toks[bracket].is_open('[') {
                let close = match matching_delim(toks, bracket) {
                    Some(c) => c,
                    None => {
                        out.push(toks[i].clone());
                        i += 1;
                        continue;
                    }
                };
                let is_test = toks[bracket + 1..close]
                    .iter()
                    .any(|t| t.ident() == Some("test"));
                if is_test && inner {
                    // `#![cfg(test)]`: the rest of the scope is test-only.
                    return out;
                }
                if is_test {
                    i = skip_item(toks, close + 1);
                    continue;
                }
                // Non-test attribute: copy through.
                out.extend(toks[i..=close].iter().cloned());
                i = close + 1;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Index of the delimiter closing the one at `open`, tracking nesting
/// of the same delimiter class.
fn matching_delim(toks: &[Tok], open: usize) -> Option<usize> {
    let (oc, cc) = match toks.get(open)?.kind {
        TokKind::Open(c) => (c, close_of(c)),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_open(oc) {
            depth += 1;
        } else if t.is_close(cc) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Skip one item starting at `i` (following a test attribute): any
/// further attributes, then either a braced item (fn/mod/impl) through
/// its closing brace, or a semicolon-terminated item.
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    let n = toks.len();
    // Skip stacked attributes.
    while i < n && toks[i].is_punct('#') && i + 1 < n && toks[i + 1].is_open('[') {
        match matching_delim(toks, i + 1) {
            Some(c) => i = c + 1,
            None => return n,
        }
    }
    while i < n {
        if toks[i].is_open('{') {
            return matching_delim(toks, i).map_or(n, |c| c + 1);
        }
        if toks[i].is_punct(';') {
            return i + 1;
        }
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::indexing_slicing)]

    use super::*;

    fn idents(toks: &[Tok]) -> Vec<String> {
        toks.iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let toks = lex(
            "// x.unwrap()\n/* panic! /* nested */ */\nlet s = \"a.unwrap()\"; let r = r#\"panic!\"#;",
        );
        assert!(!idents(&toks).iter().any(|s| s == "unwrap" || s == "panic"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert!(idents(&toks).contains(&"str".to_string()));
        // Two 'a lifetimes plus the 'x' and '\n' char literals.
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 4);
    }

    #[test]
    fn numbers_stop_before_range() {
        let toks = lex("for i in 0..10 {}");
        let puncts: Vec<char> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!['.', '.']);
    }

    #[test]
    fn strip_removes_cfg_test_mod() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.expect(\"x\"); } }\nfn live2() {}";
        let toks = strip_test_code(&lex(src));
        let ids = idents(&toks);
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(ids.contains(&"live2".to_string()));
    }

    #[test]
    fn strip_handles_test_attr_fn_and_use() {
        let src = "#[cfg(test)]\nuse foo::bar;\n#[test]\nfn t() { x.unwrap(); }\nfn keep() {}";
        let toks = strip_test_code(&lex(src));
        let ids = idents(&toks);
        assert!(!ids.contains(&"bar".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"keep".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
